"""Define a custom analog topology, generate its structure and export SVG floorplans.

Shows the full public API surface a downstream user touches: the circuit
builder, module generators for dimension bounds, structure generation,
serialization and SVG export of instantiated floorplans.

Run with::

    python examples/custom_circuit.py

Set ``REPRO_SMOKE=1`` (as the CI examples job does) to use the fast smoke
generation budget instead of the default one.
"""

import os

from repro.circuit import CircuitBuilder, DeviceType
from repro.core import GeneratorConfig, MultiPlacementGenerator, PlacementInstantiator
from repro.core.serialization import save_structure
from repro.modgen import DifferentialPairGenerator, FoldedMosfetGenerator, MimCapacitorGenerator
from repro.viz import save_svg


def build_comparator():
    """A small clocked comparator: preamp pair, latch pair, tail, output caps."""
    dp_bounds = DifferentialPairGenerator().dimension_bounds()
    mos_bounds = FoldedMosfetGenerator().dimension_bounds()
    cap_gen = MimCapacitorGenerator()

    builder = CircuitBuilder("clocked_comparator")
    builder.block("preamp", 10, 40, 8, 30, DeviceType.DIFF_PAIR, generator="diff_pair",
                  pins={"inp": (0.1, 0.9), "inn": (0.9, 0.9), "outp": (0.2, 0.1),
                        "outn": (0.8, 0.1), "tail": (0.5, 0.05)})
    builder.block("latch", 10, 36, 8, 28, DeviceType.DIFF_PAIR, generator="diff_pair",
                  pins={"inp": (0.1, 0.9), "inn": (0.9, 0.9), "outp": (0.2, 0.1),
                        "outn": (0.8, 0.1), "tail": (0.5, 0.05)})
    builder.block("tail", 6, 22, 6, 20, DeviceType.NMOS, generator="folded_mosfet",
                  pins={"d": (0.2, 0.6), "g": (0.5, 0.9), "s": (0.8, 0.6)})
    builder.block("c_outp", 8, 26, 8, 26, DeviceType.CAPACITOR, generator="mim_capacitor",
                  pins={"top": (0.5, 0.9), "bottom": (0.5, 0.1)})
    builder.block("c_outn", 8, 26, 8, 26, DeviceType.CAPACITOR, generator="mim_capacitor",
                  pins={"top": (0.5, 0.9), "bottom": (0.5, 0.1)})

    builder.net("inp", ("preamp", "inp"), external=True, io_position=(0.0, 0.7))
    builder.net("inn", ("preamp", "inn"), external=True, io_position=(0.0, 0.3))
    builder.net("xp", ("preamp", "outp"), ("latch", "inp"), ("c_outp", "top"), weight=2.0)
    builder.net("xn", ("preamp", "outn"), ("latch", "inn"), ("c_outn", "top"), weight=2.0)
    builder.net("outp", ("latch", "outp"), external=True, io_position=(1.0, 0.7))
    builder.net("outn", ("latch", "outn"), external=True, io_position=(1.0, 0.3))
    builder.net("tail_net", ("preamp", "tail"), ("latch", "tail"), ("tail", "d"))
    builder.net("clk", ("tail", "g"), external=True, io_position=(0.5, 0.0))
    builder.net("gnd", ("tail", "s"), ("c_outp", "bottom"), ("c_outn", "bottom"),
                external=True, io_position=(0.5, 0.0))

    builder.symmetry("outputs", pairs=(("c_outp", "c_outn"),), self_symmetric=("preamp", "latch"))
    # Reference prints so users see how generator-derived bounds look.
    print(f"diff pair generator footprint bounds: {dp_bounds}")
    print(f"folded MOS generator footprint bounds: {mos_bounds}")
    print(f"500 fF MIM cap footprint: {cap_gen.footprint(capacitance=500).dims}")
    return builder.build()


def main() -> None:
    circuit = build_comparator()
    print(f"\nCircuit {circuit.name}: {circuit.summary()}")

    config = (
        GeneratorConfig.smoke(seed=1)
        if os.environ.get("REPRO_SMOKE")
        else GeneratorConfig.default(seed=1)
    )
    generator = MultiPlacementGenerator(circuit, config)
    structure = generator.generate()
    print(f"Generated {structure.num_placements} placements")
    save_structure(structure, "clocked_comparator.mps.json")

    instantiator = PlacementInstantiator(structure)
    for label, dims in (
        ("small", [(12, 10), (12, 10), (8, 8), (10, 10), (10, 10)]),
        ("large", [(30, 24), (28, 22), (16, 14), (22, 22), (22, 22)]),
    ):
        placement = instantiator.instantiate(dims)
        path = save_svg(placement.rects, f"comparator_{label}.svg", generator.bounds)
        print(
            f"  {label}: source={placement.source}, cost={placement.total_cost:.1f}, "
            f"SVG written to {path}"
        )


if __name__ == "__main__":
    main()
