"""Layout-inclusive sizing of the two-stage opamp (the paper's Figure 1.b loop).

Compares the same sizing run with three placement backends:

* the multi-placement structure (fast, size-adapted placements),
* a fixed template (fast, one arrangement for every size),
* per-instance simulated annealing (slow, the quality reference).

Run with::

    python examples/synthesis_loop.py
"""

from repro.baselines.annealing_placer import AnnealingPlacer, AnnealingPlacerConfig
from repro.baselines.template import TemplatePlacer
from repro.core import MultiPlacementGenerator
from repro.experiments.config import SMOKE
from repro.synthesis import (
    AnnealingBackend,
    LayoutInclusiveSynthesis,
    MPSBackend,
    SynthesisConfig,
    TemplateBackend,
)
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizerConfig
from repro.viz import format_table


def main() -> None:
    design = two_stage_opamp_design()
    circuit = design.circuit
    scale = SMOKE  # switch to MEDIUM / FULL for a closer look

    print("Generating the multi-placement structure (one-time cost)...")
    generator = MultiPlacementGenerator(circuit, scale.generator_config(circuit, seed=0))
    structure = generator.generate()
    print(f"  {structure.num_placements} placements stored\n")

    backends = {
        "mps": MPSBackend(structure, generator.cost_function),
        "template": TemplateBackend(TemplatePlacer(circuit, generator.bounds, seed=0)),
        "annealing": AnnealingBackend(
            AnnealingPlacer(
                circuit,
                generator.bounds,
                config=AnnealingPlacerConfig(max_iterations=scale.annealing_iterations),
                seed=0,
            )
        ),
    }

    config = SynthesisConfig(
        optimizer=SizingOptimizerConfig(max_iterations=scale.synthesis_iterations)
    )
    rows = []
    for name, backend in backends.items():
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            backend,
            config=config,
            seed=0,
        )
        result = loop.run()
        best = result.best
        rows.append(
            {
                "backend": name,
                "wall_s": round(result.elapsed_seconds, 2),
                "placement_ms_per_eval": round(
                    1000 * result.placement_seconds / max(1, result.evaluations), 2
                ),
                "objective": round(best.objective, 2),
                "gain_dB": round(best.performance.gain_db, 1),
                "UGBW_MHz": round(best.performance.unity_gain_bandwidth_hz / 1e6, 1),
                "PM_deg": round(best.performance.phase_margin_deg, 1),
                "power_mW": round(best.performance.power_mw, 2),
                "spec_met": best.spec_penalty == 0.0,
            }
        )

    print(format_table(rows))
    print(
        "\nThe multi-placement structure keeps per-evaluation placement time at the\n"
        "template's level while re-annealing from scratch is orders of magnitude slower."
    )


if __name__ == "__main__":
    main()
