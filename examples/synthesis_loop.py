"""Layout-inclusive sizing of the two-stage opamp (the paper's Figure 1.b loop).

Compares the same sizing run with four placement backends, each named by a
declarative ``make_placer`` spec dict passed straight to
``LayoutInclusiveSynthesis``:

* ``{"kind": "mps", ...}`` — the multi-placement structure (fast,
  size-adapted placements),
* ``{"kind": "service", ...}`` — the placement service (same structure,
  served from an on-disk registry with query memoization and per-tier
  statistics),
* ``{"kind": "template"}`` — a fixed template (fast, one arrangement for
  every size),
* ``{"kind": "annealing", ...}`` — per-instance simulated annealing (slow,
  the quality reference).

Run with::

    python examples/synthesis_loop.py

Pass a directory as the first argument to persist the service's structure
registry between runs (the second run skips generation entirely)::

    python examples/synthesis_loop.py /tmp/structure-registry
"""

import sys
import tempfile

from repro.core import MultiPlacementGenerator
from repro.experiments.config import SMOKE
from repro.service import PlacementService, StructureRegistry
from repro.synthesis import LayoutInclusiveSynthesis, SynthesisConfig
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizerConfig
from repro.viz import format_table


def main() -> None:
    design = two_stage_opamp_design()
    circuit = design.circuit
    scale = SMOKE  # switch to MEDIUM / FULL for a closer look
    generator_config = scale.generator_config(circuit, seed=0)

    registry_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-registry-")
    registry = StructureRegistry(registry_dir)
    generator = MultiPlacementGenerator(circuit, generator_config)
    if registry.contains(circuit, generator_config):
        print(f"Loading the multi-placement structure from {registry.root}...")
    else:
        print("Generating the multi-placement structure (one-time cost)...")
    structure = registry.get_or_generate(circuit, generator_config)
    print(f"  {structure.num_placements} placements stored\n")

    service = PlacementService(registry, default_config=generator_config)

    # The "bounds" entry pins every engine to the structure's canvas, so the
    # backends are compared on identical floorplans and cost functions.
    backend_specs = {
        "mps": {"kind": "mps", "structure": structure, "cost_function": generator.cost_function},
        "service": {"kind": "service", "service": service},
        "template": {"kind": "template", "seed": 0, "bounds": generator.bounds},
        "annealing": {
            "kind": "annealing",
            "iterations": scale.annealing_iterations,
            "seed": 0,
            "bounds": generator.bounds,
        },
    }

    config = SynthesisConfig(
        optimizer=SizingOptimizerConfig(max_iterations=scale.synthesis_iterations)
    )
    rows = []
    for name, spec in backend_specs.items():
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            spec,  # a spec dict is as good as a hand-built placer
            config=config,
            seed=0,
        )
        result = loop.run()
        best = result.best
        rows.append(
            {
                "backend": name,
                "wall_s": round(result.elapsed_seconds, 2),
                "placement_ms_per_eval": round(
                    1000 * result.placement_seconds / max(1, result.evaluations), 2
                ),
                "objective": round(best.objective, 2),
                "gain_dB": round(best.performance.gain_db, 1),
                "UGBW_MHz": round(best.performance.unity_gain_bandwidth_hz / 1e6, 1),
                "PM_deg": round(best.performance.phase_margin_deg, 1),
                "power_mW": round(best.performance.power_mw, 2),
                "spec_met": best.spec_penalty == 0.0,
            }
        )

    print(format_table(rows))
    service_stats = service.stats.snapshot().as_dict()
    print(
        "\nService tiers: "
        f"structure={service_stats['structure_hits']:.0f} "
        f"nearest={service_stats['nearest_hits']:.0f} "
        f"fallback={service_stats['fallback_hits']:.0f} | "
        f"memo hits={service_stats['memo_hits']:.0f} of "
        f"{service_stats['queries']:.0f} queries, "
        f"mean latency={1000 * service_stats['mean_latency_seconds']:.3f}ms"
    )
    print(
        "\nThe multi-placement structure keeps per-evaluation placement time at the\n"
        "template's level while re-annealing from scratch is orders of magnitude slower;\n"
        "the service adds registry persistence and memoization on top."
    )


if __name__ == "__main__":
    main()
