"""Score a whole candidate population in one vectorized sweep.

A random population of layouts for the mixer benchmark is stacked into
one ``(candidates, blocks, 4)`` rect tensor and scored by the
``BatchEvaluator`` array kernels — then re-scored by the historical
scalar loop to show the totals agree *bitwise*, not approximately.
The same kernels sit behind the genetic placer's generations (its
``vectorize`` flag defaults on), whose ``batch_evals`` /
``batch_candidates`` counters are printed at the end.

Set ``REPRO_SMOKE=1`` (as the CI examples job does) to use a smaller
population.  Run with::

    python examples/batch_eval.py
"""

import os
import random
import time

from repro.baselines.genetic import GeneticPlacer, GeneticPlacerConfig
from repro.benchcircuits import get_benchmark
from repro.cost.cost_function import CostWeights, PlacementCostFunction
from repro.eval import NUMPY_HINT, numpy_available
from repro.geometry.floorplan import FloorplanBounds


def main() -> None:
    if not numpy_available():
        print(NUMPY_HINT)
        return

    population_size = 64 if os.environ.get("REPRO_SMOKE") else 256
    circuit = get_benchmark("mixer")
    bounds = FloorplanBounds.for_blocks(circuit.max_dims(), whitespace_factor=1.8)
    cost_fn = PlacementCostFunction(
        circuit, bounds, weights=CostWeights().with_legalization()
    )

    rng = random.Random(11)
    dims = tuple(
        (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
        for b in circuit.blocks
    )
    population = [
        tuple(
            bounds.clamp_anchor(
                rng.randrange(bounds.width), rng.randrange(bounds.height), w, h
            )
            for (w, h) in dims
        )
        for _ in range(population_size)
    ]

    # One fused sweep over the stacked tensor ...
    evaluator = cost_fn.batch()
    start = time.perf_counter()
    rects = evaluator.stack(population, dims)
    totals = evaluator.totals(rects)
    batch_seconds = time.perf_counter() - start

    # ... versus one evaluate_layout call per candidate.
    start = time.perf_counter()
    scalar_totals = [
        cost_fn.evaluate_layout(anchors, dims).total for anchors in population
    ]
    scalar_seconds = time.perf_counter() - start

    assert totals.tolist() == scalar_totals, "kernels must match the oracle bitwise"
    best = int(totals.argmin())
    print(
        f"Scored {population_size} candidate layouts of {circuit.name} "
        f"({circuit.num_blocks} blocks)"
    )
    print(f"  batch sweep : {batch_seconds * 1e3:8.2f} ms")
    print(f"  scalar loop : {scalar_seconds * 1e3:8.2f} ms "
          f"({scalar_seconds / max(batch_seconds, 1e-9):.1f}x slower)")
    print(f"  totals bitwise-equal; best candidate #{best} at {totals[best]:.1f}")

    # Feasibility of the whole population in one call: inside the canvas
    # and overlap-free (the instantiator ranks its stored placements the
    # same way).
    feasible = evaluator.feasible_mask(rects)
    print(f"  feasible candidates: {int(feasible.sum())}/{population_size}")

    # The genetic placer rides the same kernels generation by generation.
    config = GeneticPlacerConfig(population_size=16, generations=6)
    placer = GeneticPlacer(circuit, bounds, config=config, seed=0)
    result = placer.place(list(dims))
    stats = placer.stats()
    print(
        f"\nGeneticPlacer (vectorize={config.vectorize}): cost {result.total_cost:.1f}, "
        f"{stats.get('batch_evals', 0)} sweeps scoring "
        f"{stats.get('batch_candidates', 0)} candidates"
    )


if __name__ == "__main__":
    main()
