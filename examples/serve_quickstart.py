"""Serving quickstart: run the placement server, fire concurrent traffic.

Run with::

    PYTHONPATH=src python examples/serve_quickstart.py

Starts a real :class:`PlacementServer` in-process (ephemeral port),
replays a duplicate-heavy workload from several concurrent clients, and
prints what the serving layer did with it: how many HTTP requests
coalesced into how few batch dispatches, the dedup rate, client-side
latency, and a tenant hitting its quota.  Set ``REPRO_SMOKE=1`` (as the
CI examples job does) for the fast smoke budgets.
"""

import os
import threading
import time

from repro.benchcircuits import get_benchmark
from repro.core.generator import GeneratorConfig
from repro.serve import ServerConfig, ServerHarness
from repro.service.engine import PlacementService


def generator_config():
    """Smoke budget under ``REPRO_SMOKE=1``, the default budget otherwise."""
    if os.environ.get("REPRO_SMOKE"):
        return GeneratorConfig.smoke(seed=7)
    return GeneratorConfig(seed=7)


def main() -> None:
    circuit = get_benchmark("two_stage_opamp")
    rng_dims = [
        [(b.min_w + (i * 2) % (b.max_w - b.min_w + 1), b.min_h) for b in circuit.blocks]
        for i in range(8)
    ]
    queries_per_client, clients = (24, 6) if os.environ.get("REPRO_SMOKE") else (50, 8)

    # 1. Start — a real server on a background event loop, ephemeral port.
    service = PlacementService(default_config=generator_config())
    config = ServerConfig(window_seconds=0.004, max_batch=64, quota_rate=500.0)
    with ServerHarness(service, config) as harness:
        print(f"placement server listening on {harness.address}")

        # 2. Warm — the first query pays structure generation once.
        start = time.perf_counter()
        first = harness.client().place("two_stage_opamp", rng_dims[0])
        assert first.ok
        print(
            f"first query (cold, generates the structure): "
            f"{(time.perf_counter() - start) * 1000:.0f}ms, "
            f"source={first.payload['source']}"
        )

        # 3. Load — concurrent clients replaying duplicate-heavy traffic;
        #    requests arriving within the coalesce window become one
        #    instantiate_batch call (dedup + memo included).
        latencies = []
        lock = threading.Lock()

        def client_loop(worker: int) -> None:
            client = harness.client(tenant=f"team-{worker % 2}")
            local = []
            for i in range(queries_per_client):
                begin = time.perf_counter()
                response = client.place("two_stage_opamp", rng_dims[i % len(rng_dims)])
                assert response.ok, response.status
                local.append(time.perf_counter() - begin)
            with lock:
                latencies.extend(local)

        threads = [
            threading.Thread(target=client_loop, args=(worker,))
            for worker in range(clients)
        ]
        wall = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall

        total = clients * queries_per_client
        snapshot = harness.server.metrics.snapshot()
        dispatches = int(snapshot["serve.dispatches"])
        latencies.sort()
        print(
            f"{total} concurrent /place requests in {wall * 1000:.0f}ms "
            f"({total / wall:.0f} q/s) coalesced into {dispatches} batch dispatches "
            f"(~{total / max(1, dispatches):.1f} requests/dispatch, "
            f"{int(snapshot.get('serve.dedup_hits', 0))} dedup hits)"
        )
        print(
            f"client-side latency: p50 {latencies[len(latencies) // 2] * 1000:.1f}ms, "
            f"p99 {latencies[int(len(latencies) * 0.99)] * 1000:.1f}ms"
        )

        # 4. Backpressure — a tenant replaying a sweep at full speed
        #    (64-query batches, each charged 64 quota tokens) burns
        #    through its own token bucket; everyone else keeps theirs.
        greedy = harness.client(tenant="greedy")
        sweep = [rng_dims[i % len(rng_dims)] for i in range(64)]
        verdicts = [greedy.place_batch("two_stage_opamp", sweep) for _ in range(40)]
        throttled = [v for v in verdicts if v.status == 429]
        polite = harness.client(tenant="polite").place("two_stage_opamp", rng_dims[0])
        print(
            f"greedy tenant: {len(throttled)}/{len(verdicts)} sweep batches "
            f"throttled (429, Retry-After {throttled[0].retry_after}s); "
            f"polite tenant still answers {polite.status}"
        )

        # 5. Health — what a load balancer would scrape.
        health = harness.client().healthz()
        print(f"healthz: {health.payload}")
    # Leaving the context manager runs the graceful drain (the SIGTERM
    # path): in-flight requests finish, metrics flush, pools close.
    print("server drained cleanly")


if __name__ == "__main__":
    main()
