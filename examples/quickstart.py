"""Quickstart: generate a multi-placement structure once, instantiate it many times.

Run with::

    python examples/quickstart.py

Set ``REPRO_SMOKE=1`` (as the CI examples job does) to use the fast smoke
generation budget instead of the default one.
"""

import os

from repro.benchcircuits import get_benchmark
from repro.core import GeneratorConfig, MultiPlacementGenerator, PlacementInstantiator
from repro.core.serialization import save_structure
from repro.utils.timer import Timer, format_duration
from repro.viz import render_ascii


def generation_config(seed: int = 0) -> GeneratorConfig:
    """Smoke budget under ``REPRO_SMOKE=1``, the default budget otherwise."""
    if os.environ.get("REPRO_SMOKE"):
        return GeneratorConfig.smoke(seed=seed)
    return GeneratorConfig.default(seed=seed)


def main() -> None:
    # 1. Pick a circuit topology (here: the paper's two-stage opamp benchmark).
    circuit = get_benchmark("two_stage_opamp")
    print(f"Circuit {circuit.name}: {circuit.summary()}")

    # 2. One-time generation of the multi-placement structure (Figure 1.a).
    #    GeneratorConfig.default() takes a few seconds; .paper() takes minutes.
    generator = MultiPlacementGenerator(circuit, generation_config(seed=0))
    with Timer() as generation_timer:
        structure = generator.generate()
    print(
        f"Generated {structure.num_placements} placements in "
        f"{format_duration(generation_timer.elapsed)} "
        f"(marginal coverage {structure.marginal_coverage():.2f})"
    )

    # 3. Persist it: the structure is generated once per topology and reused.
    path = save_structure(structure, "two_stage_opamp.mps.json")
    print(f"Structure saved to {path}")

    # 4. Fast placement instantiation for specific block dimensions (Figure 1.b).
    instantiator = PlacementInstantiator(structure)
    dims = [(18, 12), (16, 10), (10, 8), (14, 12), (20, 20)]
    with Timer() as instantiation_timer:
        placement = instantiator.instantiate(dims)
    print(
        f"\nInstantiated a floorplan from the '{placement.source}' tier in "
        f"{format_duration(instantiation_timer.elapsed)} "
        f"(cost {placement.total_cost:.1f})"
    )
    print(render_ascii(placement.rects, generator.bounds, max_width=70, max_height=30))


if __name__ == "__main__":
    main()
