"""Compare placement backends on one dimension vector of the mixer benchmark.

Places the same sized blocks with the multi-placement structure, the fixed
template, the adaptive template, per-instance annealing, the genetic placer
and a random placer, and prints cost and runtime for each.

Run with::

    python examples/compare_placers.py
"""

import random

from repro.baselines import AnnealingPlacer, GeneticPlacer, RandomPlacer, TemplatePlacer
from repro.baselines.annealing_placer import AnnealingPlacerConfig
from repro.baselines.genetic import GeneticPlacerConfig
from repro.baselines.template import MODE_ADAPTIVE
from repro.benchcircuits import get_benchmark
from repro.core import MultiPlacementGenerator, PlacementInstantiator
from repro.experiments.config import SMOKE
from repro.utils.timer import Timer
from repro.viz import format_table, render_ascii


def main() -> None:
    circuit = get_benchmark("mixer")
    rng = random.Random(3)
    dims = [
        (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
        for b in circuit.blocks
    ]
    print(f"Placing {circuit.name} with block dimensions {dims}\n")

    generator = MultiPlacementGenerator(circuit, SMOKE.generator_config(circuit, seed=0))
    structure = generator.generate()
    bounds = generator.bounds

    rows = []

    with Timer() as timer:
        mps_placement = PlacementInstantiator(structure).instantiate(dims)
    rows.append(
        {
            "placer": f"mps ({mps_placement.source})",
            "cost": round(mps_placement.total_cost, 1),
            "seconds": round(timer.elapsed, 4),
        }
    )

    placers = [
        TemplatePlacer(circuit, bounds, seed=0),
        TemplatePlacer(circuit, bounds, seed=0, mode=MODE_ADAPTIVE),
        AnnealingPlacer(circuit, bounds, config=AnnealingPlacerConfig(max_iterations=1200), seed=0),
        GeneticPlacer(circuit, bounds, config=GeneticPlacerConfig(population_size=20, generations=15), seed=0),
        RandomPlacer(circuit, bounds, seed=0),
    ]
    labels = ["template (fixed)", "template (adaptive)", "annealing", "genetic", "random"]
    best = ("mps", mps_placement.rects, mps_placement.total_cost)
    for label, placer in zip(labels, placers):
        result = placer.place(dims)
        rows.append(
            {
                "placer": label,
                "cost": round(result.total_cost, 1),
                "seconds": round(result.elapsed_seconds, 4),
            }
        )
        if result.total_cost < best[2]:
            best = (label, result.rects, result.total_cost)

    print(format_table(rows))
    print(f"\nBest floorplan ({best[0]}, cost {best[2]:.1f}):\n")
    print(render_ascii(best[1], bounds, max_width=70, max_height=28))


if __name__ == "__main__":
    main()
