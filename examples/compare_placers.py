"""Compare placement engines on one dimension vector of the mixer benchmark.

Every engine is named by a declarative ``make_placer`` spec — the
multi-placement structure, the fixed and adaptive templates, per-instance
annealing, the genetic placer and a random placer — and all of them return
the same unified ``Placement``, so the comparison loop is engine-agnostic.

Run with::

    python examples/compare_placers.py
"""

import random

from repro.api import make_placer
from repro.benchcircuits import get_benchmark
from repro.core import MultiPlacementGenerator
from repro.experiments.config import SMOKE
from repro.viz import format_table, render_ascii


def main() -> None:
    circuit = get_benchmark("mixer")
    rng = random.Random(3)
    dims = [
        (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
        for b in circuit.blocks
    ]
    print(f"Placing {circuit.name} with block dimensions {dims}\n")

    # One-time offline cost: generate the multi-placement structure, then
    # hand it to the "mps" spec so nothing is regenerated.
    generator = MultiPlacementGenerator(circuit, SMOKE.generator_config(circuit, seed=0))
    structure = generator.generate()
    bounds = generator.bounds

    specs = [
        ("mps", {"kind": "mps", "structure": structure}),
        ("template (fixed)", {"kind": "template", "seed": 0}),
        ("template (adaptive)", {"kind": "template", "mode": "adaptive", "seed": 0}),
        ("annealing", {"kind": "annealing", "iterations": 1200, "seed": 0}),
        ("genetic", {"kind": "genetic", "population": 20, "generations": 15, "seed": 0}),
        ("random", {"kind": "random", "seed": 0}),
    ]

    rows = []
    best = None
    for label, spec in specs:
        placer = make_placer(spec, circuit, bounds=bounds)
        result = placer.place(dims)
        rows.append(
            {
                "placer": label,
                "source": result.source,
                "cost": round(result.total_cost, 1),
                "seconds": round(result.elapsed_seconds, 4),
            }
        )
        if best is None or result.total_cost < best[2]:
            best = (label, result.rects, result.total_cost)

    print(format_table(rows))
    assert best is not None
    print(f"\nBest floorplan ({best[0]}, cost {best[2]:.1f}):\n")
    print(render_ascii(best[1], bounds, max_width=70, max_height=28))


if __name__ == "__main__":
    main()
