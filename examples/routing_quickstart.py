"""Routing quickstart: place a circuit, route its nets, draw the wires.

Run with::

    python examples/routing_quickstart.py

Produces ``two_stage_opamp_routed.svg`` next to the working directory:
the placed blocks with every net's routed tree drawn over them (solid
lines are lattice segments, dashed lines the pin-escape stubs).
"""

from repro.api import make_placer
from repro.benchcircuits import get_benchmark
from repro.cost.wirelength import per_net_wirelength
from repro.route import derive_bounds, route_placement
from repro.synthesis.parasitics import (
    estimate_parasitics,
    estimate_parasitics_from_routes,
)
from repro.viz import save_svg


def main() -> None:
    # 1. Place — any unified-API engine works; the template is instant.
    circuit = get_benchmark("two_stage_opamp")
    placer = make_placer("template", circuit)
    placement = placer.place(circuit.min_dims())
    print(f"Placed {circuit.name}: {circuit.num_blocks} blocks, cost {placement.total_cost:.1f}")

    # 2. Route — grid from the placement, blockages from the rects,
    #    congestion-negotiated A* per net, mirrored routes for symmetry pairs.
    bounds = derive_bounds(placement.rects)
    routed = route_placement(circuit, placement, bounds=bounds)
    print(
        f"Routed {len(routed.nets)} nets on a "
        f"{routed.grid_shape[0]}x{routed.grid_shape[1]} grid: "
        f"wirelength {routed.total_wirelength:.1f}, overflow {routed.overflow}, "
        f"max congestion {routed.max_congestion}, "
        f"{routed.elapsed_seconds * 1000:.1f}ms"
    )

    # 3. Compare — the honest routed wirelength vs the HPWL proxy the
    #    cost function uses (routed >= HPWL for every net).
    hpwl = per_net_wirelength(circuit, dict(placement.rects), bounds)
    total_hpwl = sum(hpwl.values())
    print(f"Detour factor over HPWL: {routed.total_wirelength / total_hpwl:.2f}x")
    proxy = estimate_parasitics(circuit, dict(placement.rects), bounds)
    extracted = estimate_parasitics_from_routes(circuit, routed)
    print(
        f"Wiring capacitance: {proxy.total_capacitance_ff:.1f} fF ({proxy.wirelength_model}) "
        f"-> {extracted.total_capacitance_ff:.1f} fF ({extracted.wirelength_model})"
    )

    # 4. Draw — blocks plus routed wires in one SVG.
    path = save_svg(placement.rects, "two_stage_opamp_routed.svg", bounds, routes=routed)
    print(f"Wrote {path}")


if __name__ == "__main__":
    main()
