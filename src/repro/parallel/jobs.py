"""Picklable job specifications for the process-pool execution engine.

Live placer objects do not cross process boundaries well: structures hold
thousands of interval entries, services hold locks and LRU caches, and the
frozen result types wrap ``MappingProxyType``.  The worker pool therefore
ships *specifications* instead — a :class:`PlacementJob` carries the
circuit as plain data (:func:`repro.core.serialization.circuit_to_dict`)
and the placer as a declarative registry spec dict, and each worker
reconstructs the live engine with :func:`repro.api.make_placer` on first
sight.  Reconstruction is cached per worker process, so a long-lived pool
pays the build cost (structure generation, registry load) once per worker,
not once per job.

Results come back as real :class:`~repro.api.Placement` /
:class:`~repro.route.RoutedLayout` objects (both pickle via plain-dict
state) plus the *delta* of the worker placer's ``stats()`` counters over
the job, so the caller can merge per-worker statistics exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.placement import Dims, Placement
from repro.obs.spans import TraceContext, remote_span_capture, span
from repro.utils.timer import Timer

#: Worker-process cache of reconstructed placers, keyed by job identity.
_WORKER_PLACERS: Dict[str, Any] = {}
#: Worker-process cache of reconstructed routers, keyed by job identity.
_WORKER_ROUTERS: Dict[str, Any] = {}


def _freeze_spec(spec: Mapping[str, object]) -> str:
    """A stable cache key for a placer spec (tolerates non-JSON option values)."""
    return repr(sorted((key, repr(value)) for key, value in spec.items()))


def circuit_data_key(circuit_data: Mapping[str, Any]) -> str:
    """A content digest of serialized circuit data.

    Worker caches key on this rather than the circuit *name*: two
    different circuits may share a name (an edited netlist resubmitted
    under the same label), and a name-keyed cache would silently serve the
    stale engine.
    """
    payload = json.dumps(circuit_data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PlacementJob:
    """One worker's share of a batched placement request.

    Everything in here is plain data or a picklable dataclass, so jobs
    survive any ``multiprocessing`` start method (fork *and* spawn).
    """

    #: ``circuit_to_dict`` form of the circuit being placed.
    circuit_data: Dict[str, Any]
    #: Declarative placer spec (``{"kind": ..., **options}``).
    spec: Dict[str, Any]
    #: The dimension-vector queries assigned to this job, in order.
    queries: Tuple[Tuple[Dims, ...], ...]
    #: Position of this job in the request (results reassemble by id).
    job_id: int = 0
    #: When set (one seed per query), the placer is rebuilt per query with
    #: ``spec["seed"]`` overridden — the opt-in that makes *stochastic*
    #: engines bit-identical at any worker count.  Stateless engines
    #: (mps / service / template) never need it.
    per_query_seeds: Optional[Tuple[int, ...]] = None
    #: Observability propagation context (``repro.obs.trace_context()``):
    #: when set, worker-side spans re-parent under the coordinator span
    #: that dispatched this job.  ``None`` whenever tracing is off, so
    #: traced and untraced job specs hash/pickle identically by default.
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if self.per_query_seeds is not None and len(self.per_query_seeds) != len(self.queries):
            raise ValueError(
                f"per_query_seeds must match queries: "
                f"{len(self.per_query_seeds)} != {len(self.queries)}"
            )


@dataclass(frozen=True)
class RouteJob:
    """One worker's share of a batched routing request."""

    circuit_data: Dict[str, Any]
    #: One placed floorplan per query: ``{block: (x, y, w, h)}``.
    rects_batch: Tuple[Dict[str, Tuple[int, int, int, int]], ...]
    #: Router configuration (a plain picklable dataclass), or ``None``.
    router_config: Optional[object] = None
    job_id: int = 0
    #: Observability propagation context (see :class:`PlacementJob`).
    trace: Optional[TraceContext] = None


@dataclass
class JobResult:
    """What one job produced, tagged for reassembly."""

    job_id: int
    #: One placement (or routed layout for route jobs) per query, in order.
    results: List[Any]
    #: Delta of the worker placer's ``stats()`` counters over this job.
    stats: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    #: PID of the worker that ran the job (telemetry / tests).
    worker_pid: int = 0
    #: Plain-dict span records produced in the worker process while the
    #: job's trace capture was active; empty for inline/untraced jobs.
    #: The coordinator re-parents these via ``repro.obs.ingest_spans``.
    spans: List[Dict[str, Any]] = field(default_factory=list)


def _build_placer(circuit_data: Dict[str, Any], spec: Mapping[str, object]):
    from repro.api.registry import make_placer
    from repro.core.serialization import circuit_from_dict

    return make_placer(dict(spec), circuit_from_dict(circuit_data))


def _worker_placer(job: PlacementJob):
    """The (cached) live placer answering ``job`` in this worker process."""
    key = f"{circuit_data_key(job.circuit_data)}|{_freeze_spec(job.spec)}"
    placer = _WORKER_PLACERS.get(key)
    if placer is None:
        with span("worker.build_placer", kind=str(job.spec.get("kind"))):
            placer = _build_placer(job.circuit_data, job.spec)
        _WORKER_PLACERS[key] = placer
    return placer


def _stats_delta(before: Mapping[str, float], after: Mapping[str, float]) -> Dict[str, float]:
    """Numeric counter deltas between two ``stats()`` snapshots."""
    delta: Dict[str, float] = {}
    for key, value in after.items():
        if not isinstance(value, (int, float)):
            continue
        previous = before.get(key, 0)
        if isinstance(previous, (int, float)):
            delta[key] = value - previous
    return delta


def run_placement_job(job: PlacementJob) -> JobResult:
    """Execute one placement job inside a worker process (or inline).

    Module-level so it pickles by reference under any start method.
    """
    with remote_span_capture(job.trace) as captured:
        with Timer() as timer:
            with span(
                "worker.job", job_id=job.job_id, queries=len(job.queries)
            ) as job_span:
                if job.trace is not None and job.trace[2] != os.getpid():
                    # Time the job spent queued (and pickled) between the
                    # coordinator's submit and this worker picking it up.
                    job_span.set(queue_seconds=time.time() - job.trace[3])
                if job.per_query_seeds is not None:
                    results: List[Placement] = []
                    stats: Dict[str, float] = {}
                    for seed, query in zip(job.per_query_seeds, job.queries):
                        spec = dict(job.spec)
                        spec["seed"] = seed
                        placer = _build_placer(job.circuit_data, spec)
                        results.append(placer.place(query))
                        for key, value in placer.stats().items():
                            if isinstance(value, (int, float)):
                                stats[key] = stats.get(key, 0.0) + value
                else:
                    placer = _worker_placer(job)
                    before = dict(placer.stats())
                    results = placer.place_batch(list(job.queries))
                    stats = _stats_delta(before, placer.stats())
        return JobResult(
            job_id=job.job_id,
            results=list(results),
            stats=stats,
            elapsed_seconds=timer.elapsed,
            worker_pid=os.getpid(),
            spans=list(captured) if captured else [],
        )


def run_route_job(job: RouteJob) -> JobResult:
    """Execute one routing job inside a worker process (or inline)."""
    from repro.core.serialization import circuit_from_dict
    from repro.geometry.rect import Rect
    from repro.route.router import GlobalRouter, RouterConfig

    with remote_span_capture(job.trace) as captured:
        with Timer() as timer:
            with span(
                "worker.route_job", job_id=job.job_id, queries=len(job.rects_batch)
            ) as job_span:
                if job.trace is not None and job.trace[2] != os.getpid():
                    job_span.set(queue_seconds=time.time() - job.trace[3])
                key = f"{circuit_data_key(job.circuit_data)}|{job.router_config!r}"
                router = _WORKER_ROUTERS.get(key)
                if router is None:
                    config = (
                        job.router_config if job.router_config is not None else RouterConfig()
                    )
                    router = GlobalRouter(circuit_from_dict(job.circuit_data), config=config)
                    _WORKER_ROUTERS[key] = router
                results = [
                    router.route({name: Rect(*values) for name, values in rects.items()})
                    for rects in job.rects_batch
                ]
        return JobResult(
            job_id=job.job_id,
            results=results,
            stats={"route_queries": float(len(results))},
            elapsed_seconds=timer.elapsed,
            worker_pid=os.getpid(),
            spans=list(captured) if captured else [],
        )


def make_placement_jobs(
    circuit_data: Dict[str, Any],
    spec: Mapping[str, object],
    queries: Sequence[Sequence[Dims]],
    num_jobs: int,
    per_query_seeds: Optional[Sequence[int]] = None,
) -> List[PlacementJob]:
    """Split ``queries`` into at most ``num_jobs`` contiguous placement jobs.

    Contiguous chunks (rather than round-robin) keep each worker's memo
    locality and make reassembly a simple concatenation by ``job_id``.
    """
    from repro.obs.spans import trace_context

    frozen = [tuple((int(w), int(h)) for w, h in query) for query in queries]
    chunks = chunk_evenly(frozen, num_jobs)
    trace = trace_context()
    jobs: List[PlacementJob] = []
    start = 0
    for job_id, chunk in enumerate(chunks):
        seeds = (
            tuple(per_query_seeds[start : start + len(chunk)])
            if per_query_seeds is not None
            else None
        )
        jobs.append(
            PlacementJob(
                circuit_data=circuit_data,
                spec=dict(spec),
                queries=tuple(chunk),
                job_id=job_id,
                per_query_seeds=seeds,
                trace=trace,
            )
        )
        start += len(chunk)
    return jobs


def chunk_evenly(items: Sequence[Any], num_chunks: int) -> List[List[Any]]:
    """Split ``items`` into up to ``num_chunks`` contiguous, near-equal chunks."""
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    count = min(num_chunks, len(items))
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    chunks: List[List[Any]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks
