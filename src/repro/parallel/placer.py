"""The ``"parallel"`` engine: any inner placer, fanned across processes.

``make_placer({"kind": "parallel", "inner": {"kind": "service", ...},
"workers": 4}, circuit)`` wraps an *inner* declarative spec in a
:class:`ParallelPlacer`.  Single queries run on a local instance of the
inner engine (a pool round-trip cannot beat an in-process call);
``place_batch`` deduplicates the batch, shards the unique queries into
picklable jobs and fans them across a :class:`~repro.parallel.pool.WorkerPool`,
where each worker reconstructs the inner engine from the spec.

Determinism: for stateless inner engines (``mps`` / ``service`` /
``template``) every query is answered independently, so results are
bit-identical at any worker count by construction.  Stochastic inner
engines (``annealing`` / ``genetic`` / ``random``) carry hidden RNG state
across queries and would drift with sharding; ``reseed="per_query"``
rebuilds them per query with a deterministic seed stream instead, which
restores bit-identity at the cost of per-query construction.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.api.placement import Dims, Placement
from repro.api.placer import Placer
from repro.circuit.netlist import Circuit
from repro.parallel.pool import WorkerPool
from repro.utils.rng import stream_seed

#: ``reseed`` modes: leave the inner spec alone, or reseed per query.
RESEED_NONE = "none"
RESEED_PER_QUERY = "per_query"


class ParallelPlacer(Placer):
    """Fan an inner placement engine's batches across worker processes."""

    name = "parallel"

    def __init__(
        self,
        circuit: Circuit,
        inner: Union[str, Mapping[str, object]],
        workers: int = 2,
        bounds=None,
        reseed: str = RESEED_NONE,
        start_method: Optional[str] = None,
        min_batch: Optional[int] = None,
    ) -> None:
        from repro.api.registry import normalize_spec

        if reseed not in (RESEED_NONE, RESEED_PER_QUERY):
            raise ValueError(
                f"reseed must be {RESEED_NONE!r} or {RESEED_PER_QUERY!r}, got {reseed!r}"
            )
        self._circuit = circuit
        self._inner_spec = normalize_spec(inner)
        if bounds is not None and "bounds" not in self._inner_spec:
            self._inner_spec["bounds"] = bounds
        self._reseed = reseed
        self._pool = WorkerPool(
            workers=workers,
            start_method=start_method,
            **({"min_pool_queries": min_batch} if min_batch is not None else {}),
        )
        self._local: Optional[Placer] = None
        self._circuit_data: Optional[Dict[str, object]] = None
        self._merged_stats: Dict[str, float] = {}
        self._queries = 0
        self._batches = 0

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    @property
    def circuit(self) -> Circuit:
        """The circuit this placer answers queries for."""
        return self._circuit

    @property
    def inner_spec(self) -> Dict[str, object]:
        """The declarative spec workers rebuild the inner engine from."""
        return dict(self._inner_spec)

    @property
    def workers(self) -> int:
        """Worker-process count of the underlying pool."""
        return self._pool.workers

    @property
    def pool(self) -> WorkerPool:
        """The worker pool (shared; close it with :meth:`close`)."""
        return self._pool

    def _local_placer(self) -> Placer:
        from repro.api.registry import make_placer

        if self._local is None:
            self._local = make_placer(self._inner_spec, self._circuit)
        return self._local

    def _serialized_circuit(self) -> Dict[str, object]:
        from repro.core.serialization import circuit_to_dict

        if self._circuit_data is None:
            self._circuit_data = circuit_to_dict(self._circuit)
        return self._circuit_data

    def close(self) -> None:
        """Shut the worker pool down (the placer stays usable; it restarts)."""
        self._pool.close()

    def __enter__(self) -> "ParallelPlacer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Placer protocol
    # ------------------------------------------------------------------ #
    def place(self, dims: Sequence[Dims]) -> Placement:
        """One query — answered by a local inner engine, never the pool."""
        self._queries += 1
        result = self._local_placer().place(dims)
        return result

    def place_batch(self, queries: Sequence[Sequence[Dims]]) -> List[Placement]:
        """Dedup, shard and fan the batch across the worker pool."""
        self._batches += 1
        self._queries += len(queries)
        per_query_seeds = None
        if self._reseed == RESEED_PER_QUERY:
            base = int(self._inner_spec.get("seed", 0))  # type: ignore[arg-type]
            per_query_seeds = [stream_seed(base, index) for index in range(len(queries))]
        results, merged = self._pool.place_batch(
            self._serialized_circuit(),
            self._inner_spec,
            queries,
            per_query_seeds=per_query_seeds,
        )
        for key, value in merged.items():
            self._merged_stats[key] = self._merged_stats.get(key, 0.0) + value
        return results

    def stats(self) -> Dict[str, float]:
        """Pool counters plus the merged per-worker inner-engine counters."""
        stats: Dict[str, float] = {
            "queries": float(self._queries),
            "batches": float(self._batches),
            "workers": float(self._pool.workers),
        }
        for key, value in self._merged_stats.items():
            stats[f"worker_{key}" if not key.startswith("pool_") else key] = value
        local = self._local
        if local is not None:
            for key, value in local.stats().items():
                if isinstance(value, (int, float)):
                    stats[f"local_{key}"] = float(value)
        return stats
