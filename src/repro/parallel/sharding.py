"""Shard-aware structure registry for many-process deployments.

A flat :class:`~repro.service.registry.StructureRegistry` keeps every
structure file and one ``index.json`` in a single directory; under heavy
concurrent traffic every index write contends on that one file, and
simultaneous first-sight fetches of the same topology each pay a full
generation run ("wasted work, never corruption").

:class:`ShardedStructureRegistry` fixes both at scale:

* **Shards** — registry keys are split by fingerprint prefix into
  ``root/<prefix>/`` subdirectories, each a self-contained flat registry
  with its own index.  Writers touching different shards never contend,
  and the fingerprint's uniform distribution keeps shards balanced.
* **Advisory locks** — ``get_or_generate`` takes a per-key ``flock`` in
  ``root/.locks/`` before concluding a structure is missing, re-reads the
  shard index under the lock, and only then generates.  Across any number
  of processes each topology is generated **exactly once**.

The directory carries a marker file, so :func:`open_registry` can tell a
sharded root from a flat one and hand back the right flavor.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

try:  # POSIX advisory locks; Windows degrades to lock-free (flat semantics).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.circuit.netlist import Circuit
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.core.structure import MultiPlacementStructure
from repro.obs.spans import clock, is_enabled as _obs_enabled, metrics as _obs_metrics, span
from repro.service.fingerprint import structure_key
from repro.service.registry import RegistryEntry, RegistryStats, StructureRegistry
from repro.utils.logging_utils import get_logger

LOGGER = get_logger("parallel.sharding")

MARKER_NAME = "sharding.json"
MARKER_FORMAT_VERSION = 1
LOCK_DIR_NAME = ".locks"

#: Default number of leading key characters that pick a shard (16^2 dirs max).
DEFAULT_SHARD_CHARS = 2


@contextlib.contextmanager
def advisory_lock(path: Path) -> Iterator[None]:
    """Hold an exclusive advisory file lock on ``path`` for the block.

    The lock file is created if missing and never deleted (deleting a lock
    file while another process blocks on it reintroduces the race the lock
    exists to prevent).  On platforms without ``fcntl`` this is a no-op —
    callers degrade to the flat registry's last-writer-wins semantics.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = open(path, "a+")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    finally:
        handle.close()


class ShardedStructureRegistry:
    """A structure registry fanned across fingerprint-prefix shard directories.

    Mirrors the full :class:`~repro.service.registry.StructureRegistry`
    surface (``fetch`` / ``get`` / ``put`` / ``get_or_generate`` /
    ``contains`` / ``keys`` / ``entries`` / ``clear`` / ``stats``), so a
    :class:`~repro.service.engine.PlacementService` can take either
    flavor without caring.

    Parameters
    ----------
    root:
        Directory holding the shard subdirectories, the lock directory
        and the sharding marker.  Created if missing.
    shard_chars:
        Leading key characters that select the shard.  Persisted in the
        marker on first creation; reopening an existing sharded root
        always uses the persisted value.
    """

    def __init__(
        self, root: Union[str, Path], shard_chars: int = DEFAULT_SHARD_CHARS
    ) -> None:
        if shard_chars < 1:
            raise ValueError("shard_chars must be at least 1")
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._shard_chars = self._init_marker(shard_chars)
        self._shards: Dict[str, StructureRegistry] = {}
        self._own_stats = RegistryStats()

    # ------------------------------------------------------------------ #
    # Marker / layout
    # ------------------------------------------------------------------ #
    def _marker_path(self) -> Path:
        return self._root / MARKER_NAME

    def _init_marker(self, shard_chars: int) -> int:
        marker = self._marker_path()
        if marker.exists():
            with marker.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            version = data.get("format_version")
            if version != MARKER_FORMAT_VERSION:
                raise ValueError(f"unsupported sharding marker version {version!r}")
            return int(data["shard_chars"])
        # First creation: persist the layout under the key-generation lock
        # so two processes opening one fresh root agree on shard_chars.
        with advisory_lock(self._root / LOCK_DIR_NAME / "marker.lock"):
            if marker.exists():
                with marker.open("r", encoding="utf-8") as handle:
                    return int(json.load(handle)["shard_chars"])
            payload = json.dumps(
                {"format_version": MARKER_FORMAT_VERSION, "shard_chars": shard_chars}
            )
            tmp = marker.with_suffix(".json.writing")
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, marker)
        return shard_chars

    @property
    def root(self) -> Path:
        """The sharded registry directory."""
        return self._root

    @property
    def shard_chars(self) -> int:
        """Number of leading key characters that select a shard."""
        return self._shard_chars

    @property
    def stats(self) -> RegistryStats:
        """Load/generation counters for *this* registry instance."""
        return self._own_stats

    def shard_names(self) -> List[str]:
        """Names of every shard directory present on disk, sorted."""
        names = []
        for path in self._root.iterdir():
            if path.is_dir() and path.name != LOCK_DIR_NAME:
                names.append(path.name)
        return sorted(names)

    def shard_for(self, key: str) -> StructureRegistry:
        """The flat registry owning ``key`` (opened lazily, cached)."""
        return self._open_shard(key[: self._shard_chars])

    def _lock_path(self, key: str) -> Path:
        return self._root / LOCK_DIR_NAME / f"{key}.lock"

    # ------------------------------------------------------------------ #
    # Lookup (StructureRegistry surface)
    # ------------------------------------------------------------------ #
    def key_for(self, circuit: Circuit, config: Optional[GeneratorConfig] = None) -> str:
        """The registry key of ``circuit`` under ``config``."""
        return structure_key(circuit, self._normalize(config))

    _normalize = staticmethod(StructureRegistry._normalize)

    def __len__(self) -> int:
        return sum(len(self._fresh_shard(name)) for name in self.shard_names())

    def _open_shard(self, name: str) -> StructureRegistry:
        shard = self._shards.get(name)
        if shard is None:
            shard = StructureRegistry(self._root / name)
            self._shards[name] = shard
        return shard

    def _fresh_shard(self, name: str) -> StructureRegistry:
        """The shard with its index re-read when we had it cached.

        Aggregate views (``__len__`` / ``keys`` / ``entries``) must see
        what sibling processes have written since our last read; a shard
        opened for the first time already reads the on-disk index.
        """
        shard = self._shards.get(name)
        if shard is None:
            return self._open_shard(name)
        shard.reload()
        return shard

    def keys(self) -> List[str]:
        """All registry keys across every shard, sorted."""
        keys: List[str] = []
        for name in self.shard_names():
            keys.extend(self._fresh_shard(name).keys())
        return sorted(keys)

    def entries(self) -> List[RegistryEntry]:
        """All index entries across every shard, sorted by key."""
        entries: List[RegistryEntry] = []
        for name in self.shard_names():
            entries.extend(self._fresh_shard(name).entries())
        return sorted(entries, key=lambda entry: entry.key)

    def entry(self, key: str) -> Optional[RegistryEntry]:
        """The index entry under ``key``, or ``None``."""
        return self.shard_for(key).entry(key)

    def contains(self, circuit: Circuit, config: Optional[GeneratorConfig] = None) -> bool:
        """True when a structure for (``circuit``, ``config``) is registered."""
        key = self.key_for(circuit, config)
        shard = self.shard_for(key)
        if shard.entry(key) is not None:
            return True
        shard.reload()  # another process may have indexed it since our read
        return shard.entry(key) is not None

    def get(
        self, circuit: Circuit, config: Optional[GeneratorConfig] = None
    ) -> Optional[MultiPlacementStructure]:
        """Load the stored structure for (``circuit``, ``config``), or ``None``."""
        key = self.key_for(circuit, config)
        shard = self.shard_for(key)
        structure = shard.get(circuit, config)
        if structure is None:
            shard.reload()
            structure = shard.get(circuit, config)
        if structure is not None:
            self._own_stats.loads += 1
        return structure

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def put(
        self,
        structure: MultiPlacementStructure,
        config: Optional[GeneratorConfig] = None,
    ) -> RegistryEntry:
        """Persist ``structure`` in its shard under the per-key lock."""
        key = self.key_for(structure.circuit, config)
        with advisory_lock(self._lock_path(key)):
            return self.shard_for(key).put(structure, config)

    def fetch(
        self,
        circuit: Circuit,
        config: Optional[GeneratorConfig] = None,
    ) -> Tuple[MultiPlacementStructure, bool]:
        """``(structure, generated)``, generating **exactly once** across processes.

        The fast path is lock-free: a structure already visible in the
        shard loads immediately.  Only on a miss does the caller take the
        per-key advisory lock, re-read the shard index (a sibling may have
        generated while we waited), and generate if the key is still
        absent — so concurrent first-sight fetches serialize on the lock
        and every process after the first loads from disk.
        """
        key = self.key_for(circuit, config)
        shard = self.shard_for(key)
        with span("registry.fetch", circuit=circuit.name, sharded=True) as obs_span:
            structure = shard.get(circuit, config)
            if structure is not None:
                self._own_stats.loads += 1
                obs_span.set(hit=True)
                if _obs_enabled():
                    _obs_metrics().inc("registry.loads")
                return structure, False
            lock_requested = clock()
            with advisory_lock(self._lock_path(key)):
                if _obs_enabled():
                    # How long this process queued behind siblings for the
                    # per-key generation lock — the cross-process
                    # contention signal of the exactly-once path.
                    _obs_metrics().observe(
                        "registry.lock_wait_seconds", clock() - lock_requested
                    )
                shard.reload()
                structure = shard.get(circuit, config)
                if structure is not None:
                    self._own_stats.loads += 1
                    obs_span.set(hit=True, lock_waited=True)
                    if _obs_enabled():
                        _obs_metrics().inc("registry.loads")
                    return structure, False
                LOGGER.info(
                    "sharded registry miss for circuit %s (key %s); generating",
                    circuit.name,
                    key,
                )
                obs_span.set(hit=False)
                with span("registry.generate", circuit=circuit.name):
                    structure = MultiPlacementGenerator(
                        circuit, self._normalize(config)
                    ).generate()
                shard.put(structure, config)
                self._own_stats.generations += 1
                if _obs_enabled():
                    _obs_metrics().inc("registry.generations")
                return structure, True

    def get_or_generate(
        self,
        circuit: Circuit,
        config: Optional[GeneratorConfig] = None,
    ) -> MultiPlacementStructure:
        """The stored structure for (``circuit``, ``config``), generating if absent."""
        structure, _ = self.fetch(circuit, config)
        return structure

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def reload(self) -> None:
        """Re-read every opened shard's on-disk index."""
        for shard in self._shards.values():
            shard.reload()

    def reap_temp_files(self, max_age_seconds: Optional[float] = None) -> List[Path]:
        """Reap orphaned temp files in every shard (see the flat registry)."""
        reaped: List[Path] = []
        for name in self.shard_names():
            shard = self._open_shard(name)
            if max_age_seconds is None:
                reaped.extend(shard.reap_temp_files())
            else:
                reaped.extend(shard.reap_temp_files(max_age_seconds))
        return reaped

    def clear(self) -> None:
        """Delete every registered structure across all shards."""
        for name in self.shard_names():
            self._open_shard(name).clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedStructureRegistry(root={str(self._root)!r}, "
            f"shard_chars={self._shard_chars}, shards={len(self.shard_names())})"
        )


@dataclass(frozen=True)
class ShardOwnerMap:
    """Deterministic shard-prefix → worker-slot assignment.

    The serving daemon pins each registry shard to one worker process so
    that a shard's structure files and in-process caches stay warm in a
    single place.  Ownership is modular over the hex value of the shard
    prefix: fingerprints are uniformly distributed, so shards spread
    evenly over workers, and the assignment is a pure function of
    ``(prefix, workers)`` — every process (and every restart) computes the
    same map without coordination.  Rebalancing on a worker-count change
    is wholesale, which is fine for single-node process pinning; a
    multi-node deployment would swap this for consistent hashing.
    """

    workers: int
    shard_chars: int = DEFAULT_SHARD_CHARS

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.shard_chars < 1:
            raise ValueError("shard_chars must be at least 1")

    def prefix_for(self, key: str) -> str:
        """The shard prefix of a registry ``key``."""
        return key[: self.shard_chars]

    def owner_for(self, prefix: str) -> int:
        """The worker slot owning shard ``prefix`` (``0 .. workers-1``)."""
        try:
            value = int(prefix, 16)
        except ValueError:
            # Registry keys are hex fingerprints, but stay total for any
            # string so callers never need a fallback path of their own.
            digest = hashlib.sha256(prefix.encode("utf-8")).digest()
            value = int.from_bytes(digest[:8], "big")
        return value % self.workers

    def owner_for_key(self, key: str) -> int:
        """The worker slot owning the shard of registry ``key``."""
        return self.owner_for(self.prefix_for(key))

    def assignments(self, keys: Sequence[str]) -> Dict[int, List[str]]:
        """Group ``keys`` by owning worker slot (slots with no keys omitted)."""
        grouped: Dict[int, List[str]] = {}
        for key in keys:
            grouped.setdefault(self.owner_for_key(key), []).append(key)
        return grouped


AnyRegistry = Union[StructureRegistry, ShardedStructureRegistry]


def open_registry(
    root: Union[str, Path],
    sharded: Optional[bool] = None,
    shard_chars: int = DEFAULT_SHARD_CHARS,
) -> AnyRegistry:
    """Open the registry at ``root``, auto-detecting its layout.

    An existing sharded root (marker file present) always opens sharded; an
    existing flat root (``index.json`` present) always opens flat.  For a
    fresh directory ``sharded`` decides (default: flat, the historical
    layout); passing ``sharded`` against an existing layout of the other
    flavor raises rather than silently splitting the library in two.
    """
    root = Path(root)
    has_marker = (root / MARKER_NAME).exists()
    has_flat_index = (root / "index.json").exists()
    if has_marker:
        if sharded is False:
            raise ValueError(f"registry at {root} is sharded; cannot open flat")
        return ShardedStructureRegistry(root, shard_chars=shard_chars)
    if has_flat_index:
        if sharded is True:
            raise ValueError(f"registry at {root} is flat; cannot open sharded")
        return StructureRegistry(root)
    if sharded:
        return ShardedStructureRegistry(root, shard_chars=shard_chars)
    return StructureRegistry(root)
