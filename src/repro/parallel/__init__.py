"""Parallel execution: process pools, picklable jobs, shard-aware registry.

The synthesis loop is embarrassingly parallel across candidate placements;
this package is the concurrency story that exploits it:

* :class:`~repro.parallel.pool.WorkerPool` — a reusable process pool that
  executes :mod:`repro.parallel.jobs` specs (placers reconstructed from
  declarative registry specs inside each worker, results reassembled
  deterministically).
* :class:`~repro.parallel.sharding.ShardedStructureRegistry` — the
  structure library split into fingerprint-prefix shards with per-key
  advisory file locks, so any number of processes share one library with
  exactly-once generation.  :func:`~repro.parallel.sharding.open_registry`
  auto-detects flat vs. sharded roots.
* :class:`~repro.parallel.placer.ParallelPlacer` — the ``"parallel"``
  engine kind: any inner spec, batches fanned across workers.

Entry points: ``make_placer({"kind": "parallel", "inner": ...})``,
``PlacementService.instantiate_batch(..., workers=N)`` /
``route_batch(..., workers=N)``, and ``SynthesisConfig(workers=N)``.
"""

from repro.parallel.jobs import (
    JobResult,
    PlacementJob,
    RouteJob,
    run_placement_job,
    run_route_job,
)
from repro.parallel.placer import ParallelPlacer
from repro.parallel.pool import WorkerPool, default_workers, resolve_start_method
from repro.parallel.sharding import (
    ShardedStructureRegistry,
    advisory_lock,
    open_registry,
)

__all__ = [
    "JobResult",
    "ParallelPlacer",
    "PlacementJob",
    "RouteJob",
    "ShardedStructureRegistry",
    "WorkerPool",
    "advisory_lock",
    "default_workers",
    "open_registry",
    "resolve_start_method",
    "run_placement_job",
    "run_route_job",
]
