"""The process-pool execution engine behind every parallel entry point.

:class:`WorkerPool` owns a lazily started ``ProcessPoolExecutor`` and runs
:mod:`repro.parallel.jobs` job specs on it.  Three design rules keep it
predictable:

* **Jobs, not objects** — only picklable job specs cross the boundary;
  workers rebuild placers from declarative registry specs and cache them
  for the pool's lifetime (see :mod:`repro.parallel.jobs`).
* **Deterministic reassembly** — results are ordered by ``job_id`` and
  queries keep their in-job order, so the output is a pure function of
  the input batch regardless of worker count or completion order.
* **Graceful degradation** — ``workers <= 1`` (or a tiny batch) runs the
  same job functions inline in the calling process: identical results,
  no pool overhead, and a single code path to test.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import multiprocessing

from repro.api.placement import Dims, Placement
from repro.obs.spans import (
    ingest_spans,
    is_enabled as _obs_enabled,
    metrics as _obs_metrics,
    span,
    trace_context,
)
from repro.parallel.jobs import (
    JobResult,
    RouteJob,
    chunk_evenly,
    make_placement_jobs,
    run_placement_job,
    run_route_job,
)
from repro.utils.logging_utils import get_logger

LOGGER = get_logger("parallel.pool")

#: Below this many unique queries a pool round-trip costs more than it saves.
MIN_POOL_QUERIES = 4


def _shutdown_executor(executor: ProcessPoolExecutor) -> None:
    """Finalizer target: tear an abandoned executor down without blocking."""
    executor.shutdown(wait=False, cancel_futures=True)


def _prestart_nap(seconds: float) -> int:
    """Pre-fork warm job: hold the worker busy so the next submit forks."""
    time.sleep(seconds)
    return os.getpid()


#: Every pool with a live executor, so a crashed or signalled process can
#: still reap its worker processes at interpreter exit.  Weak references:
#: registration must never keep an abandoned pool (or its executor) alive.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()
_ATEXIT_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def _close_live_pools() -> None:
    """The atexit guard: shut down every pool still holding worker processes.

    A server that crashes (or a test run that never reaches ``close()``)
    must not leak executor processes past interpreter exit — orphaned
    workers survive their parent and pile up across runs.  ``wait=False``:
    exit teardown must not block behind in-flight jobs.
    """
    for pool in list(_LIVE_POOLS):
        try:
            pool.close(wait=False)
        except Exception:  # pragma: no cover - teardown must never raise
            pass


def _register_atexit_guard(pool: "WorkerPool") -> None:
    global _ATEXIT_REGISTERED
    with _ATEXIT_LOCK:
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_live_pools)
            _ATEXIT_REGISTERED = True
        _LIVE_POOLS.add(pool)


def default_workers() -> int:
    """A sensible worker count for this machine (at least 1)."""
    return max(1, os.cpu_count() or 1)


def resolve_start_method(preferred: Optional[str] = None) -> str:
    """The multiprocessing start method to use (prefer ``fork`` where legal).

    ``fork`` shares the parent's imported modules copy-on-write, so worker
    startup is milliseconds instead of a fresh interpreter; platforms
    without it (Windows, macOS defaults) fall back to ``spawn``.
    """
    available = multiprocessing.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise ValueError(
                f"start method {preferred!r} unavailable; choose from {available}"
            )
        return preferred
    return "fork" if "fork" in available else "spawn"


class WorkerPool:
    """A reusable process pool that executes placement and routing jobs.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (or ``0``/``None``) never
        starts a pool — jobs run inline, bit-identically.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default picks
        ``fork`` when the platform offers it.
    min_pool_queries:
        Smallest unique-query count worth a pool round-trip; smaller
        batches run inline.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        min_pool_queries: int = MIN_POOL_QUERIES,
    ) -> None:
        self._workers = max(1, workers if workers is not None else default_workers())
        self._start_method = resolve_start_method(start_method)
        self._min_pool_queries = min_pool_queries
        self._executor: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None
        #: Shard-affine slots: one single-process executor per pinned slot,
        #: so every job pinned to slot *k* runs in the same OS process and
        #: finds that process's placer/structure caches warm.
        self._pinned: Dict[int, ProcessPoolExecutor] = {}
        self._pinned_finalizers: Dict[int, weakref.finalize] = {}
        self._close_lock = threading.Lock()
        #: Serializes lazy executor creation: concurrent dispatch threads
        #: must not fork at the same time (and must not each build an
        #: executor for the same slot, orphaning the loser's processes).
        self._create_lock = threading.Lock()
        #: Cumulative pool counters (inline runs included).
        self._counters: Dict[str, float] = {
            "jobs": 0.0,
            "pool_jobs": 0.0,
            "inline_jobs": 0.0,
            "pinned_jobs": 0.0,
            "batches": 0.0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Configured worker-process count."""
        return self._workers

    @property
    def start_method(self) -> str:
        """The multiprocessing start method the pool uses."""
        return self._start_method

    @property
    def counters(self) -> Dict[str, float]:
        """Cumulative job/batch counters (a live view; copy to freeze)."""
        return dict(self._counters)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._create_lock:
            if self._executor is None:
                context = multiprocessing.get_context(self._start_method)
                executor = ProcessPoolExecutor(
                    max_workers=self._workers, mp_context=context
                )
                # Publish the executor and its cleanup hooks together: if the
                # finalizer registration itself failed we would rather not
                # keep a half-wired executor on the instance.
                try:
                    self._finalizer = weakref.finalize(
                        self, _shutdown_executor, executor
                    )
                    self._executor = executor
                    _register_atexit_guard(self)
                except BaseException:  # pragma: no cover - registration failure
                    executor.shutdown(wait=False, cancel_futures=True)
                    self._executor = None
                    self._finalizer = None
                    raise
            return self._executor

    def _ensure_pinned(self, slot: int) -> ProcessPoolExecutor:
        """The single-process executor bound to pinned ``slot`` (lazy)."""
        if not 0 <= slot < self._workers:
            raise ValueError(
                f"pin slot {slot} out of range for {self._workers} workers"
            )
        with self._create_lock:
            executor = self._pinned.get(slot)
            if executor is None:
                context = multiprocessing.get_context(self._start_method)
                executor = ProcessPoolExecutor(max_workers=1, mp_context=context)
                try:
                    self._pinned_finalizers[slot] = weakref.finalize(
                        self, _shutdown_executor, executor
                    )
                    self._pinned[slot] = executor
                    _register_atexit_guard(self)
                except BaseException:  # pragma: no cover - registration failure
                    executor.shutdown(wait=False, cancel_futures=True)
                    self._pinned.pop(slot, None)
                    self._pinned_finalizers.pop(slot, None)
                    raise
            return executor

    def prestart(self, pin_slots: Sequence[int] = ()) -> None:
        """Fork every worker process now, from a quiescent thread state.

        A fork taken mid-traffic copies any lock a sibling thread holds
        at that instant — import locks included — into the child *held*,
        with no thread left to release it: the worker deadlocks on its
        first lazy import.  Servers call this once at startup, before
        request threads exist.  Worker-side modules are imported into the
        parent first (forked children then find them in ``sys.modules``),
        the fan-out pool and every pinned slot fork here, and dispatches
        during traffic reuse the warm processes.
        """
        if self._workers <= 1:
            return
        from repro.api.registry import preload_builtin_factories

        preload_builtin_factories()
        executor = self._ensure_executor()
        # submit() forks at most one worker per call and only while none
        # sits idle; the naps keep already-forked workers busy so that N
        # submissions really fork all N processes.
        warm = [
            executor.submit(_prestart_nap, 0.05) for _ in range(self._workers)
        ]
        warm.extend(
            self._ensure_pinned(slot).submit(_prestart_nap, 0.0)
            for slot in pin_slots
        )
        for future in warm:
            future.result()

    def close(self, wait: bool = True) -> None:
        """Shut the pool down (idempotent; the pool restarts on next use).

        Safe to call any number of times, from ``__exit__`` after an
        error, and concurrently with the atexit guard: the executor handle
        is claimed under a lock before shutdown, so exactly one caller
        tears it down.
        """
        with self._close_lock:
            executor, self._executor = self._executor, None
            finalizer, self._finalizer = self._finalizer, None
            pinned, self._pinned = dict(self._pinned), {}
            pinned_finalizers, self._pinned_finalizers = (
                dict(self._pinned_finalizers),
                {},
            )
        if executor is None and not pinned:
            return
        for slot_finalizer in pinned_finalizers.values():
            slot_finalizer.detach()
        if finalizer is not None:
            finalizer.detach()
        _LIVE_POOLS.discard(self)
        for slot_executor in pinned.values():
            slot_executor.shutdown(wait=wait, cancel_futures=not wait)
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Job execution
    # ------------------------------------------------------------------ #
    def run_jobs(
        self,
        jobs: Sequence[Any],
        runner: Callable[[Any], JobResult],
        pin_slot: Optional[int] = None,
    ) -> List[JobResult]:
        """Run ``jobs`` through ``runner`` and return results sorted by job id.

        Uses the pool when it can pay for itself (more than one job and
        more than one worker), otherwise runs inline.  With ``pin_slot``
        every job runs in that slot's dedicated worker process — even a
        single job, because the point of pinning is *which* process does
        the work (warm shard caches), not fan-out.  A one-worker pool
        ignores pinning: the calling process already owns everything.
        """
        self._counters["jobs"] += len(jobs)
        pinned = pin_slot is not None and self._workers > 1
        inline = not pinned and (self._workers <= 1 or len(jobs) <= 1)
        with span(
            "pool.dispatch",
            jobs=len(jobs),
            workers=self._workers,
            inline=inline,
            pin_slot=pin_slot if pinned else None,
        ):
            if inline:
                self._counters["inline_jobs"] += len(jobs)
                results = [runner(job) for job in jobs]
            elif pinned:
                self._counters["pinned_jobs"] += len(jobs)
                executor = self._ensure_pinned(pin_slot)  # type: ignore[arg-type]
                results = list(executor.map(runner, jobs))
            else:
                self._counters["pool_jobs"] += len(jobs)
                executor = self._ensure_executor()
                results = list(executor.map(runner, jobs))
            # Re-parent worker-side spans into this trace (records carry
            # the coordinator's trace/span ids already; inline jobs return
            # no records because their spans landed here directly).
            for result in results:
                if result.spans:
                    ingest_spans(result.spans)
        if _obs_enabled():
            metrics = _obs_metrics()
            metrics.inc("pool.jobs", len(jobs))
            if inline:
                metrics.inc("pool.inline_jobs", len(jobs))
            elif pinned:
                metrics.inc("pool.pinned_jobs", len(jobs))
            else:
                metrics.inc("pool.pool_jobs", len(jobs))
        return sorted(results, key=lambda result: result.job_id)

    def place_batch(
        self,
        circuit_data: Dict[str, Any],
        spec: Mapping[str, object],
        queries: Sequence[Sequence[Dims]],
        per_query_seeds: Optional[Sequence[int]] = None,
        dedup: bool = True,
        pin_slot: Optional[int] = None,
    ) -> Tuple[List[Placement], Dict[str, float]]:
        """Answer a placement batch: dedup, shard, fan out, reassemble.

        Returns ``(placements, merged_stats)`` where ``placements`` is in
        input order (duplicates share one result object) and
        ``merged_stats`` sums the per-worker ``stats()`` counter deltas
        plus pool-level ``pool_*`` counters.  With ``pin_slot`` the whole
        batch runs as one job in that slot's dedicated worker process
        (shard-affine dispatch): one IPC round trip, warm caches, no
        barrier across workers that don't own the shard.
        """
        self._counters["batches"] += 1
        if _obs_enabled():
            _obs_metrics().inc("pool.batches")
        frozen = [tuple((int(w), int(h)) for w, h in query) for query in queries]
        if dedup and per_query_seeds is None:
            order: List[Tuple[Dims, ...]] = []
            positions: Dict[Tuple[Dims, ...], List[int]] = {}
            for position, query in enumerate(frozen):
                if query not in positions:
                    positions[query] = []
                    order.append(query)
                positions[query].append(position)
        else:
            # Per-query seeds make every query unique by construction.
            order = list(frozen)
            positions = {}

        num_jobs = self._workers
        if pin_slot is not None or len(order) < max(self._min_pool_queries, 2):
            num_jobs = 1
        jobs = make_placement_jobs(
            circuit_data, spec, order, num_jobs, per_query_seeds=per_query_seeds
        )
        job_results = self.run_jobs(jobs, run_placement_job, pin_slot=pin_slot)

        unique_results: List[Placement] = []
        merged: Dict[str, float] = {}
        for job_result in job_results:
            unique_results.extend(job_result.results)
            for key, value in job_result.stats.items():
                merged[key] = merged.get(key, 0.0) + value
        merged["pool_jobs"] = float(len(job_results))
        merged["pool_unique_queries"] = float(len(order))
        merged["pool_dedup_hits"] = float(len(frozen) - len(order))
        merged["pool_worker_processes"] = float(
            len({result.worker_pid for result in job_results})
        )
        if pin_slot is not None:
            merged["pool_pinned_slot"] = float(pin_slot)

        if positions:
            results: List[Optional[Placement]] = [None] * len(frozen)
            for key, result in zip(order, unique_results):
                for position in positions[key]:
                    results[position] = result
            return results, merged  # type: ignore[return-value] # every slot filled
        return unique_results, merged

    def route_batch(
        self,
        circuit_data: Dict[str, Any],
        rects_batch: Sequence[Mapping[str, Tuple[int, int, int, int]]],
        router_config: Optional[object] = None,
    ) -> Tuple[List[Any], Dict[str, float]]:
        """Route a batch of placed floorplans across the pool.

        ``rects_batch`` entries are plain ``{block: (x, y, w, h)}`` dicts;
        returns ``(layouts, merged_stats)`` in input order.
        """
        self._counters["batches"] += 1
        if _obs_enabled():
            _obs_metrics().inc("pool.batches")
        frozen = [
            {name: tuple(int(v) for v in values) for name, values in rects.items()}
            for rects in rects_batch
        ]
        num_jobs = self._workers if len(frozen) >= self._min_pool_queries else 1
        chunks = chunk_evenly(frozen, num_jobs)
        trace = trace_context()
        jobs = [
            RouteJob(
                circuit_data=circuit_data,
                rects_batch=tuple(chunk),
                router_config=router_config,
                job_id=job_id,
                trace=trace,
            )
            for job_id, chunk in enumerate(chunks)
        ]
        job_results = self.run_jobs(jobs, run_route_job)
        layouts: List[Any] = []
        merged: Dict[str, float] = {}
        for job_result in job_results:
            layouts.extend(job_result.results)
            for key, value in job_result.stats.items():
                merged[key] = merged.get(key, 0.0) + value
        merged["pool_jobs"] = float(len(job_results))
        return layouts, merged

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "started" if self._executor is not None else "idle"
        return (
            f"WorkerPool(workers={self._workers}, "
            f"start_method={self._start_method!r}, {state})"
        )
