"""Streaming statistics used to track annealing cost histories.

The BDIO needs the *average* and *best* cost over all candidate dimension
vectors it visits (Section 3.2 of the paper); :class:`RunningStats`
accumulates those without storing the full history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable


@dataclass
class RunningStats:
    """Welford-style running mean / variance / extrema accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Accumulate a single observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Accumulate many observations."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator combining two independent streams."""
        if other.count == 0:
            return RunningStats(self.count, self.mean, self._m2, self.minimum, self.maximum)
        if self.count == 0:
            return RunningStats(other.count, other.mean, other._m2, other.minimum, other.maximum)
        count = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / count
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / count
        return RunningStats(
            count,
            mean,
            m2,
            min(self.minimum, other.minimum),
            max(self.maximum, other.maximum),
        )


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Summarize an iterable of floats as ``{count, mean, std, min, max}``."""
    stats = RunningStats()
    stats.extend(values)
    return {
        "count": float(stats.count),
        "mean": stats.mean if stats.count else 0.0,
        "std": stats.stddev,
        "min": stats.minimum if stats.count else 0.0,
        "max": stats.maximum if stats.count else 0.0,
    }
