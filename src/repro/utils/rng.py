"""Seeded random number generator helpers.

Every stochastic component in the library (placement explorer, BDIO,
baseline placers, sizing optimizer) receives an explicit
:class:`random.Random` instance so that experiments are reproducible and
tests are deterministic.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

RandomLike = Union[random.Random, int, None]


def make_rng(seed: RandomLike = None) -> random.Random:
    """Return a :class:`random.Random` from a seed, an existing RNG or ``None``.

    Passing an existing RNG returns it unchanged so callers can freely write
    ``rng = make_rng(rng_or_seed)`` at API boundaries.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def stream_seed(base: int, *indices: object) -> int:
    """A stable 64-bit seed for the stream identified by ``(base, *indices)``.

    The mix goes through SHA-256 rather than Python's ``hash`` so the same
    coordinates produce the same seed in every process (``PYTHONHASHSEED``
    randomizes string hashing), which is what lets batched optimizers hand
    each candidate its own RNG stream and stay bit-identical no matter how
    many workers the batch is fanned across.
    """
    payload = ":".join([str(int(base))] + [repr(index) for index in indices])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def stream_rng(base: int, *indices: object) -> random.Random:
    """An independent :class:`random.Random` for the ``(base, *indices)`` stream.

    Unlike :func:`spawn_rng`, this never consumes state from a parent RNG:
    the stream is a pure function of its coordinates, so candidate ``i`` of
    batch ``step`` draws the same numbers whether it is evaluated first,
    last, or on another worker process entirely.
    """
    return random.Random(stream_seed(base, *indices))


def spawn_rng(parent: random.Random, salt: Optional[int] = None) -> random.Random:
    """Derive an independent child RNG from ``parent``.

    Nested algorithms (the explorer spawning a BDIO per iteration) use child
    RNGs so changing the inner loop's draw count does not silently reshuffle
    the outer loop's sequence.
    """
    seed = parent.getrandbits(64)
    if salt is not None:
        seed ^= salt * 0x9E3779B97F4A7C15
    return random.Random(seed)
