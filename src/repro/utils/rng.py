"""Seeded random number generator helpers.

Every stochastic component in the library (placement explorer, BDIO,
baseline placers, sizing optimizer) receives an explicit
:class:`random.Random` instance so that experiments are reproducible and
tests are deterministic.
"""

from __future__ import annotations

import random
from typing import Optional, Union

RandomLike = Union[random.Random, int, None]


def make_rng(seed: RandomLike = None) -> random.Random:
    """Return a :class:`random.Random` from a seed, an existing RNG or ``None``.

    Passing an existing RNG returns it unchanged so callers can freely write
    ``rng = make_rng(rng_or_seed)`` at API boundaries.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(parent: random.Random, salt: Optional[int] = None) -> random.Random:
    """Derive an independent child RNG from ``parent``.

    Nested algorithms (the explorer spawning a BDIO per iteration) use child
    RNGs so changing the inner loop's draw count does not silently reshuffle
    the outer loop's sequence.
    """
    seed = parent.getrandbits(64)
    if salt is not None:
        seed ^= salt * 0x9E3779B97F4A7C15
    return random.Random(seed)
