"""Wall-clock timing helpers used by the experiment harnesses."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context manager measuring elapsed wall-clock time in seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (valid after the ``with`` block exits)."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed


def format_duration(seconds: float) -> str:
    """Format a duration the way the paper's Table 2 does (``1h42m13s``)."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1.0:
        return f"{seconds * 1000:.2f}ms"
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    parts = []
    if hours:
        parts.append(f"{hours}h")
    if minutes or hours:
        parts.append(f"{minutes}m")
    parts.append(f"{secs}s")
    return "".join(parts)
