"""Wall-clock timing helpers used by the experiment harnesses.

:class:`Timer` runs on the span clock (:func:`repro.obs.clock`,
``time.perf_counter``) — the same monotonic clock every traced span uses —
so a timer reading and a span duration around the same region agree.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.spans import clock


class Timer:
    """Context manager measuring elapsed wall-clock time in seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True

    :meth:`lap` records checkpoints without stopping the timer:

    >>> with Timer() as t:
    ...     first = t.lap()
    ...     second = t.lap()
    >>> first >= 0.0 and second >= 0.0
    True
    >>> len(t.laps)
    2
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0
        self._last_lap: Optional[float] = None
        self.laps: List[float] = []

    def __enter__(self) -> "Timer":
        self._start = clock()
        self._last_lap = self._start
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._elapsed = clock() - self._start
            self._start = None
            self._last_lap = None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (valid after the ``with`` block exits)."""
        if self._start is not None:
            return clock() - self._start
        return self._elapsed

    def lap(self) -> float:
        """Record a checkpoint: seconds since the previous lap (or start).

        The lap duration is appended to :attr:`laps` and returned.  Only
        valid while the timer is running.
        """
        if self._start is None:
            raise RuntimeError("lap() is only valid inside the timer's with-block")
        now = clock()
        assert self._last_lap is not None
        duration = now - self._last_lap
        self._last_lap = now
        self.laps.append(duration)
        return duration


def format_duration(seconds: float) -> str:
    """Format a duration the way the paper's Table 2 does (``1h42m13s``)."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1.0:
        return f"{seconds * 1000:.2f}ms"
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    parts = []
    if hours:
        parts.append(f"{hours}h")
    if minutes or hours:
        parts.append(f"{minutes}m")
    parts.append(f"{secs}s")
    return "".join(parts)
