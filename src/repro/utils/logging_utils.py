"""Logging helpers: one namespaced logger per subsystem, silent by default."""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    The library never configures handlers itself; applications opt in with
    :func:`enable_console_logging`.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a console handler to the ``repro`` root logger (idempotent)."""
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
