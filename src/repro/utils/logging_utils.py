"""Logging helpers: one namespaced logger per subsystem, silent by default."""

from __future__ import annotations

import logging

_CONSOLE_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    The library never configures handlers itself; applications opt in with
    :func:`enable_console_logging`.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a console handler to the ``repro`` root logger (idempotent).

    Repeated calls never stack handlers; a second call with a different
    ``level`` reconfigures the existing handler (level and formatter)
    instead of silently keeping the first call's configuration.  Returns
    the active handler.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in logger.handlers:
        if isinstance(handler, logging.StreamHandler):
            handler.setLevel(level)
            handler.setFormatter(logging.Formatter(_CONSOLE_FORMAT))
            return handler
    handler = logging.StreamHandler()
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(_CONSOLE_FORMAT))
    logger.addHandler(handler)
    return handler
