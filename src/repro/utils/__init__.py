"""Small shared utilities: RNG handling, timers, running statistics."""

from repro.utils.rng import make_rng, spawn_rng
from repro.utils.stats import RunningStats, summarize
from repro.utils.timer import Timer, format_duration

__all__ = [
    "make_rng",
    "spawn_rng",
    "RunningStats",
    "summarize",
    "Timer",
    "format_duration",
]
