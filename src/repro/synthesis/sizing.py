"""Sizing variables and the sizing search space."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

SizingPoint = Dict[str, float]


@dataclass(frozen=True)
class SizingVariable:
    """A continuous sizing variable with bounds and a default value."""

    name: str
    minimum: float
    maximum: float
    default: Optional[float] = None
    unit: str = ""
    log_scale: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sizing variable name must be non-empty")
        if self.minimum >= self.maximum:
            raise ValueError(f"variable {self.name}: minimum must be below maximum")
        if self.default is None:
            object.__setattr__(self, "default", (self.minimum + self.maximum) / 2.0)
        if not (self.minimum <= self.default <= self.maximum):
            raise ValueError(f"variable {self.name}: default outside bounds")

    def clamp(self, value: float) -> float:
        """Clamp ``value`` into the variable's range."""
        return min(max(value, self.minimum), self.maximum)

    def sample(self, rng: random.Random) -> float:
        """Draw a uniform (or log-uniform) random value."""
        if self.log_scale and self.minimum > 0:
            import math

            log_min = math.log(self.minimum)
            log_max = math.log(self.maximum)
            return math.exp(rng.uniform(log_min, log_max))
        return rng.uniform(self.minimum, self.maximum)


class DesignSpace:
    """An ordered collection of sizing variables."""

    def __init__(self, variables: Iterable[SizingVariable]) -> None:
        self._variables: List[SizingVariable] = list(variables)
        names = [v.name for v in self._variables]
        if len(set(names)) != len(names):
            raise ValueError("sizing variable names must be unique")
        if not self._variables:
            raise ValueError("design space must contain at least one variable")

    @property
    def variables(self) -> List[SizingVariable]:
        """The sizing variables in declaration order."""
        return list(self._variables)

    def names(self) -> List[str]:
        """Variable names in declaration order."""
        return [v.name for v in self._variables]

    def variable(self, name: str) -> SizingVariable:
        """Look up a variable by name."""
        for variable in self._variables:
            if variable.name == name:
                return variable
        raise KeyError(f"no sizing variable named {name!r}")

    def default_point(self) -> SizingPoint:
        """The point made of every variable's default value."""
        return {v.name: float(v.default) for v in self._variables}

    def random_point(self, rng: random.Random) -> SizingPoint:
        """A uniformly random point inside the space."""
        return {v.name: v.sample(rng) for v in self._variables}

    def clamp(self, point: Mapping[str, float]) -> SizingPoint:
        """Clamp a point into the space (missing variables use defaults)."""
        clamped = self.default_point()
        for name, value in point.items():
            clamped[name] = self.variable(name).clamp(float(value))
        return clamped

    def perturb(
        self,
        point: Mapping[str, float],
        rng: random.Random,
        fraction: float = 0.4,
        step_fraction: float = 0.2,
    ) -> SizingPoint:
        """Perturb a random subset of the variables by a bounded relative step."""
        names = self.names()
        count = max(1, int(round(len(names) * fraction)))
        chosen = set(rng.sample(names, min(count, len(names))))
        new_point = dict(point)
        for variable in self._variables:
            if variable.name not in chosen:
                continue
            span = variable.maximum - variable.minimum
            step = rng.uniform(-step_fraction, step_fraction) * span
            new_point[variable.name] = variable.clamp(point[variable.name] + step)
        return new_point
