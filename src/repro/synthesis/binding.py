"""Bind sizing variables to module generators.

This is the "translate the proposed device sizes into widths and heights of
the modules using module generator functions" step of Section 2.1: a
:class:`CircuitSizingModel` maps a sizing point to the dimension vector the
placement backend consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.circuit.netlist import Circuit
from repro.modgen.base import ModuleGenerator
from repro.synthesis.sizing import DesignSpace, SizingPoint

Dims = Tuple[int, int]
ParamSource = Union[str, float]


@dataclass
class BlockBinding:
    """How one block's footprint is derived from the sizing point.

    ``params`` maps generator parameter names to either a sizing variable
    name (string) or a fixed constant (number).
    """

    block: str
    generator: ModuleGenerator
    params: Dict[str, ParamSource] = field(default_factory=dict)

    def dims_for(self, point: Mapping[str, float]) -> Dims:
        """Footprint of the block for one sizing point."""
        resolved: Dict[str, float] = {}
        for param_name, source in self.params.items():
            if isinstance(source, str):
                resolved[param_name] = float(point[source])
            else:
                resolved[param_name] = float(source)
        footprint = self.generator.footprint(**self.generator.resolve_params(resolved))
        return footprint.dims


class CircuitSizingModel:
    """Map sizing points to per-block dimensions for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        design_space: DesignSpace,
        bindings: Sequence[BlockBinding],
    ) -> None:
        self._circuit = circuit
        self._design_space = design_space
        self._bindings: Dict[str, BlockBinding] = {}
        for binding in bindings:
            if not circuit.has_block(binding.block):
                raise ValueError(f"binding references unknown block {binding.block!r}")
            self._bindings[binding.block] = binding
        for binding in bindings:
            for source in binding.params.values():
                if isinstance(source, str):
                    design_space.variable(source)  # raises KeyError when unknown

    @property
    def circuit(self) -> Circuit:
        """The circuit being sized."""
        return self._circuit

    @property
    def design_space(self) -> DesignSpace:
        """The sizing design space."""
        return self._design_space

    def bindings(self) -> List[BlockBinding]:
        """All block bindings."""
        return list(self._bindings.values())

    def dims_for(self, point: SizingPoint) -> List[Dims]:
        """Per-block dimensions (circuit block order) for one sizing point.

        Blocks without a binding keep their minimum dimensions; every
        footprint is clamped into the block's designer bounds so placement
        backends always receive admissible dimensions.
        """
        clamped_point = self._design_space.clamp(point)
        dims: List[Dims] = []
        for block in self._circuit.blocks:
            binding = self._bindings.get(block.name)
            if binding is None:
                dims.append(block.min_dims)
                continue
            w, h = binding.dims_for(clamped_point)
            dims.append(block.clamp_dims(w, h))
        return dims
