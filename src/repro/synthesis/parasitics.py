"""Wiring parasitic estimation from a placed (and optionally routed) floorplan.

The paper's synthesis loop (Figure 1.b) routes and extracts the layout to
obtain accurate performance estimates.  This module provides two levels of
fidelity:

* :func:`estimate_parasitics` — per-net wirelength from the placement
  under a selectable estimator (``hpwl``/``star``/``mst``), converted to
  lumped wiring capacitance and resistance with per-unit constants typical
  of a 0.35 um-era analog process (the paper's vintage).
* :func:`estimate_parasitics_from_routes` /
  :meth:`ParasiticEstimate.from_routes` — the same lumped model fed by
  *routed* wirelength from a :class:`repro.route.RoutedLayout`, matching
  the paper's route-and-extract step.  Nets the router failed to connect
  fall back to the placement estimator so the loop never sees a zero.

Every estimate records which wirelength model produced it in
:attr:`ParasiticEstimate.wirelength_model` (``"routed"`` for routed
extraction), so downstream reports can tell the fidelity levels apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional

from repro.circuit.netlist import Circuit
from repro.cost.wirelength import per_net_wirelength
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.modgen.base import GRID_UM

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (route imports api)
    from repro.route.result import RoutedLayout

#: Metal-1 wiring capacitance per micrometre of wire, in femtofarads.
DEFAULT_CAP_PER_UM_FF = 0.12
#: Metal-1 wiring resistance per micrometre of wire, in ohms.
DEFAULT_RES_PER_UM_OHM = 0.08

#: The ``wirelength_model`` tag of estimates extracted from routed layouts.
ROUTED_MODEL = "routed"


@dataclass(frozen=True)
class ParasiticEstimate:
    """Lumped wiring parasitics of one placed circuit."""

    #: Per-net wiring capacitance in femtofarads.
    net_capacitance_ff: Mapping[str, float]
    #: Per-net wiring resistance in ohms.
    net_resistance_ohm: Mapping[str, float]
    #: Per-net wirelength in micrometres.
    net_wirelength_um: Mapping[str, float]
    #: The wirelength estimator that produced the lengths
    #: (``"hpwl"``/``"star"``/``"mst"``, or ``"routed"`` for extraction
    #: from a routed layout).
    wirelength_model: str = "hpwl"

    @property
    def total_capacitance_ff(self) -> float:
        """Total wiring capacitance over all nets."""
        return sum(self.net_capacitance_ff.values())

    @property
    def total_wirelength_um(self) -> float:
        """Total wirelength over all nets."""
        return sum(self.net_wirelength_um.values())

    @property
    def from_routing(self) -> bool:
        """True when the lengths came from a routed layout."""
        return self.wirelength_model == ROUTED_MODEL

    def capacitance(self, net_name: str) -> float:
        """Wiring capacitance of one net (0 when the net is unknown)."""
        return self.net_capacitance_ff.get(net_name, 0.0)

    def resistance(self, net_name: str) -> float:
        """Wiring resistance of one net (0 when the net is unknown)."""
        return self.net_resistance_ohm.get(net_name, 0.0)

    @classmethod
    def from_routes(
        cls,
        routed: "RoutedLayout",
        cap_per_um_ff: float = DEFAULT_CAP_PER_UM_FF,
        res_per_um_ohm: float = DEFAULT_RES_PER_UM_OHM,
        fallback_lengths: Optional[Mapping[str, float]] = None,
    ) -> "ParasiticEstimate":
        """Build the lumped model from routed per-net wirelengths.

        ``fallback_lengths`` (per-net lengths in layout grid units, e.g.
        from :func:`repro.cost.wirelength.per_net_wirelength`) substitutes
        for any net the router failed to connect.
        """
        lengths_grid: Dict[str, float] = {}
        for name, net in routed.nets.items():
            if net.failed and fallback_lengths is not None:
                lengths_grid[name] = fallback_lengths.get(name, 0.0)
            else:
                lengths_grid[name] = net.wirelength
        return _lumped(lengths_grid, cap_per_um_ff, res_per_um_ohm, ROUTED_MODEL)


def estimate_parasitics(
    circuit: Circuit,
    rects: Dict[str, Rect],
    bounds: Optional[FloorplanBounds] = None,
    cap_per_um_ff: float = DEFAULT_CAP_PER_UM_FF,
    res_per_um_ohm: float = DEFAULT_RES_PER_UM_OHM,
    wirelength_model: str = "hpwl",
) -> ParasiticEstimate:
    """Estimate lumped wiring parasitics for a placed layout."""
    lengths_grid = per_net_wirelength(circuit, rects, bounds, model=wirelength_model)
    return _lumped(lengths_grid, cap_per_um_ff, res_per_um_ohm, wirelength_model)


def estimate_parasitics_from_routes(
    circuit: Circuit,
    routed: "RoutedLayout",
    rects: Optional[Dict[str, Rect]] = None,
    bounds: Optional[FloorplanBounds] = None,
    cap_per_um_ff: float = DEFAULT_CAP_PER_UM_FF,
    res_per_um_ohm: float = DEFAULT_RES_PER_UM_OHM,
) -> ParasiticEstimate:
    """Extract lumped wiring parasitics from a routed layout.

    When ``rects`` is given, nets the router could not connect fall back
    to their HPWL estimate over the placement instead of contributing
    zero parasitics.
    """
    # Only pay the placement-wirelength pass when something actually failed.
    fallback = (
        per_net_wirelength(circuit, rects, bounds)
        if rects is not None and routed.failed_nets
        else None
    )
    return ParasiticEstimate.from_routes(
        routed,
        cap_per_um_ff=cap_per_um_ff,
        res_per_um_ohm=res_per_um_ohm,
        fallback_lengths=fallback,
    )


def _lumped(
    lengths_grid: Mapping[str, float],
    cap_per_um_ff: float,
    res_per_um_ohm: float,
    model: str,
) -> ParasiticEstimate:
    """Convert per-net grid-unit lengths into the lumped RC estimate."""
    lengths_um = {name: length * GRID_UM for name, length in lengths_grid.items()}
    caps = {name: length * cap_per_um_ff for name, length in lengths_um.items()}
    res = {name: length * res_per_um_ohm for name, length in lengths_um.items()}
    return ParasiticEstimate(
        net_capacitance_ff=caps,
        net_resistance_ohm=res,
        net_wirelength_um=lengths_um,
        wirelength_model=model,
    )
