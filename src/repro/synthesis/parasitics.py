"""Wiring parasitic estimation from a placed floorplan.

The paper's synthesis loop (Figure 1.b) routes and extracts the layout to
obtain accurate performance estimates.  This module provides the simulated
equivalent: per-net wirelength from the placement, converted to lumped
wiring capacitance and resistance with per-unit constants typical of a
0.35 um-era analog process (the paper's vintage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.circuit.netlist import Circuit
from repro.cost.wirelength import per_net_wirelength
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.modgen.base import GRID_UM

#: Metal-1 wiring capacitance per micrometre of wire, in femtofarads.
DEFAULT_CAP_PER_UM_FF = 0.12
#: Metal-1 wiring resistance per micrometre of wire, in ohms.
DEFAULT_RES_PER_UM_OHM = 0.08


@dataclass(frozen=True)
class ParasiticEstimate:
    """Lumped wiring parasitics of one placed circuit."""

    #: Per-net wiring capacitance in femtofarads.
    net_capacitance_ff: Mapping[str, float]
    #: Per-net wiring resistance in ohms.
    net_resistance_ohm: Mapping[str, float]
    #: Per-net wirelength in micrometres.
    net_wirelength_um: Mapping[str, float]

    @property
    def total_capacitance_ff(self) -> float:
        """Total wiring capacitance over all nets."""
        return sum(self.net_capacitance_ff.values())

    @property
    def total_wirelength_um(self) -> float:
        """Total wirelength over all nets."""
        return sum(self.net_wirelength_um.values())

    def capacitance(self, net_name: str) -> float:
        """Wiring capacitance of one net (0 when the net is unknown)."""
        return self.net_capacitance_ff.get(net_name, 0.0)

    def resistance(self, net_name: str) -> float:
        """Wiring resistance of one net (0 when the net is unknown)."""
        return self.net_resistance_ohm.get(net_name, 0.0)


def estimate_parasitics(
    circuit: Circuit,
    rects: Dict[str, Rect],
    bounds: Optional[FloorplanBounds] = None,
    cap_per_um_ff: float = DEFAULT_CAP_PER_UM_FF,
    res_per_um_ohm: float = DEFAULT_RES_PER_UM_OHM,
    wirelength_model: str = "hpwl",
) -> ParasiticEstimate:
    """Estimate lumped wiring parasitics for a placed layout."""
    lengths_grid = per_net_wirelength(circuit, rects, bounds, model=wirelength_model)
    lengths_um = {name: length * GRID_UM for name, length in lengths_grid.items()}
    caps = {name: length * cap_per_um_ff for name, length in lengths_um.items()}
    res = {name: length * res_per_um_ohm for name, length in lengths_um.items()}
    return ParasiticEstimate(
        net_capacitance_ff=caps,
        net_resistance_ohm=res,
        net_wirelength_um=lengths_um,
    )
