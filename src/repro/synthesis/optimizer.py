"""Simulated-annealing sizing optimizer."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.annealing.annealer import AnnealResult, SimulatedAnnealer
from repro.annealing.schedule import AdaptiveSchedule
from repro.synthesis.sizing import DesignSpace, SizingPoint
from repro.utils.rng import RandomLike, make_rng


@dataclass(frozen=True)
class SizingOptimizerConfig:
    """Tuning knobs of the sizing simulated annealing."""

    max_iterations: int = 150
    moves_per_temperature: int = 8
    initial_temperature_fraction: float = 0.4
    alpha: float = 0.9
    perturb_fraction: float = 0.4
    perturb_step_fraction: float = 0.2


class SizingOptimizer:
    """Anneal over a :class:`DesignSpace` against an arbitrary objective."""

    def __init__(
        self,
        design_space: DesignSpace,
        objective: Callable[[SizingPoint], float],
        config: SizingOptimizerConfig = SizingOptimizerConfig(),
        seed: RandomLike = None,
    ) -> None:
        self._space = design_space
        self._objective = objective
        self._config = config
        self._rng = make_rng(seed)

    def run(self, initial: Optional[SizingPoint] = None) -> AnnealResult:
        """Anneal from ``initial`` (default: the design-space defaults)."""
        config = self._config
        start = self._space.clamp(initial) if initial is not None else self._space.default_point()

        def evaluate(point: SizingPoint) -> float:
            return self._objective(point)

        def propose(point: SizingPoint, rng: random.Random) -> SizingPoint:
            return self._space.perturb(
                point,
                rng,
                fraction=config.perturb_fraction,
                step_fraction=config.perturb_step_fraction,
            )

        initial_cost = evaluate(start)
        schedule = AdaptiveSchedule(
            reference_cost=max(abs(initial_cost), 1e-9),
            fraction=config.initial_temperature_fraction,
            alpha=config.alpha,
        )
        annealer = SimulatedAnnealer(
            evaluate=evaluate,
            propose=propose,
            schedule=schedule,
            moves_per_temperature=config.moves_per_temperature,
            max_iterations=config.max_iterations,
            record_history=True,
            seed=self._rng,
        )
        return annealer.run(start)
