"""The layout-inclusive synthesis loop (Figure 1.b).

Each sizing evaluation runs the full chain

    sizes -> module generators -> block dimensions -> placement backend ->
    wiring parasitics -> performance model -> spec penalty + layout cost

so the choice of placement backend directly changes both the evaluation
quality (parasitics reflect the actual floorplan) and the loop's wall-clock
time (the paper's core motivation for multi-placement structures).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.annealing.acceptance import metropolis_accept
from repro.annealing.schedule import AdaptiveSchedule
from repro.api import Placement, Placer, make_placer
from repro.obs.spans import is_enabled as _obs_enabled, metrics as _obs_metrics, span
from repro.route.batch import rects_key
from repro.route.result import RoutedLayout
from repro.route.router import GlobalRouter, RouterConfig, derive_bounds
from repro.synthesis.binding import CircuitSizingModel
from repro.synthesis.optimizer import SizingOptimizer, SizingOptimizerConfig
from repro.synthesis.parasitics import (
    ParasiticEstimate,
    estimate_parasitics,
    estimate_parasitics_from_routes,
)
from repro.synthesis.performance import PerformanceReport, PerformanceSpec
from repro.synthesis.sizing import SizingPoint
from repro.utils.rng import RandomLike, make_rng, stream_rng
from repro.utils.timer import Timer


#: Builtin engine kinds that answer every query independently of the
#: previous ones — safe to shard across workers without reseeding.
_STATELESS_KINDS = frozenset({"mps", "service", "template"})


def _resolve_backend(
    spec: Union[Mapping[str, object], str], circuit, config: "SynthesisConfig"
) -> Placer:
    """Build the backend for a declarative spec, honouring ``config.workers``.

    In batched mode a spec-described backend is wrapped in the
    ``parallel`` engine (unless it already is one), so the loop's batched
    candidate evaluation actually fans across processes.  Stateless kinds
    are wrapped only when there is more than one worker; every other kind
    carries hidden RNG state across queries, so it is wrapped *at any
    worker count* with ``reseed="per_query"`` — each query gets a
    deterministic seed stream, which is what keeps the trajectory
    bit-identical whether the batch runs on 1 worker or 8.  Hand-built
    :class:`Placer` instances are never wrapped — the caller controls
    their concurrency.
    """
    from repro.api.registry import normalize_spec

    normalized = normalize_spec(spec)
    kind = normalized.get("kind")
    if config.workers > 0 and kind != "parallel":
        if kind not in _STATELESS_KINDS:
            return make_placer(
                {
                    "kind": "parallel",
                    "inner": normalized,
                    "workers": config.workers,
                    "reseed": "per_query",
                },
                circuit,
            )
        if config.workers > 1:
            return make_placer(
                {"kind": "parallel", "inner": normalized, "workers": config.workers},
                circuit,
            )
    return make_placer(normalized, circuit)


@dataclass(frozen=True)
class SynthesisConfig:
    """Weights and budgets of the synthesis loop."""

    optimizer: SizingOptimizerConfig = field(default_factory=SizingOptimizerConfig)
    #: Weight of the spec-violation penalty in the sizing objective.
    spec_weight: float = 100.0
    #: Weight of the placement cost (wirelength + area) in the sizing objective.
    layout_weight: float = 0.01
    #: Weight of the power term (drives the optimizer once specs are met).
    power_weight: float = 1.0
    #: Wirelength estimator feeding the parasitics (``hpwl``/``star``/``mst``)
    #: when routing is off.
    wirelength_model: str = "hpwl"
    #: Route every placement and extract parasitics from the routed
    #: wirelength (the paper's route-and-extract step).  Slower but
    #: honest; HPWL stays the default for speed.
    routed_parasitics: bool = False
    #: Router knobs used when :attr:`routed_parasitics` is on.
    router: RouterConfig = field(default_factory=RouterConfig)
    #: Routed layouts memoized per distinct floorplan.  Sizing proposals
    #: oscillate around accepted states and collapse onto repeated
    #: placements, so revisits would otherwise re-run the whole maze
    #: search for a byte-identical result.
    route_memo_capacity: int = 256
    #: ``workers > 0`` switches :meth:`LayoutInclusiveSynthesis.run` to
    #: *batched* candidate evaluation: each temperature step proposes
    #: ``optimizer.moves_per_temperature`` candidates at once — every
    #: candidate drawing from its own deterministic RNG stream — places
    #: them through the backend's batch path (where a ``parallel`` or
    #: ``service`` backend fans them across processes), and only then runs
    #: the sequential first-accept Metropolis pass.  Because proposals and
    #: acceptance never depend on how the batch was fanned out, the
    #: trajectory is bit-identical at any worker count.  When the backend
    #: is given as a declarative spec, it is additionally wrapped in
    #: ``{"kind": "parallel", "workers": ...}`` so the batch really runs
    #: concurrently.
    workers: int = 0


@dataclass
class SynthesisEvaluation:
    """Everything produced by one sizing-point evaluation."""

    point: SizingPoint
    performance: PerformanceReport
    placement: Placement
    spec_penalty: float
    objective: float
    #: The wiring parasitics the performance model saw (records which
    #: wirelength estimator — or routed extraction — produced them).
    parasitics: Optional[ParasiticEstimate] = None


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run."""

    best: SynthesisEvaluation
    evaluations: int
    elapsed_seconds: float
    placement_seconds: float
    backend: str
    #: Wall-clock seconds spent inside the global router (0 when routed
    #: parasitics are off).
    routing_seconds: float = 0.0
    history: List[float] = field(default_factory=list)
    #: The backend's uniform ``stats()`` counters (tier hits for structure
    #: engines, cache/latency stats for the service, query counts for the
    #: direct placers — including the ``delta_*`` incremental-evaluation
    #: counters of the annealing/genetic engines); ``None`` when the
    #: backend reports nothing.
    backend_stats: Optional[Dict[str, float]] = None

    @property
    def placement_fraction(self) -> float:
        """Fraction of the wall-clock time spent inside the placement backend."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.placement_seconds / self.elapsed_seconds

    @property
    def incremental_eval_stats(self) -> Dict[str, float]:
        """The placement backend's delta-evaluation counters, if any.

        Iterative backends (annealing, genetic) price their inner-loop
        moves through :mod:`repro.eval`; the ``delta_moves`` /
        ``delta_commits`` / ``delta_reverts`` / ``delta_resyncs`` counters
        they report quantify how much of the loop's placement wall-clock
        ran on the incremental path.
        """
        if not self.backend_stats:
            return {}
        return {
            key: value
            for key, value in self.backend_stats.items()
            if key.startswith("delta_")
        }

    @property
    def vector_eval_stats(self) -> Dict[str, float]:
        """The placement backend's vectorized batch-scoring counters, if any.

        Backends that score candidate batches through
        :class:`~repro.eval.BatchEvaluator` (genetic populations, batched
        instantiation) report ``batch_evals`` / ``batch_candidates`` /
        ``vector_fallbacks``, quantifying how much of the loop's placement
        traffic ran on the array path versus the scalar fallback.
        """
        if not self.backend_stats:
            return {}
        return {
            key: value
            for key, value in self.backend_stats.items()
            if key in ("batch_evals", "batch_candidates", "vector_fallbacks")
        }

    @property
    def service_stats(self) -> Optional[Dict[str, float]]:
        """Deprecated alias of :attr:`backend_stats`."""
        return self.backend_stats


class LayoutInclusiveSynthesis:
    """Size a circuit with layout-in-the-loop performance estimation."""

    def __init__(
        self,
        sizing_model: CircuitSizingModel,
        performance_model,
        spec: PerformanceSpec,
        backend: Union[Placer, Mapping[str, object], str],
        config: SynthesisConfig = SynthesisConfig(),
        seed: RandomLike = None,
    ) -> None:
        self._sizing_model = sizing_model
        self._performance_model = performance_model
        self._spec = spec
        # A declarative spec ({"kind": "mps", ...}, "template", JSON) is as
        # good as a hand-built placer.
        self._owns_backend = not isinstance(backend, Placer)
        if not isinstance(backend, Placer):
            backend = _resolve_backend(backend, sizing_model.circuit, config)
        self._backend = backend
        self._config = config
        self._seed = seed
        self._router: Optional[GlobalRouter] = None
        self._route_memo: "OrderedDict[object, RoutedLayout]" = OrderedDict()
        if config.routed_parasitics:
            self._router = GlobalRouter(sizing_model.circuit, config=config.router)
        self._placement_seconds = 0.0
        self._routing_seconds = 0.0
        self._evaluations = 0
        self._best: Optional[SynthesisEvaluation] = None

    @property
    def backend(self) -> Placer:
        """The placement backend in use."""
        return self._backend

    def close(self) -> None:
        """Release backend resources this loop created.

        A spec backend built under ``workers > 0`` owns a process pool;
        closing the loop shuts it down.  Hand-built placers passed in by
        the caller are left alone.  Safe to call repeatedly — the loop
        (and a wrapped backend's pool) restarts on the next use.
        """
        closer = getattr(self._backend, "close", None)
        if self._owns_backend and callable(closer):
            closer()

    def __enter__(self) -> "LayoutInclusiveSynthesis":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Single-point evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, point: SizingPoint) -> SynthesisEvaluation:
        """Run the full sizes -> layout -> performance chain for one point."""
        with span("synthesis.evaluate"):
            dims = self._sizing_model.dims_for(point)
            with Timer() as placement_timer:
                placement = self._backend.place(dims)
            self._placement_seconds += placement_timer.elapsed
            return self._complete_evaluation(point, placement)

    def evaluate_batch(self, points: Sequence[SizingPoint]) -> List[SynthesisEvaluation]:
        """Evaluate many sizing points, placing them through one batch call.

        The placement stage goes through :meth:`Placer.place_batch` —
        deduplicated and, for parallel/service backends, fanned across
        worker processes — and each point's parasitics/performance chain
        completes in input order, so the result list is a pure function of
        ``points`` regardless of worker count.
        """
        with span("synthesis.evaluate_batch", points=len(points)):
            dims_batch = [self._sizing_model.dims_for(point) for point in points]
            with Timer() as placement_timer:
                placements = self._backend.place_batch(dims_batch)
            self._placement_seconds += placement_timer.elapsed
            return [
                self._complete_evaluation(point, placement)
                for point, placement in zip(points, placements)
            ]

    def _complete_evaluation(
        self, point: SizingPoint, placement: Placement
    ) -> SynthesisEvaluation:
        """Parasitics -> performance -> objective for an already-placed point."""
        circuit = self._sizing_model.circuit
        config = self._config
        if self._router is not None:
            routed = self._route_memoized(placement)
            # Any net the router failed to connect falls back to its
            # placement estimate — with the same derived bounds the router
            # used, so external nets keep their boundary I/O terminal and
            # the loop never sees zero parasitics.
            parasitics = estimate_parasitics_from_routes(
                circuit,
                routed,
                rects=dict(placement.rects),
                bounds=derive_bounds(placement.rects),
            )
            placement = placement.with_routing(routed)
        else:
            parasitics = estimate_parasitics(
                circuit, placement.rects, wirelength_model=config.wirelength_model
            )
        performance = self._performance_model.evaluate(point, parasitics)
        spec_penalty = self._spec.penalty(performance)
        objective = (
            config.spec_weight * spec_penalty
            + config.layout_weight * placement.cost.total
            + config.power_weight * performance.power_mw
        )
        evaluation = SynthesisEvaluation(
            point=dict(point),
            performance=performance,
            placement=placement,
            spec_penalty=spec_penalty,
            objective=objective,
            parasitics=parasitics,
        )
        self._evaluations += 1
        if self._best is None or evaluation.objective < self._best.objective:
            self._best = evaluation
        return evaluation

    def _route_memoized(self, placement: Placement) -> RoutedLayout:
        """Route a placement, answering repeated floorplans from the memo."""
        assert self._router is not None
        key = rects_key(placement.rects)
        memo = self._route_memo
        routed = memo.get(key)
        if routed is not None:
            memo.move_to_end(key)
            return routed
        with Timer() as routing_timer:
            routed = self._router.route(placement.rects)
        self._routing_seconds += routing_timer.elapsed
        memo[key] = routed
        if len(memo) > self._config.route_memo_capacity:
            memo.popitem(last=False)
        return routed

    # ------------------------------------------------------------------ #
    # Full synthesis run
    # ------------------------------------------------------------------ #
    def run(self, initial: Optional[SizingPoint] = None) -> SynthesisResult:
        """Anneal the sizing point against the layout-inclusive objective.

        With ``config.workers > 0`` the annealing runs in *batched* mode
        (see :attr:`SynthesisConfig.workers`); otherwise it is the
        historical one-candidate-at-a-time loop.
        """
        self._placement_seconds = 0.0
        self._routing_seconds = 0.0
        self._evaluations = 0
        self._best = None
        with span(
            "synthesis.run",
            backend=self._backend.name,
            workers=self._config.workers,
            batched=self._config.workers > 0,
        ) as obs_span:
            if self._config.workers > 0:
                result = self._run_batched(initial)
            else:
                optimizer = SizingOptimizer(
                    self._sizing_model.design_space,
                    objective=lambda point: self.evaluate(point).objective,
                    config=self._config.optimizer,
                    seed=self._seed,
                )
                with Timer() as timer:
                    anneal_result = optimizer.run(initial)
                assert self._best is not None
                stats = self._backend.stats()
                result = SynthesisResult(
                    best=self._best,
                    evaluations=self._evaluations,
                    elapsed_seconds=timer.elapsed,
                    placement_seconds=self._placement_seconds,
                    backend=self._backend.name,
                    routing_seconds=self._routing_seconds,
                    history=list(anneal_result.cost_history),
                    backend_stats=stats or None,
                )
            obs_span.set(evaluations=result.evaluations)
            if _obs_enabled():
                metrics = _obs_metrics()
                metrics.inc("synthesis.runs")
                metrics.inc("synthesis.evaluations", result.evaluations)
                metrics.observe("synthesis.run_seconds", result.elapsed_seconds)
        return result

    def _run_batched(self, initial: Optional[SizingPoint]) -> SynthesisResult:
        """Batched speculative annealing over the sizing space.

        Mirrors the :class:`SizingOptimizer` schedule, but each temperature
        step proposes the whole ``moves_per_temperature`` quota up front —
        candidate ``i`` of step ``s`` perturbs the current point with the
        RNG stream ``(base, s, i)`` — evaluates them in one
        :meth:`evaluate_batch` call, and then runs the sequential
        Metropolis pass in candidate order, keeping the first acceptance
        (the rest were proposed from a state that no longer exists).  All
        randomness is drawn from pure stream RNGs before any evaluation
        happens, so the trajectory never depends on how the backend fanned
        the batch out.
        """
        space = self._sizing_model.design_space
        optimizer_config = self._config.optimizer
        start = space.clamp(initial) if initial is not None else space.default_point()
        # One draw from the caller's seed pins the whole run's streams.
        base_seed = make_rng(self._seed).getrandbits(64)

        with Timer() as timer:
            current = dict(start)
            current_cost = self.evaluate(start).objective
            history: List[float] = [current_cost]
            schedule = AdaptiveSchedule(
                reference_cost=max(abs(current_cost), 1e-9),
                fraction=optimizer_config.initial_temperature_fraction,
                alpha=optimizer_config.alpha,
            )
            step = 0
            while (
                not schedule.finished(step)
                and self._evaluations <= optimizer_config.max_iterations
            ):
                temperature = schedule.temperature(step)
                quota = min(
                    optimizer_config.moves_per_temperature,
                    optimizer_config.max_iterations - self._evaluations + 1,
                )
                if quota <= 0:
                    break
                candidates = [
                    space.perturb(
                        current,
                        stream_rng(base_seed, step, index),
                        fraction=optimizer_config.perturb_fraction,
                        step_fraction=optimizer_config.perturb_step_fraction,
                    )
                    for index in range(quota)
                ]
                evaluations = self.evaluate_batch(candidates)
                accept_rng = stream_rng(base_seed, step, "accept")
                for candidate, evaluation in zip(candidates, evaluations):
                    if metropolis_accept(
                        current_cost, evaluation.objective, temperature, accept_rng
                    ):
                        current = dict(candidate)
                        current_cost = evaluation.objective
                        history.append(current_cost)
                        break  # later candidates were proposed from the old state
                step += 1
        assert self._best is not None
        stats = self._backend.stats()
        return SynthesisResult(
            best=self._best,
            evaluations=self._evaluations,
            elapsed_seconds=timer.elapsed,
            placement_seconds=self._placement_seconds,
            backend=self._backend.name,
            routing_seconds=self._routing_seconds,
            history=history,
            backend_stats=stats or None,
        )
