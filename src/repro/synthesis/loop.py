"""The layout-inclusive synthesis loop (Figure 1.b).

Each sizing evaluation runs the full chain

    sizes -> module generators -> block dimensions -> placement backend ->
    wiring parasitics -> performance model -> spec penalty + layout cost

so the choice of placement backend directly changes both the evaluation
quality (parasitics reflect the actual floorplan) and the loop's wall-clock
time (the paper's core motivation for multi-placement structures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro.api import Placement, Placer, make_placer
from repro.synthesis.binding import CircuitSizingModel
from repro.synthesis.optimizer import SizingOptimizer, SizingOptimizerConfig
from repro.synthesis.parasitics import estimate_parasitics
from repro.synthesis.performance import PerformanceReport, PerformanceSpec
from repro.synthesis.sizing import SizingPoint
from repro.utils.rng import RandomLike
from repro.utils.timer import Timer


@dataclass(frozen=True)
class SynthesisConfig:
    """Weights and budgets of the synthesis loop."""

    optimizer: SizingOptimizerConfig = field(default_factory=SizingOptimizerConfig)
    #: Weight of the spec-violation penalty in the sizing objective.
    spec_weight: float = 100.0
    #: Weight of the placement cost (wirelength + area) in the sizing objective.
    layout_weight: float = 0.01
    #: Weight of the power term (drives the optimizer once specs are met).
    power_weight: float = 1.0


@dataclass
class SynthesisEvaluation:
    """Everything produced by one sizing-point evaluation."""

    point: SizingPoint
    performance: PerformanceReport
    placement: Placement
    spec_penalty: float
    objective: float


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run."""

    best: SynthesisEvaluation
    evaluations: int
    elapsed_seconds: float
    placement_seconds: float
    backend: str
    history: List[float] = field(default_factory=list)
    #: The backend's uniform ``stats()`` counters (tier hits for structure
    #: engines, cache/latency stats for the service, query counts for the
    #: direct placers); ``None`` when the backend reports nothing.
    backend_stats: Optional[Dict[str, float]] = None

    @property
    def placement_fraction(self) -> float:
        """Fraction of the wall-clock time spent inside the placement backend."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.placement_seconds / self.elapsed_seconds

    @property
    def service_stats(self) -> Optional[Dict[str, float]]:
        """Deprecated alias of :attr:`backend_stats`."""
        return self.backend_stats


class LayoutInclusiveSynthesis:
    """Size a circuit with layout-in-the-loop performance estimation."""

    def __init__(
        self,
        sizing_model: CircuitSizingModel,
        performance_model,
        spec: PerformanceSpec,
        backend: Union[Placer, Mapping[str, object], str],
        config: SynthesisConfig = SynthesisConfig(),
        seed: RandomLike = None,
    ) -> None:
        self._sizing_model = sizing_model
        self._performance_model = performance_model
        self._spec = spec
        # A declarative spec ({"kind": "mps", ...}, "template", JSON) is as
        # good as a hand-built placer.
        if not isinstance(backend, Placer):
            backend = make_placer(backend, sizing_model.circuit)
        self._backend = backend
        self._config = config
        self._seed = seed
        self._placement_seconds = 0.0
        self._evaluations = 0
        self._best: Optional[SynthesisEvaluation] = None

    @property
    def backend(self) -> Placer:
        """The placement backend in use."""
        return self._backend

    # ------------------------------------------------------------------ #
    # Single-point evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, point: SizingPoint) -> SynthesisEvaluation:
        """Run the full sizes -> layout -> performance chain for one point."""
        circuit = self._sizing_model.circuit
        dims = self._sizing_model.dims_for(point)
        with Timer() as placement_timer:
            placement = self._backend.place(dims)
        self._placement_seconds += placement_timer.elapsed
        parasitics = estimate_parasitics(circuit, placement.rects)
        performance = self._performance_model.evaluate(point, parasitics)
        spec_penalty = self._spec.penalty(performance)
        config = self._config
        objective = (
            config.spec_weight * spec_penalty
            + config.layout_weight * placement.cost.total
            + config.power_weight * performance.power_mw
        )
        evaluation = SynthesisEvaluation(
            point=dict(point),
            performance=performance,
            placement=placement,
            spec_penalty=spec_penalty,
            objective=objective,
        )
        self._evaluations += 1
        if self._best is None or evaluation.objective < self._best.objective:
            self._best = evaluation
        return evaluation

    # ------------------------------------------------------------------ #
    # Full synthesis run
    # ------------------------------------------------------------------ #
    def run(self, initial: Optional[SizingPoint] = None) -> SynthesisResult:
        """Anneal the sizing point against the layout-inclusive objective."""
        self._placement_seconds = 0.0
        self._evaluations = 0
        self._best = None
        optimizer = SizingOptimizer(
            self._sizing_model.design_space,
            objective=lambda point: self.evaluate(point).objective,
            config=self._config.optimizer,
            seed=self._seed,
        )
        with Timer() as timer:
            anneal_result = optimizer.run(initial)
        assert self._best is not None
        stats = self._backend.stats()
        return SynthesisResult(
            best=self._best,
            evaluations=self._evaluations,
            elapsed_seconds=timer.elapsed,
            placement_seconds=self._placement_seconds,
            backend=self._backend.name,
            history=list(anneal_result.cost_history),
            backend_stats=stats or None,
        )
