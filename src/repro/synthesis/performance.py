"""Analytical performance models with layout parasitics.

These replace the circuit simulator of the paper's synthesis loop.  The
two-stage opamp model uses the standard square-law hand formulas; the
layout enters through the wiring capacitance added to the compensation and
output nodes, so different placements genuinely change the evaluated
performance — the coupling the layout-inclusive loop exists to capture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.synthesis.parasitics import ParasiticEstimate
from repro.synthesis.sizing import SizingPoint

# Representative 0.35 um process constants.
KP_N = 170e-6  # NMOS transconductance parameter (A/V^2)
KP_P = 58e-6   # PMOS transconductance parameter (A/V^2)
EARLY_VOLTAGE_PER_UM = 8.0  # V of Early voltage per um of channel length
VDD = 3.3


@dataclass(frozen=True)
class PerformanceReport:
    """Evaluated performance of one sizing point under one placement."""

    gain_db: float
    unity_gain_bandwidth_hz: float
    phase_margin_deg: float
    slew_rate_v_per_us: float
    power_mw: float
    wiring_capacitance_ff: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view of the metrics."""
        return {
            "gain_db": self.gain_db,
            "ugbw_hz": self.unity_gain_bandwidth_hz,
            "phase_margin_deg": self.phase_margin_deg,
            "slew_rate_v_per_us": self.slew_rate_v_per_us,
            "power_mw": self.power_mw,
            "wiring_capacitance_ff": self.wiring_capacitance_ff,
        }


@dataclass(frozen=True)
class PerformanceSpec:
    """Target specification; violations are turned into a scalar penalty."""

    min_gain_db: float = 60.0
    min_ugbw_hz: float = 5e6
    min_phase_margin_deg: float = 55.0
    min_slew_rate_v_per_us: float = 5.0
    max_power_mw: float = 5.0

    def penalty(self, report: PerformanceReport) -> float:
        """Sum of normalised constraint violations (0 when every spec is met)."""
        terms = [
            max(0.0, (self.min_gain_db - report.gain_db) / self.min_gain_db),
            max(0.0, (self.min_ugbw_hz - report.unity_gain_bandwidth_hz) / self.min_ugbw_hz),
            max(
                0.0,
                (self.min_phase_margin_deg - report.phase_margin_deg)
                / self.min_phase_margin_deg,
            ),
            max(
                0.0,
                (self.min_slew_rate_v_per_us - report.slew_rate_v_per_us)
                / self.min_slew_rate_v_per_us,
            ),
            max(0.0, (report.power_mw - self.max_power_mw) / self.max_power_mw),
        ]
        return sum(terms)

    def is_met(self, report: PerformanceReport) -> bool:
        """True when every specification target is satisfied."""
        return self.penalty(report) == 0.0


class TwoStageOpampModel:
    """Hand-analysis model of a Miller-compensated two-stage opamp.

    Expected sizing variables (all widths/lengths in micrometres, currents
    in microamperes, capacitances in femtofarads):

    ``w_dp, l_dp`` — input pair device size, ``w_load, l_load`` — mirror
    load, ``w_cs, l_cs`` — second-stage device, ``i_bias`` — tail current,
    ``c_c`` — compensation capacitor, ``c_load`` — external load (constant
    by default).

    Net names used for parasitic coupling: ``n2`` (first-stage output /
    compensation node) and ``out`` (second-stage output); they match the
    :mod:`repro.benchcircuits.opamps` netlists.
    """

    def __init__(
        self,
        compensation_net: str = "n2",
        output_net: str = "out",
        load_capacitance_ff: float = 2000.0,
    ) -> None:
        self._compensation_net = compensation_net
        self._output_net = output_net
        self._load_ff = load_capacitance_ff

    def evaluate(
        self,
        point: SizingPoint,
        parasitics: Optional[ParasiticEstimate] = None,
    ) -> PerformanceReport:
        """Evaluate the opamp metrics for one sizing point and optional parasitics."""
        w_dp = float(point.get("w_dp", 40.0))
        l_dp = float(point.get("l_dp", 0.5))
        w_cs = float(point.get("w_cs", 60.0))
        l_cs = float(point.get("l_cs", 0.5))
        l_load = float(point.get("l_load", 1.0))
        i_bias_ua = float(point.get("i_bias", 50.0))
        c_c_ff = float(point.get("c_c", 1000.0))
        c_load_ff = float(point.get("c_load", self._load_ff))

        wiring_comp_ff = 0.0
        wiring_out_ff = 0.0
        total_wiring_ff = 0.0
        if parasitics is not None:
            wiring_comp_ff = parasitics.capacitance(self._compensation_net)
            wiring_out_ff = parasitics.capacitance(self._output_net)
            total_wiring_ff = parasitics.total_capacitance_ff

        i_bias = i_bias_ua * 1e-6
        i_stage2 = 2.0 * i_bias
        c_c = (c_c_ff + wiring_comp_ff) * 1e-15
        c_out = (c_load_ff + wiring_out_ff) * 1e-15

        gm1 = math.sqrt(2.0 * KP_N * (w_dp / l_dp) * (i_bias / 2.0))
        gm6 = math.sqrt(2.0 * KP_P * (w_cs / l_cs) * i_stage2)
        ro2 = EARLY_VOLTAGE_PER_UM * l_dp / (i_bias / 2.0)
        ro4 = EARLY_VOLTAGE_PER_UM * l_load / (i_bias / 2.0)
        ro6 = EARLY_VOLTAGE_PER_UM * l_cs / i_stage2
        ro7 = EARLY_VOLTAGE_PER_UM * l_load / i_stage2

        gain = gm1 * _parallel(ro2, ro4) * gm6 * _parallel(ro6, ro7)
        gain_db = 20.0 * math.log10(max(gain, 1e-9))
        ugbw = gm1 / (2.0 * math.pi * max(c_c, 1e-18))
        second_pole = gm6 / (2.0 * math.pi * max(c_out, 1e-18))
        phase_margin = 90.0 - math.degrees(math.atan(ugbw / max(second_pole, 1.0)))
        slew = i_bias / max(c_c, 1e-18) / 1e6  # V/us
        power_mw = (i_bias + i_stage2) * VDD * 1e3

        return PerformanceReport(
            gain_db=gain_db,
            unity_gain_bandwidth_hz=ugbw,
            phase_margin_deg=phase_margin,
            slew_rate_v_per_us=slew,
            power_mw=power_mw,
            wiring_capacitance_ff=total_wiring_ff,
        )


def _parallel(a: float, b: float) -> float:
    """Parallel combination of two resistances."""
    if a <= 0 or b <= 0:
        return 0.0
    return a * b / (a + b)
