"""Placement backends used inside the synthesis loop.

Every backend answers the same question — "place these block dimensions" —
but with the different speed/quality trade-offs the paper compares:

* :class:`MPSBackend` — query a pre-generated multi-placement structure
  (milliseconds, placement adapted to the sizes).
* :class:`TemplateBackend` — instantiate a fixed template (milliseconds,
  single floorplan).
* :class:`AnnealingBackend` — re-anneal from scratch (seconds, high
  quality; the approach the paper says is too slow for the loop).
* :class:`ServiceBackend` — route queries through a
  :class:`~repro.service.engine.PlacementService` (registry-backed,
  memoized, with per-tier statistics).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.baselines.annealing_placer import AnnealingPlacer, AnnealingPlacerConfig
from repro.baselines.template import TemplatePlacer
from repro.circuit.netlist import Circuit
from repro.core.generator import GeneratorConfig
from repro.core.instantiator import PlacementInstantiator
from repro.core.structure import MultiPlacementStructure
from repro.cost.cost_function import CostBreakdown, PlacementCostFunction
from repro.geometry.rect import Rect
from repro.service.engine import PlacementService
from repro.utils.timer import Timer

Dims = Tuple[int, int]


@dataclass(frozen=True)
class BackendPlacement:
    """The floorplan a backend produced for one dimension vector."""

    rects: Dict[str, Rect]
    cost: CostBreakdown
    elapsed_seconds: float
    source: str


class PlacementBackend(abc.ABC):
    """Common interface of the synthesis-loop placement backends."""

    name: str = "backend"

    @abc.abstractmethod
    def place(self, dims: Sequence[Dims]) -> BackendPlacement:
        """Produce a floorplan for the given block dimensions."""


class MPSBackend(PlacementBackend):
    """Placement by querying a pre-generated multi-placement structure."""

    name = "mps"

    def __init__(
        self,
        structure: MultiPlacementStructure,
        cost_function: Optional[PlacementCostFunction] = None,
    ) -> None:
        self._instantiator = PlacementInstantiator(structure, cost_function)

    @property
    def structure(self) -> MultiPlacementStructure:
        """The structure backing this backend."""
        return self._instantiator.structure

    def place(self, dims: Sequence[Dims]) -> BackendPlacement:
        with Timer() as timer:
            placement = self._instantiator.instantiate(dims)
        return BackendPlacement(
            rects=dict(placement.rects),
            cost=placement.cost,
            elapsed_seconds=timer.elapsed,
            source=placement.source,
        )


class TemplateBackend(PlacementBackend):
    """Placement by instantiating a fixed slicing-tree template."""

    name = "template"

    def __init__(self, placer: TemplatePlacer) -> None:
        self._placer = placer

    def place(self, dims: Sequence[Dims]) -> BackendPlacement:
        result = self._placer.place(dims)
        return BackendPlacement(
            rects=result.rects,
            cost=result.cost,
            elapsed_seconds=result.elapsed_seconds,
            source="template",
        )


class ServiceBackend(PlacementBackend):
    """Placement served by a :class:`~repro.service.engine.PlacementService`.

    The backend pins one circuit (and optionally one generation config) so
    the synthesis loop keeps hitting the same warm structure; the service's
    registry, caches and statistics all apply, and several loops can share
    one service instance.
    """

    name = "service"

    def __init__(
        self,
        service: PlacementService,
        circuit: Circuit,
        config: Optional[GeneratorConfig] = None,
    ) -> None:
        self._service = service
        self._circuit = circuit
        self._config = config

    @property
    def service(self) -> PlacementService:
        """The placement service answering this backend's queries."""
        return self._service

    def stats(self) -> Dict[str, float]:
        """A frozen snapshot of the service's counters, as plain data."""
        return self._service.stats.snapshot().as_dict()

    def place(self, dims: Sequence[Dims]) -> BackendPlacement:
        with Timer() as timer:
            placement = self._service.instantiate(self._circuit, dims, config=self._config)
        return BackendPlacement(
            rects=dict(placement.rects),
            cost=placement.cost,
            elapsed_seconds=timer.elapsed,
            source=placement.source,
        )


class AnnealingBackend(PlacementBackend):
    """Placement by per-instance simulated annealing (slow, high quality)."""

    name = "annealing"

    def __init__(self, placer: AnnealingPlacer) -> None:
        self._placer = placer

    @classmethod
    def with_budget(
        cls, placer: AnnealingPlacer, max_iterations: int
    ) -> "AnnealingBackend":
        """Convenience constructor overriding the placer's iteration budget."""
        placer = AnnealingPlacer(
            placer.circuit,
            placer.bounds,
            config=AnnealingPlacerConfig(max_iterations=max_iterations),
        )
        return cls(placer)

    def place(self, dims: Sequence[Dims]) -> BackendPlacement:
        result = self._placer.place(dims)
        return BackendPlacement(
            rects=result.rects,
            cost=result.cost,
            elapsed_seconds=result.elapsed_seconds,
            source="annealing",
        )
