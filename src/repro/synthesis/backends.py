"""Synthesis-loop placement backends — now thin entries of the unified API.

Every backend answers the same question — "place these block dimensions" —
through the one :class:`repro.api.Placer` protocol, so the synthesis loop
takes either a placer instance or a declarative spec dict::

    LayoutInclusiveSynthesis(..., backend={"kind": "mps", "structure": structure})
    LayoutInclusiveSynthesis(..., backend={"kind": "template"})
    LayoutInclusiveSynthesis(..., backend={"kind": "annealing", "iterations": 2000})
    LayoutInclusiveSynthesis(..., backend={"kind": "service", "registry": "structures/"})

The wrapper classes that used to live here (``MPSBackend``,
``TemplateBackend``, ``AnnealingBackend``, ``ServiceBackend``) are kept as
deprecated constructors returning the unified engines; ``PlacementBackend``
and ``BackendPlacement`` alias :class:`repro.api.Placer` and
:class:`repro.api.Placement`.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.api.placer import Placer


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def MPSBackend(structure, cost_function=None) -> Placer:
    """Deprecated constructor: use ``PlacementInstantiator`` or a ``{"kind": "mps"}`` spec."""
    _deprecated("synthesis.backends.MPSBackend", "repro.core.PlacementInstantiator")
    from repro.core.instantiator import PlacementInstantiator

    return PlacementInstantiator(structure, cost_function)


def TemplateBackend(placer: Placer) -> Placer:
    """Deprecated pass-through: ``TemplatePlacer`` already implements the unified API."""
    _deprecated("synthesis.backends.TemplateBackend", "the TemplatePlacer itself")
    return placer


def AnnealingBackend(placer: Placer) -> Placer:
    """Deprecated pass-through: ``AnnealingPlacer`` already implements the unified API."""
    _deprecated("synthesis.backends.AnnealingBackend", "the AnnealingPlacer itself")
    return placer


def ServiceBackend(service, circuit, config=None) -> Placer:
    """Deprecated constructor: use ``ServicePlacer`` or a ``{"kind": "service"}`` spec."""
    _deprecated("synthesis.backends.ServiceBackend", "repro.service.ServicePlacer")
    from repro.service.placer import ServicePlacer

    return ServicePlacer(service, circuit, config=config)


def __getattr__(name: str):
    if name == "BackendPlacement":
        warnings.warn(
            "BackendPlacement is deprecated; every engine now returns the "
            "unified repro.api.Placement",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.placement import Placement

        return Placement
    if name == "PlacementBackend":
        warnings.warn(
            "PlacementBackend is deprecated; implement the unified "
            "repro.api.Placer protocol instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return Placer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
