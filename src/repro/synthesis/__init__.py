"""Layout-inclusive synthesis substrate (Figure 1.b).

The sizing optimizer proposes device sizes; module generators turn them
into block dimensions; a placement backend (multi-placement structure,
template, or per-instance annealing) produces a floorplan; wiring
parasitics extracted from the floorplan feed analytical performance models;
and the optimizer iterates on the resulting cost.
"""

from repro.synthesis.backends import (
    AnnealingBackend,
    MPSBackend,
    PlacementBackend,
    ServiceBackend,
    TemplateBackend,
)
from repro.synthesis.binding import BlockBinding, CircuitSizingModel
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig, SynthesisResult
from repro.synthesis.optimizer import SizingOptimizer, SizingOptimizerConfig
from repro.synthesis.parasitics import ParasiticEstimate, estimate_parasitics
from repro.synthesis.performance import (
    PerformanceReport,
    PerformanceSpec,
    TwoStageOpampModel,
)
from repro.synthesis.sizing import DesignSpace, SizingVariable

__all__ = [
    "AnnealingBackend",
    "MPSBackend",
    "PlacementBackend",
    "ServiceBackend",
    "TemplateBackend",
    "BlockBinding",
    "CircuitSizingModel",
    "LayoutInclusiveSynthesis",
    "SynthesisConfig",
    "SynthesisResult",
    "SizingOptimizer",
    "SizingOptimizerConfig",
    "ParasiticEstimate",
    "estimate_parasitics",
    "PerformanceReport",
    "PerformanceSpec",
    "TwoStageOpampModel",
    "DesignSpace",
    "SizingVariable",
]
