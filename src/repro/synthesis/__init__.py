"""Layout-inclusive synthesis substrate (Figure 1.b).

The sizing optimizer proposes device sizes; module generators turn them
into block dimensions; a placement engine (any :class:`repro.api.Placer`,
or a declarative ``make_placer`` spec dict) produces a floorplan; wiring
parasitics extracted from the floorplan feed analytical performance models;
and the optimizer iterates on the resulting cost.
"""

import warnings

from repro.synthesis.binding import BlockBinding, CircuitSizingModel
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig, SynthesisResult
from repro.synthesis.optimizer import SizingOptimizer, SizingOptimizerConfig
from repro.synthesis.parasitics import ParasiticEstimate, estimate_parasitics
from repro.synthesis.performance import (
    PerformanceReport,
    PerformanceSpec,
    TwoStageOpampModel,
)
from repro.synthesis.sizing import DesignSpace, SizingVariable

__all__ = [
    "BlockBinding",
    "CircuitSizingModel",
    "LayoutInclusiveSynthesis",
    "SynthesisConfig",
    "SynthesisResult",
    "SizingOptimizer",
    "SizingOptimizerConfig",
    "ParasiticEstimate",
    "estimate_parasitics",
    "PerformanceReport",
    "PerformanceSpec",
    "TwoStageOpampModel",
    "DesignSpace",
    "SizingVariable",
]

#: Deprecated names still resolvable from this package (lazily, so plain
#: ``import repro.synthesis`` stays warning-free).
_DEPRECATED_BACKEND_NAMES = (
    "AnnealingBackend",
    "BackendPlacement",
    "MPSBackend",
    "PlacementBackend",
    "ServiceBackend",
    "TemplateBackend",
)


def __getattr__(name: str):
    if name in _DEPRECATED_BACKEND_NAMES:
        from repro.synthesis import backends

        return getattr(backends, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
