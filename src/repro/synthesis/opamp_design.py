"""Ready-made sizing setup for the two-stage opamp benchmark.

Bundles the circuit, the sizing design space, the block bindings and the
performance model so examples and benchmarks can run the layout-inclusive
synthesis loop without re-declaring the plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchcircuits.opamps import two_stage_opamp
from repro.circuit.netlist import Circuit
from repro.modgen.capacitor import MimCapacitorGenerator
from repro.modgen.current_mirror import CurrentMirrorGenerator
from repro.modgen.diffpair import DifferentialPairGenerator
from repro.modgen.mosfet import FoldedMosfetGenerator
from repro.synthesis.binding import BlockBinding, CircuitSizingModel
from repro.synthesis.performance import PerformanceSpec, TwoStageOpampModel
from repro.synthesis.sizing import DesignSpace, SizingVariable


@dataclass
class OpampDesign:
    """Everything needed to synthesize the two-stage opamp."""

    circuit: Circuit
    sizing_model: CircuitSizingModel
    performance_model: TwoStageOpampModel
    spec: PerformanceSpec


def two_stage_opamp_design(spec: PerformanceSpec = PerformanceSpec()) -> OpampDesign:
    """Build the standard two-stage opamp sizing problem.

    The parameter ranges are chosen so the module generators' footprints
    stay inside the benchmark blocks' designer bounds.
    """
    circuit = two_stage_opamp()
    design_space = DesignSpace(
        [
            SizingVariable("w_dp", 10.0, 80.0, 40.0, "um"),
            SizingVariable("l_dp", 0.35, 1.0, 0.5, "um"),
            SizingVariable("w_load", 5.0, 40.0, 20.0, "um"),
            SizingVariable("l_load", 0.5, 2.0, 1.0, "um"),
            SizingVariable("w_cs", 10.0, 100.0, 60.0, "um"),
            SizingVariable("l_cs", 0.35, 1.0, 0.5, "um"),
            SizingVariable("w_tail", 5.0, 40.0, 20.0, "um"),
            SizingVariable("i_bias", 10.0, 200.0, 50.0, "uA", log_scale=True),
            SizingVariable("c_c", 200.0, 2500.0, 1000.0, "fF", log_scale=True),
        ]
    )
    bindings = [
        BlockBinding(
            "dp",
            DifferentialPairGenerator(),
            {"width": "w_dp", "length": "l_dp", "fingers": 4.0},
        ),
        BlockBinding(
            "load",
            CurrentMirrorGenerator(),
            {"width": "w_load", "length": "l_load", "ratio": 1.0, "fingers": 2.0},
        ),
        BlockBinding(
            "tail",
            FoldedMosfetGenerator(),
            {"width": "w_tail", "length": 1.0, "fingers": 4.0},
        ),
        BlockBinding(
            "cs",
            FoldedMosfetGenerator(),
            {"width": "w_cs", "length": "l_cs", "fingers": 6.0},
        ),
        BlockBinding(
            "cc",
            MimCapacitorGenerator(),
            {"capacitance": "c_c", "aspect": 1.0},
        ),
    ]
    sizing_model = CircuitSizingModel(circuit, design_space, bindings)
    return OpampDesign(
        circuit=circuit,
        sizing_model=sizing_model,
        performance_model=TwoStageOpampModel(),
        spec=spec,
    )
