"""Cooling schedules for simulated annealing."""

from __future__ import annotations

import abc
from dataclasses import dataclass


class CoolingSchedule(abc.ABC):
    """A temperature trajectory ``T(k)`` over cooling steps ``k``."""

    @abc.abstractmethod
    def temperature(self, step: int) -> float:
        """Temperature at cooling step ``step`` (0-based)."""

    @abc.abstractmethod
    def finished(self, step: int) -> bool:
        """True when the schedule has cooled past its stopping temperature."""


@dataclass(frozen=True)
class GeometricSchedule(CoolingSchedule):
    """The classic geometric schedule ``T_k = T_0 * alpha^k``."""

    initial_temperature: float = 100.0
    alpha: float = 0.9
    minimum_temperature: float = 0.1

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError("initial temperature must be positive")
        if not (0.0 < self.alpha < 1.0):
            raise ValueError("alpha must lie in (0, 1)")
        if self.minimum_temperature <= 0:
            raise ValueError("minimum temperature must be positive")

    def temperature(self, step: int) -> float:
        return self.initial_temperature * (self.alpha ** step)

    def finished(self, step: int) -> bool:
        return self.temperature(step) < self.minimum_temperature


@dataclass(frozen=True)
class LinearSchedule(CoolingSchedule):
    """A linear ramp from the initial temperature down to zero over ``steps`` steps."""

    initial_temperature: float = 100.0
    steps: int = 50

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError("initial temperature must be positive")
        if self.steps <= 0:
            raise ValueError("steps must be positive")

    def temperature(self, step: int) -> float:
        remaining = max(0, self.steps - step)
        return self.initial_temperature * remaining / self.steps

    def finished(self, step: int) -> bool:
        return step >= self.steps


@dataclass(frozen=True)
class AdaptiveSchedule(CoolingSchedule):
    """Geometric cooling whose starting temperature is scaled to the cost magnitude.

    The explorer and BDIO operate on costs whose scale depends on the
    circuit; seeding the temperature from an initial cost sample keeps the
    early acceptance rate comparable across benchmarks.
    """

    reference_cost: float = 100.0
    fraction: float = 0.3
    alpha: float = 0.9
    minimum_temperature: float = 1e-3

    def __post_init__(self) -> None:
        if self.reference_cost <= 0:
            raise ValueError("reference cost must be positive")
        if not (0.0 < self.fraction <= 1.0):
            raise ValueError("fraction must lie in (0, 1]")
        if not (0.0 < self.alpha < 1.0):
            raise ValueError("alpha must lie in (0, 1)")

    @property
    def initial_temperature(self) -> float:
        """Starting temperature derived from the reference cost."""
        return self.reference_cost * self.fraction

    def temperature(self, step: int) -> float:
        return self.initial_temperature * (self.alpha ** step)

    def finished(self, step: int) -> bool:
        return self.temperature(step) < self.minimum_temperature
