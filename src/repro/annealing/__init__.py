"""Generic simulated annealing engine shared by the explorer, BDIO and baselines."""

from repro.annealing.acceptance import metropolis_accept
from repro.annealing.annealer import AnnealResult, DeltaEngine, SimulatedAnnealer
from repro.annealing.schedule import (
    AdaptiveSchedule,
    CoolingSchedule,
    GeometricSchedule,
    LinearSchedule,
)

__all__ = [
    "metropolis_accept",
    "AnnealResult",
    "DeltaEngine",
    "SimulatedAnnealer",
    "AdaptiveSchedule",
    "CoolingSchedule",
    "GeometricSchedule",
    "LinearSchedule",
]
