"""Metropolis acceptance criterion."""

from __future__ import annotations

import math
import random


def metropolis_accept(
    current_cost: float,
    candidate_cost: float,
    temperature: float,
    rng: random.Random,
) -> bool:
    """Standard Metropolis rule: always accept improvements, otherwise accept
    with probability ``exp(-delta / T)``.

    A non-positive temperature degenerates to greedy acceptance.
    """
    delta = candidate_cost - current_cost
    if delta <= 0:
        return True
    if temperature <= 0:
        return False
    probability = math.exp(-delta / temperature)
    return rng.random() < probability
