"""A small, generic simulated annealing driver.

The BDIO (inner loop), the per-instance baseline placer and the sizing
optimizer all share this engine; the placement explorer keeps its own loop
because it interleaves structure bookkeeping (expansion, overlap
resolution, storage) between SA moves, but reuses the schedules and the
acceptance rule.

Two evaluation paths share one accept/reject loop:

* :meth:`SimulatedAnnealer.run` — the pure path: ``propose`` returns a
  fresh immutable state and ``evaluate`` prices it from scratch.
* :meth:`SimulatedAnnealer.run_incremental` — the delta path: a
  :class:`DeltaEngine` mutates one shared state in place and prices each
  move incrementally (propose/commit/revert), which is how the placement
  optimizers reach O(affected-nets) cost evaluation.

Both paths draw from the RNG identically (one draw per proposal plus the
Metropolis draw for uphill moves), so a delta engine whose proposals and
costs match the pure callables reproduces the exact same trajectory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Protocol, TypeVar

from repro.annealing.acceptance import metropolis_accept
from repro.annealing.schedule import CoolingSchedule, GeometricSchedule
from repro.obs.spans import is_enabled as _obs_enabled, metrics as _obs_metrics, span
from repro.utils.rng import RandomLike, make_rng
from repro.utils.stats import RunningStats

State = TypeVar("State")


def _engine_eval_stats(engine: object) -> dict:
    """Numeric ``stats()`` counters of a delta engine, if it exposes any.

    The :class:`DeltaEngine` protocol does not require counters, but the
    incremental evaluators behind the placement optimizers all report
    moves/commits/reverts; the annealer mirrors their per-run deltas into
    the observability metrics (``eval.*``) when tracing is on.
    """
    stats = getattr(engine, "stats", None)
    if not callable(stats):
        return {}
    try:
        raw = stats()
    except Exception:  # pragma: no cover - defensive: stats must never abort a run
        return {}
    if not isinstance(raw, dict):
        return {}
    return {
        key: value
        for key, value in raw.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


class DeltaEngine(Protocol[State]):
    """The mutable-state counterpart of the ``evaluate``/``propose`` pair.

    One move is in flight at a time: :meth:`propose` applies it and
    returns the candidate's total cost, then exactly one of
    :meth:`commit` (accept) or :meth:`revert` (reject) resolves it.
    """

    def current_cost(self) -> float:
        """Total cost of the current (committed) state."""

    def snapshot(self) -> State:
        """An immutable snapshot of the current state (for best tracking)."""

    def propose(self, rng: random.Random) -> float:
        """Apply a random move in place and return the candidate's cost."""

    def commit(self) -> None:
        """Accept the pending move."""

    def revert(self) -> None:
        """Reject the pending move, restoring the previous state exactly."""


@dataclass
class AnnealResult(Generic[State]):
    """Outcome of an annealing run."""

    best_state: State
    best_cost: float
    final_state: State
    final_cost: float
    average_cost: float
    iterations: int
    accepted_moves: int
    cost_history: List[float] = field(default_factory=list)

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of proposed moves that were accepted."""
        if self.iterations == 0:
            return 0.0
        return self.accepted_moves / self.iterations


class SimulatedAnnealer(Generic[State]):
    """Drive simulated annealing over user-supplied propose/evaluate callables.

    Parameters
    ----------
    evaluate:
        Maps a state to its scalar cost (lower is better).  Optional when
        only :meth:`run_incremental` is used.
    propose:
        Maps ``(state, rng)`` to a neighbouring candidate state.  States are
        treated as immutable values; ``propose`` must return a new state.
        Optional when only :meth:`run_incremental` is used.
    schedule:
        Cooling schedule; defaults to a geometric schedule.
    moves_per_temperature:
        Number of proposals evaluated at each temperature step.
    max_iterations:
        Hard cap on the total number of proposals (safety net for schedules
        that cool slowly).
    record_history:
        When true, accepted costs are appended to the result's history.
    history_stride:
        Record every ``history_stride``-th accepted cost (default 1, i.e.
        all of them) so long runs stop accumulating unbounded
        per-iteration lists.
    """

    def __init__(
        self,
        evaluate: Optional[Callable[[State], float]] = None,
        propose: Optional[Callable[[State, "random.Random"], State]] = None,
        schedule: Optional[CoolingSchedule] = None,
        moves_per_temperature: int = 20,
        max_iterations: int = 10000,
        record_history: bool = False,
        history_stride: int = 1,
        seed: RandomLike = None,
    ) -> None:
        if moves_per_temperature <= 0:
            raise ValueError("moves_per_temperature must be positive")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if history_stride <= 0:
            raise ValueError("history_stride must be positive")
        self._evaluate = evaluate
        self._propose = propose
        self._schedule = schedule or GeometricSchedule()
        self._moves = moves_per_temperature
        self._max_iterations = max_iterations
        self._record_history = record_history
        self._history_stride = history_stride
        self._rng = make_rng(seed)

    @staticmethod
    def _flush_anneal_metrics(iterations: int, accepted: int, steps: int) -> None:
        """Mirror one run's loop counters into the global obs metrics."""
        if not _obs_enabled():
            return
        metrics = _obs_metrics()
        metrics.inc("anneal.runs")
        metrics.inc("anneal.iterations", iterations)
        metrics.inc("anneal.accepted", accepted)
        metrics.inc("anneal.temperature_steps", steps)

    def run(self, initial_state: State) -> AnnealResult[State]:
        """Anneal starting from ``initial_state`` and return the best state found."""
        if self._evaluate is None or self._propose is None:
            raise ValueError(
                "run() needs evaluate and propose callables; "
                "use run_incremental(engine) for the delta path"
            )
        current = initial_state
        current_cost = self._evaluate(current)
        best = current
        best_cost = current_cost
        stats = RunningStats()
        stats.add(current_cost)
        history: List[float] = [current_cost] if self._record_history else []
        iterations = 0
        accepted = 0
        step = 0
        with span("anneal.run") as obs_span:
            while not self._schedule.finished(step) and iterations < self._max_iterations:
                temperature = self._schedule.temperature(step)
                for _ in range(self._moves):
                    if iterations >= self._max_iterations:
                        break
                    candidate = self._propose(current, self._rng)
                    candidate_cost = self._evaluate(candidate)
                    iterations += 1
                    stats.add(candidate_cost)
                    if metropolis_accept(current_cost, candidate_cost, temperature, self._rng):
                        current = candidate
                        current_cost = candidate_cost
                        accepted += 1
                        if self._record_history and accepted % self._history_stride == 0:
                            history.append(current_cost)
                        if current_cost < best_cost:
                            best = current
                            best_cost = current_cost
                step += 1
            obs_span.set(iterations=iterations, accepted=accepted, steps=step)
            self._flush_anneal_metrics(iterations, accepted, step)
        return AnnealResult(
            best_state=best,
            best_cost=best_cost,
            final_state=current,
            final_cost=current_cost,
            average_cost=stats.mean,
            iterations=iterations,
            accepted_moves=accepted,
            cost_history=history,
        )

    def run_incremental(self, engine: DeltaEngine[State]) -> AnnealResult[State]:
        """Anneal a :class:`DeltaEngine`, pricing every move by delta.

        Mirrors :meth:`run` move for move — same schedule, same RNG draws,
        same acceptance rule — but instead of building and re-scoring a
        fresh state per proposal, the engine mutates one shared state and
        answers with the exact candidate cost, then commits or reverts.
        """
        current_cost = engine.current_cost()
        best = engine.snapshot()
        best_cost = current_cost
        stats = RunningStats()
        stats.add(current_cost)
        history: List[float] = [current_cost] if self._record_history else []
        iterations = 0
        accepted = 0
        step = 0
        with span("anneal.run_incremental") as obs_span:
            eval_before = _engine_eval_stats(engine) if _obs_enabled() else {}
            while not self._schedule.finished(step) and iterations < self._max_iterations:
                temperature = self._schedule.temperature(step)
                for _ in range(self._moves):
                    if iterations >= self._max_iterations:
                        break
                    candidate_cost = engine.propose(self._rng)
                    iterations += 1
                    stats.add(candidate_cost)
                    if metropolis_accept(current_cost, candidate_cost, temperature, self._rng):
                        engine.commit()
                        current_cost = candidate_cost
                        accepted += 1
                        if self._record_history and accepted % self._history_stride == 0:
                            history.append(current_cost)
                        if current_cost < best_cost:
                            best = engine.snapshot()
                            best_cost = current_cost
                    else:
                        engine.revert()
                step += 1
            obs_span.set(iterations=iterations, accepted=accepted, steps=step)
            self._flush_anneal_metrics(iterations, accepted, step)
            if _obs_enabled():
                eval_after = _engine_eval_stats(engine)
                if eval_after:
                    metrics = _obs_metrics()
                    for key, value in eval_after.items():
                        delta = value - eval_before.get(key, 0)
                        if delta:
                            metrics.inc(f"eval.{key}", delta)
        return AnnealResult(
            best_state=best,
            best_cost=best_cost,
            final_state=engine.snapshot(),
            final_cost=current_cost,
            average_cost=stats.mean,
            iterations=iterations,
            accepted_moves=accepted,
            cost_history=history,
        )
