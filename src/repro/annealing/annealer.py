"""A small, generic simulated annealing driver.

The BDIO (inner loop), the per-instance baseline placer and the sizing
optimizer all share this engine; the placement explorer keeps its own loop
because it interleaves structure bookkeeping (expansion, overlap
resolution, storage) between SA moves, but reuses the schedules and the
acceptance rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, TypeVar

from repro.annealing.acceptance import metropolis_accept
from repro.annealing.schedule import CoolingSchedule, GeometricSchedule
from repro.utils.rng import RandomLike, make_rng
from repro.utils.stats import RunningStats

State = TypeVar("State")


@dataclass
class AnnealResult(Generic[State]):
    """Outcome of an annealing run."""

    best_state: State
    best_cost: float
    final_state: State
    final_cost: float
    average_cost: float
    iterations: int
    accepted_moves: int
    cost_history: List[float] = field(default_factory=list)

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of proposed moves that were accepted."""
        if self.iterations == 0:
            return 0.0
        return self.accepted_moves / self.iterations


class SimulatedAnnealer(Generic[State]):
    """Drive simulated annealing over user-supplied propose/evaluate callables.

    Parameters
    ----------
    evaluate:
        Maps a state to its scalar cost (lower is better).
    propose:
        Maps ``(state, rng)`` to a neighbouring candidate state.  States are
        treated as immutable values; ``propose`` must return a new state.
    schedule:
        Cooling schedule; defaults to a geometric schedule.
    moves_per_temperature:
        Number of proposals evaluated at each temperature step.
    max_iterations:
        Hard cap on the total number of proposals (safety net for schedules
        that cool slowly).
    record_history:
        When true, every accepted cost is appended to the result's history.
    """

    def __init__(
        self,
        evaluate: Callable[[State], float],
        propose: Callable[[State, "random.Random"], State],
        schedule: Optional[CoolingSchedule] = None,
        moves_per_temperature: int = 20,
        max_iterations: int = 10000,
        record_history: bool = False,
        seed: RandomLike = None,
    ) -> None:
        if moves_per_temperature <= 0:
            raise ValueError("moves_per_temperature must be positive")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self._evaluate = evaluate
        self._propose = propose
        self._schedule = schedule or GeometricSchedule()
        self._moves = moves_per_temperature
        self._max_iterations = max_iterations
        self._record_history = record_history
        self._rng = make_rng(seed)

    def run(self, initial_state: State) -> AnnealResult[State]:
        """Anneal starting from ``initial_state`` and return the best state found."""
        current = initial_state
        current_cost = self._evaluate(current)
        best = current
        best_cost = current_cost
        stats = RunningStats()
        stats.add(current_cost)
        history: List[float] = [current_cost] if self._record_history else []
        iterations = 0
        accepted = 0
        step = 0
        while not self._schedule.finished(step) and iterations < self._max_iterations:
            temperature = self._schedule.temperature(step)
            for _ in range(self._moves):
                if iterations >= self._max_iterations:
                    break
                candidate = self._propose(current, self._rng)
                candidate_cost = self._evaluate(candidate)
                iterations += 1
                stats.add(candidate_cost)
                if metropolis_accept(current_cost, candidate_cost, temperature, self._rng):
                    current = candidate
                    current_cost = candidate_cost
                    accepted += 1
                    if self._record_history:
                        history.append(current_cost)
                    if current_cost < best_cost:
                        best = current
                        best_cost = current_cost
            step += 1
        return AnnealResult(
            best_state=best,
            best_cost=best_cost,
            final_state=current,
            final_cost=current_cost,
            average_cost=stats.mean,
            iterations=iterations,
            accepted_moves=accepted,
            cost_history=history,
        )
