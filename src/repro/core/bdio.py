"""The Block Dimensions-Interval Optimizer (Section 3.2).

The BDIO receives a placement with fixed anchors and expanded per-block
dimension intervals, runs a simulated annealing search over the block
widths and heights inside those intervals, and returns

* the *average* cost over all visited dimension vectors (used by the
  Placement Explorer as the placement's SA cost),
* the *best* cost attained and the dimension vector achieving it, and
* the intervals shrunk around the best dimensions via Equation 6
  (the Optimize Ranges step).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.annealing.annealer import SimulatedAnnealer
from repro.annealing.schedule import AdaptiveSchedule
from repro.core.intervals import Interval
from repro.core.placement_entry import Anchor, DimensionRange, Dims
from repro.cost.cost_function import PlacementCostFunction
from repro.eval.engines import PerturbDeltaEngine, dims_update
from repro.eval.incremental import IncrementalEvaluator
from repro.utils.rng import RandomLike, make_rng

#: Interpret Equation 6 so intervals *tighten* as the average cost drifts away
#: from the best cost (the behaviour the paper's prose describes).
EQ6_INTENT = "intent"
#: Interpret Equation 6 exactly as printed (``average/best`` multiplier).
EQ6_LITERAL = "literal"


@dataclass(frozen=True)
class BDIOConfig:
    """Tuning knobs of the inner simulated annealing loop."""

    #: Hard cap on cost evaluations per BDIO call ("a number of iterations set by the user").
    max_iterations: int = 400
    #: Proposals evaluated per temperature step.
    moves_per_temperature: int = 10
    #: Initial temperature as a fraction of the initial cost.
    initial_temperature_fraction: float = 0.3
    #: Geometric cooling factor.
    alpha: float = 0.85
    #: Fraction of blocks whose dimensions are perturbed per move.
    perturb_fraction: float = 0.5
    #: Maximum relative step (fraction of the interval length) per perturbation.
    perturb_step_fraction: float = 0.35
    #: Which reading of Equation 6 to apply in Optimize Ranges.
    eq6_mode: str = EQ6_INTENT
    #: Never shrink an interval below this many integer values.
    min_interval_length: int = 1
    #: Price dimension moves by delta through :mod:`repro.eval` (same
    #: trajectory, much faster); ``False`` re-scores from scratch.
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if not (0.0 < self.perturb_fraction <= 1.0):
            raise ValueError("perturb_fraction must lie in (0, 1]")
        if not (0.0 < self.perturb_step_fraction <= 1.0):
            raise ValueError("perturb_step_fraction must lie in (0, 1]")
        if self.eq6_mode not in (EQ6_INTENT, EQ6_LITERAL):
            raise ValueError(f"eq6_mode must be '{EQ6_INTENT}' or '{EQ6_LITERAL}'")
        if self.min_interval_length < 1:
            raise ValueError("min_interval_length must be >= 1")

    def scaled(self, factor: float) -> "BDIOConfig":
        """Copy with the iteration budget scaled by ``factor`` (>= 1 evaluation)."""
        return replace(self, max_iterations=max(1, int(self.max_iterations * factor)))


@dataclass
class BDIOResult:
    """Outcome of one BDIO call."""

    reduced_ranges: List[DimensionRange]
    average_cost: float
    best_cost: float
    best_dims: Tuple[Dims, ...]
    evaluations: int = 0
    expanded_ranges: List[DimensionRange] = field(default_factory=list)
    #: The incremental evaluator's move/commit/revert/resync counters
    #: (empty when the call ran on the from-scratch path).
    eval_stats: dict = field(default_factory=dict)


def optimize_ranges(
    ranges: Sequence[DimensionRange],
    best_dims: Sequence[Dims],
    average_cost: float,
    best_cost: float,
    mode: str = EQ6_INTENT,
    min_length: int = 1,
) -> List[DimensionRange]:
    """The Optimize Ranges step (Equation 6).

    Each interval is re-centred on the best dimension value and its width is
    scaled by the best/average cost ratio: the further the average cost is
    from the best cost, the tighter the interval becomes around the best
    dimensions.  ``mode=EQ6_LITERAL`` instead applies the multiplier exactly
    as printed in the paper (``average/best``), capped at the expanded
    interval, for the ablation study.
    """
    if len(ranges) != len(best_dims):
        raise ValueError("ranges and best_dims must have the same length")
    if mode not in (EQ6_INTENT, EQ6_LITERAL):
        raise ValueError(f"mode must be '{EQ6_INTENT}' or '{EQ6_LITERAL}'")
    if best_cost <= 0 or average_cost <= 0:
        ratio = 1.0
    elif mode == EQ6_INTENT:
        ratio = min(1.0, best_cost / average_cost)
    else:
        # Literal reading: the printed multiplier average/best is >= 1, so the
        # re-centred interval would be at least as long as the expanded one;
        # clipping to the expanded interval makes it equivalent to keeping the
        # full length (no tightening), which is what the ablation compares.
        ratio = 1.0

    reduced: List[DimensionRange] = []
    for dim_range, (best_w, best_h) in zip(ranges, best_dims):
        reduced.append(
            DimensionRange(
                _shrink_interval(dim_range.width, best_w, ratio, min_length),
                _shrink_interval(dim_range.height, best_h, ratio, min_length),
            )
        )
    return reduced


def _shrink_interval(interval: Interval, center: int, ratio: float, min_length: int) -> Interval:
    """Shrink ``interval`` around ``center`` to ``ratio`` of its length."""
    center = interval.clamp(center)
    target_length = max(min_length, int(round(interval.length * ratio)))
    half_low = (target_length - 1) // 2
    half_high = target_length - 1 - half_low
    start = center - half_low
    end = center + half_high
    # Slide back inside the expanded interval without changing the length.
    if start < interval.start:
        end += interval.start - start
        start = interval.start
    if end > interval.end:
        start -= end - interval.end
        end = interval.end
    start = max(start, interval.start)
    return Interval(start, end)


class BlockDimensionsIntervalOptimizer:
    """Inner simulated annealing over block dimensions for a fixed placement."""

    def __init__(
        self,
        cost_function: PlacementCostFunction,
        config: BDIOConfig = BDIOConfig(),
        seed: RandomLike = None,
    ) -> None:
        self._cost_function = cost_function
        self._config = config
        self._rng = make_rng(seed)

    @property
    def config(self) -> BDIOConfig:
        """The configuration in use."""
        return self._config

    def optimize(
        self,
        anchors: Sequence[Anchor],
        ranges: Sequence[DimensionRange],
    ) -> BDIOResult:
        """Run the dimension search for one placement and shrink its intervals."""
        anchors = tuple(anchors)
        ranges = list(ranges)
        config = self._config
        use_incremental = config.incremental and self._cost_function.supports_incremental

        initial_dims = tuple(
            (rng_range.width.midpoint(), rng_range.height.midpoint()) for rng_range in ranges
        )
        evaluator: Optional[IncrementalEvaluator] = None
        if use_incremental:
            evaluator = self._cost_function.bind(anchors, initial_dims)
            initial_cost = evaluator.total
        else:
            initial_cost = self._cost_function.evaluate_layout(anchors, initial_dims).total
        schedule = AdaptiveSchedule(
            reference_cost=max(initial_cost, 1e-9),
            fraction=config.initial_temperature_fraction,
            alpha=config.alpha,
        )
        if evaluator is not None:
            annealer: SimulatedAnnealer = SimulatedAnnealer(
                schedule=schedule,
                moves_per_temperature=config.moves_per_temperature,
                max_iterations=config.max_iterations,
                seed=self._rng,
            )
            engine = PerturbDeltaEngine(
                evaluator,
                initial_dims,
                lambda dims, rng: self._perturb_dims(dims, ranges, rng),
                dims_update,
            )
            result = annealer.run_incremental(engine)
        else:

            def evaluate(dims: Tuple[Dims, ...]) -> float:
                return self._cost_function.evaluate_layout(anchors, dims).total

            def propose(dims: Tuple[Dims, ...], rng: random.Random) -> Tuple[Dims, ...]:
                return self._perturb_dims(dims, ranges, rng)

            annealer = SimulatedAnnealer(
                evaluate=evaluate,
                propose=propose,
                schedule=schedule,
                moves_per_temperature=config.moves_per_temperature,
                max_iterations=config.max_iterations,
                seed=self._rng,
            )
            result = annealer.run(initial_dims)
        reduced = optimize_ranges(
            ranges,
            result.best_state,
            result.average_cost,
            result.best_cost,
            mode=config.eq6_mode,
            min_length=config.min_interval_length,
        )
        return BDIOResult(
            reduced_ranges=reduced,
            average_cost=result.average_cost,
            best_cost=result.best_cost,
            best_dims=tuple(result.best_state),
            evaluations=result.iterations,
            expanded_ranges=ranges,
            eval_stats=evaluator.stats() if evaluator is not None else {},
        )

    # ------------------------------------------------------------------ #
    # The Dimensions Selector's perturbation move (Section 3.2.1)
    # ------------------------------------------------------------------ #
    def _perturb_dims(
        self,
        dims: Tuple[Dims, ...],
        ranges: Sequence[DimensionRange],
        rng: random.Random,
    ) -> Tuple[Dims, ...]:
        config = self._config
        count = max(1, int(round(len(dims) * config.perturb_fraction)))
        chosen = rng.sample(range(len(dims)), min(count, len(dims)))
        new_dims = list(dims)
        for block_index in chosen:
            w, h = new_dims[block_index]
            dim_range = ranges[block_index]
            w = self._step_within(w, dim_range.width, rng)
            h = self._step_within(h, dim_range.height, rng)
            new_dims[block_index] = (w, h)
        return tuple(new_dims)

    def _step_within(self, value: int, interval: Interval, rng: random.Random) -> int:
        span = interval.length
        if span <= 1:
            return interval.start
        max_step = max(1, int(round(span * self._config.perturb_step_fraction)))
        step = rng.randint(-max_step, max_step)
        return interval.clamp(value + step)
