"""Placement Expansion (Section 3.1.2).

Given a selected placement (block anchors) with all dimensions at their
minimum, grow the blocks "one by one until no further expansion is possible
due to overlapping or out-of-bounds constraints".  The resulting per-block
width/height intervals ``[min, expanded]`` are the starting ranges handed to
the Block Dimensions-Interval Optimizer.

Because every block is anchored at its lower-left corner and only grows to
the right and upwards, the final expanded rectangles are mutually
overlap-free, and therefore *any* dimension vector inside the expanded
intervals is also overlap-free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.core.intervals import Interval
from repro.core.placement_entry import Anchor, DimensionRange
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect


def _overlaps_others(rects: List[Rect], index: int) -> bool:
    candidate = rects[index]
    for other_index, other in enumerate(rects):
        if other_index != index and candidate.intersects(other):
            return True
    return False


def placement_is_legal_at_min_dims(
    circuit: Circuit, anchors: Sequence[Anchor], bounds: FloorplanBounds
) -> bool:
    """True when the anchors give an overlap-free, in-bounds layout at minimum dims."""
    rects = [
        Rect(x, y, block.min_w, block.min_h)
        for (x, y), block in zip(anchors, circuit.blocks)
    ]
    if any(not bounds.contains(rect) for rect in rects):
        return False
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            if rects[i].intersects(rects[j]):
                return False
    return True


def expand_placement(
    circuit: Circuit,
    anchors: Sequence[Anchor],
    bounds: FloorplanBounds,
    step: int = 1,
) -> Optional[List[DimensionRange]]:
    """Expand block dimensions from their minima and return the per-block intervals.

    Returns ``None`` when the placement is illegal even at minimum
    dimensions (the explorer then rejects the proposed placement).

    ``step`` controls the growth increment per visit; 1 reproduces the
    paper's one-unit-at-a-time expansion, larger values trade interval
    tightness for speed on large blocks.
    """
    if len(anchors) != circuit.num_blocks:
        raise ValueError("anchors must have one entry per circuit block")
    if step <= 0:
        raise ValueError("step must be positive")
    if not placement_is_legal_at_min_dims(circuit, anchors, bounds):
        return None

    dims: List[List[int]] = [[block.min_w, block.min_h] for block in circuit.blocks]
    rects: List[Rect] = [
        Rect(x, y, w, h) for (x, y), (w, h) in zip(anchors, dims)
    ]
    # Each entry is (block_index, axis) with axis 0 = width, 1 = height.
    active: List[Tuple[int, int]] = []
    for block_index, block in enumerate(circuit.blocks):
        if block.max_w > block.min_w:
            active.append((block_index, 0))
        if block.max_h > block.min_h:
            active.append((block_index, 1))

    while active:
        still_active: List[Tuple[int, int]] = []
        for block_index, axis in active:
            block = circuit.blocks[block_index]
            limit = block.max_w if axis == 0 else block.max_h
            current = dims[block_index][axis]
            grown = min(current + step, limit)
            if grown == current:
                continue
            x, y = anchors[block_index]
            if axis == 0:
                candidate = Rect(x, y, grown, dims[block_index][1])
            else:
                candidate = Rect(x, y, dims[block_index][0], grown)
            rects[block_index] = candidate
            if bounds.contains(candidate) and not _overlaps_others(rects, block_index):
                dims[block_index][axis] = grown
                if grown < limit:
                    still_active.append((block_index, axis))
            else:
                # Revert and retire this growth direction.
                rects[block_index] = Rect(x, y, dims[block_index][0], dims[block_index][1])
        active = still_active

    ranges: List[DimensionRange] = []
    for block_index, block in enumerate(circuit.blocks):
        ranges.append(
            DimensionRange(
                Interval(block.min_w, dims[block_index][0]),
                Interval(block.min_h, dims[block_index][1]),
            )
        )
    return ranges
