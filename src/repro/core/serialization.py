"""Persist generated multi-placement structures.

The whole point of a multi-placement structure is that it is generated once
per topology and reused across synthesis runs; JSON (de)serialization makes
that reuse possible across processes.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Union

from repro.api.placement import Placement
from repro.circuit.block import Block
from repro.circuit.devices import DeviceType
from repro.circuit.net import Net, Terminal
from repro.circuit.netlist import Circuit
from repro.circuit.pin import Pin
from repro.circuit.symmetry import SymmetryGroup
from repro.core.placement_entry import DimensionRange
from repro.core.structure import MultiPlacementStructure
from repro.cost.cost_function import CostBreakdown
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect

FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# Circuit <-> dict
# --------------------------------------------------------------------------- #
def circuit_to_dict(circuit: Circuit) -> Dict[str, Any]:
    """Plain-data form of a circuit."""
    return {
        "name": circuit.name,
        "blocks": [
            {
                "name": block.name,
                "min_w": block.min_w,
                "max_w": block.max_w,
                "min_h": block.min_h,
                "max_h": block.max_h,
                "device_type": block.device_type.value,
                "generator": block.generator,
                "symmetry_group": block.symmetry_group,
                "pins": {pin.name: [pin.fx, pin.fy] for pin in block.pins.values()},
            }
            for block in circuit.blocks
        ],
        "nets": [
            {
                "name": net.name,
                "terminals": [[t.block, t.pin] for t in net.terminals],
                "weight": net.weight,
                "external": net.external,
                "io_position": list(net.io_position),
            }
            for net in circuit.nets
        ],
        "symmetry_groups": [
            {
                "name": group.name,
                "pairs": [list(pair) for pair in group.pairs],
                "self_symmetric": list(group.self_symmetric),
            }
            for group in circuit.symmetry_groups
        ],
    }


def circuit_from_dict(data: Dict[str, Any]) -> Circuit:
    """Rebuild a circuit from :func:`circuit_to_dict` output."""
    circuit = Circuit(data["name"])
    for block_data in data["blocks"]:
        pins = {
            name: Pin(name, fx, fy)
            for name, (fx, fy) in block_data.get("pins", {}).items()
        }
        circuit.add_block(
            Block(
                name=block_data["name"],
                min_w=block_data["min_w"],
                max_w=block_data["max_w"],
                min_h=block_data["min_h"],
                max_h=block_data["max_h"],
                device_type=DeviceType(block_data.get("device_type", "generic")),
                generator=block_data.get("generator"),
                symmetry_group=block_data.get("symmetry_group"),
                pins=pins,
            )
        )
    for net_data in data["nets"]:
        circuit.add_net(
            Net(
                name=net_data["name"],
                terminals=tuple(Terminal(block, pin) for block, pin in net_data["terminals"]),
                weight=net_data.get("weight", 1.0),
                external=net_data.get("external", False),
                io_position=tuple(net_data.get("io_position", (0.0, 0.5))),
            )
        )
    for group_data in data.get("symmetry_groups", []):
        circuit.add_symmetry_group(
            SymmetryGroup(
                group_data["name"],
                tuple(tuple(pair) for pair in group_data.get("pairs", [])),
                tuple(group_data.get("self_symmetric", [])),
            )
        )
    return circuit


# --------------------------------------------------------------------------- #
# Structure <-> dict
# --------------------------------------------------------------------------- #
def structure_to_dict(structure: MultiPlacementStructure) -> Dict[str, Any]:
    """Plain-data form of a structure (circuit, bounds, placements, fallback)."""
    return {
        "format_version": FORMAT_VERSION,
        "circuit": circuit_to_dict(structure.circuit),
        "bounds": {"width": structure.bounds.width, "height": structure.bounds.height},
        "fallback_anchors": (
            [list(anchor) for anchor in structure.fallback_anchors]
            if structure.fallback_anchors is not None
            else None
        ),
        "placements": [
            {
                "index": placement.index,
                "anchors": [list(anchor) for anchor in placement.anchors],
                "ranges": [list(r.as_tuple()) for r in placement.ranges],
                "average_cost": placement.average_cost,
                "best_cost": placement.best_cost,
                "best_dims": [list(d) for d in placement.best_dims],
            }
            for placement in structure
        ],
    }


def structure_from_dict(data: Dict[str, Any]) -> MultiPlacementStructure:
    """Rebuild a structure from :func:`structure_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported structure format version {version!r}")
    circuit = circuit_from_dict(data["circuit"])
    bounds = FloorplanBounds(data["bounds"]["width"], data["bounds"]["height"])
    structure = MultiPlacementStructure(circuit, bounds)
    if data.get("fallback_anchors") is not None:
        structure.set_fallback([tuple(anchor) for anchor in data["fallback_anchors"]])
    for placement_data in data["placements"]:
        structure.add_placement(
            anchors=[tuple(anchor) for anchor in placement_data["anchors"]],
            ranges=[DimensionRange.from_tuple(r) for r in placement_data["ranges"]],
            average_cost=placement_data["average_cost"],
            best_cost=placement_data["best_cost"],
            best_dims=[tuple(d) for d in placement_data.get("best_dims", [])],
            index=placement_data["index"],
        )
    return structure


# --------------------------------------------------------------------------- #
# Placement <-> dict
# --------------------------------------------------------------------------- #
def placement_to_dict(placement: Placement) -> Dict[str, Any]:
    """Lossless plain-data form of a :class:`~repro.api.Placement`.

    Unlike :meth:`Placement.as_dict` (a report format that drops the cost
    breakdown and the dimension vector), this form round-trips through
    :func:`placement_from_dict` exactly — it is the wire format placements
    travel in between parallel workers and golden-fixture files.
    """
    return {
        "placer": placement.placer,
        "source": placement.source,
        "elapsed_seconds": placement.elapsed_seconds,
        "rects": {
            name: [rect.x, rect.y, rect.w, rect.h]
            for name, rect in placement.rects.items()
        },
        "cost": placement.cost.as_dict(),
        "metadata": {
            key: ([list(d) for d in value] if key == "dims" else value)  # type: ignore[union-attr]
            for key, value in placement.metadata.items()
        },
    }


def placement_from_dict(data: Dict[str, Any]) -> Placement:
    """Rebuild a placement from :func:`placement_to_dict` output.

    ``metadata["dims"]`` is restored to its tuple-of-tuples form; every
    other metadata value must be JSON-native (which is all the built-in
    engines store there).
    """
    metadata = {
        key: (
            tuple((int(w), int(h)) for w, h in value) if key == "dims" else value
        )
        for key, value in data.get("metadata", {}).items()
    }
    return Placement(
        rects={
            name: Rect(int(x), int(y), int(w), int(h))
            for name, (x, y, w, h) in data["rects"].items()
        },
        cost=CostBreakdown(**{str(k): float(v) for k, v in data["cost"].items()}),
        placer=data["placer"],
        source=data.get("source", ""),
        elapsed_seconds=data.get("elapsed_seconds", 0.0),
        metadata=metadata,
    )


# --------------------------------------------------------------------------- #
# File I/O
# --------------------------------------------------------------------------- #
def save_structure(structure: MultiPlacementStructure, path: Union[str, Path]) -> Path:
    """Write a structure to ``path`` as JSON and return the path.

    The write is atomic: the JSON goes to a temporary file in the same
    directory which is then moved over ``path`` with :func:`os.replace`, so
    a crashed or concurrent writer can never leave a truncated structure
    behind — readers see either the old file or the new one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(structure_to_dict(structure), indent=2)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_structure(path: Union[str, Path]) -> MultiPlacementStructure:
    """Load a structure previously written by :func:`save_structure`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        data = json.load(handle)
    return structure_from_dict(data)
