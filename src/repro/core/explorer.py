"""The Placement Explorer (Section 3.1) — the outer simulated annealing loop.

Each iteration:

1. **Placement Selector / Perturb Placement** — start from a random legal
   placement, then perturb the accepted placement's anchors (a user-set
   fraction of blocks move; out-of-bounds moves wrap to the opposite side).
2. **Placement Expansion** — grow block dimensions from their minima until
   blocked (see :mod:`repro.core.expansion`).
3. **BDIO** — score the placement and shrink its dimension intervals.
4. **Resolve Overlaps + Store Placement** — make the new intervals disjoint
   from every stored placement and add the surviving pieces to the
   structure.
5. **Accept New Placement?** — Metropolis test on the BDIO's average cost
   decides whether the new placement seeds the next perturbation.

The loop stops when the coverage of the width/height space reaches the
user's target (or the iteration budget runs out); the uncovered remainder
is served by the structure's template fallback.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.annealing.acceptance import metropolis_accept
from repro.circuit.netlist import Circuit
from repro.core.bdio import BDIOResult, BlockDimensionsIntervalOptimizer
from repro.core.expansion import expand_placement, placement_is_legal_at_min_dims
from repro.core.overlap_resolution import POLICY_SHRINK_WORSE, ResolutionReport, resolve_overlaps
from repro.core.structure import MultiPlacementStructure
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.packing import shelf_pack
from repro.utils.logging_utils import get_logger
from repro.utils.rng import RandomLike, make_rng, spawn_rng

LOGGER = get_logger("core.explorer")

Anchor = Tuple[int, int]


@dataclass(frozen=True)
class ExplorerConfig:
    """Tuning knobs of the outer simulated annealing loop."""

    #: Maximum number of placements proposed (each triggers one BDIO run).
    max_iterations: int = 60
    #: Stop once this coverage value is reached ("an acceptable value set by the user").
    coverage_target: float = 0.9
    #: Coverage metric: ``"marginal"`` (default) or ``"volume"``.
    coverage_metric: str = "marginal"
    #: Samples for the volume coverage estimate (only used with ``"volume"``).
    coverage_samples: int = 500
    #: Initial temperature as a fraction of the first placement's average cost.
    initial_temperature_fraction: float = 0.3
    #: Geometric cooling factor applied once per iteration.
    alpha: float = 0.92
    #: Fraction of blocks whose coordinates are varied per perturbation.
    perturb_fraction: float = 0.35
    #: Maximum move distance as a fraction of the floorplan side.
    perturb_step_fraction: float = 0.5
    #: Attempts at drawing a legal random / perturbed placement before giving up.
    max_legalization_attempts: int = 50
    #: Expansion step size in grid units.
    expansion_step: int = 1
    #: Overlap resolution policy (see :mod:`repro.core.overlap_resolution`).
    overlap_policy: str = POLICY_SHRINK_WORSE
    #: How the first placement is selected: ``"random"`` reproduces the paper's
    #: random initial placement, ``"packed"`` seeds the search from a shelf
    #: packing spaced for mid-range block dimensions (better initial quality).
    initial_placement: str = "random"

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if not (0.0 < self.coverage_target <= 1.0):
            raise ValueError("coverage_target must lie in (0, 1]")
        if not (0.0 < self.perturb_fraction <= 1.0):
            raise ValueError("perturb_fraction must lie in (0, 1]")
        if self.coverage_metric not in ("marginal", "volume"):
            raise ValueError("coverage_metric must be 'marginal' or 'volume'")
        if self.initial_placement not in ("random", "packed"):
            raise ValueError("initial_placement must be 'random' or 'packed'")

    def scaled(self, factor: float) -> "ExplorerConfig":
        """Copy with the iteration budget scaled by ``factor``."""
        return replace(self, max_iterations=max(1, int(self.max_iterations * factor)))


@dataclass
class ExplorerStats:
    """Bookkeeping of one explorer run."""

    iterations: int = 0
    proposed_placements: int = 0
    rejected_illegal: int = 0
    accepted_moves: int = 0
    stored_pieces: int = 0
    final_coverage: float = 0.0
    coverage_history: List[float] = field(default_factory=list)
    average_costs: List[float] = field(default_factory=list)
    best_cost_seen: float = float("inf")
    resolution: ResolutionReport = field(default_factory=ResolutionReport)


class PlacementExplorer:
    """Generate the contents of a multi-placement structure for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        bounds: FloorplanBounds,
        bdio: BlockDimensionsIntervalOptimizer,
        structure: Optional[MultiPlacementStructure] = None,
        config: ExplorerConfig = ExplorerConfig(),
        seed: RandomLike = None,
    ) -> None:
        self._circuit = circuit
        self._bounds = bounds
        self._bdio = bdio
        if structure is None:
            structure = MultiPlacementStructure(circuit, bounds)
        self._structure = structure
        self._config = config
        self._rng = make_rng(seed)

    @property
    def structure(self) -> MultiPlacementStructure:
        """The structure being filled."""
        return self._structure

    @property
    def config(self) -> ExplorerConfig:
        """The configuration in use."""
        return self._config

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> ExplorerStats:
        """Fill the structure until the coverage target or iteration budget is hit."""
        stats = ExplorerStats()
        config = self._config
        current_anchors = self._initial_placement()
        current_cost: Optional[float] = None
        temperature: Optional[float] = None

        for iteration in range(config.max_iterations):
            stats.iterations = iteration + 1
            if iteration == 0:
                anchors = current_anchors
            else:
                anchors = self._perturb(current_anchors)
            stats.proposed_placements += 1

            ranges = expand_placement(
                self._circuit, anchors, self._bounds, step=config.expansion_step
            )
            if ranges is None:
                stats.rejected_illegal += 1
                continue

            bdio_result = self._bdio.optimize(anchors, ranges)
            stats.average_costs.append(bdio_result.average_cost)
            stats.best_cost_seen = min(stats.best_cost_seen, bdio_result.best_cost)

            stored = resolve_overlaps(
                self._structure,
                anchors=anchors,
                ranges=bdio_result.reduced_ranges,
                average_cost=bdio_result.average_cost,
                best_cost=bdio_result.best_cost,
                best_dims=bdio_result.best_dims,
                policy=config.overlap_policy,
                report=stats.resolution,
            )
            stats.stored_pieces += len(stored)

            if current_cost is None:
                current_anchors = anchors
                current_cost = bdio_result.average_cost
                temperature = max(current_cost, 1e-9) * config.initial_temperature_fraction
                stats.accepted_moves += 1
            else:
                assert temperature is not None
                if metropolis_accept(
                    current_cost, bdio_result.average_cost, temperature, self._rng
                ):
                    current_anchors = anchors
                    current_cost = bdio_result.average_cost
                    stats.accepted_moves += 1
                temperature *= config.alpha

            coverage = self._coverage()
            stats.coverage_history.append(coverage)
            if coverage >= config.coverage_target:
                LOGGER.debug(
                    "coverage target %.2f reached after %d iterations",
                    config.coverage_target,
                    iteration + 1,
                )
                break

        stats.final_coverage = self._coverage()
        return stats

    def _coverage(self) -> float:
        if self._config.coverage_metric == "volume":
            return self._structure.volume_coverage(
                spawn_rng(self._rng, salt=7), self._config.coverage_samples
            )
        return self._structure.marginal_coverage()

    # ------------------------------------------------------------------ #
    # Placement Selector (Section 3.1.1)
    # ------------------------------------------------------------------ #
    def _initial_placement(self) -> Tuple[Anchor, ...]:
        """The Placement Selector's first placement.

        ``"random"`` rejection-samples random anchor sets (the paper's
        initial random placement), falling back to a shelf packing when the
        canvas is too congested; ``"packed"`` starts from a shelf packing
        spaced for mid-range dimensions, which gives the annealing a
        compact, legal starting point.
        """
        min_dims = self._circuit.min_dims()
        if self._config.initial_placement == "packed":
            return self._packed_placement()
        for _ in range(self._config.max_legalization_attempts):
            anchors = tuple(
                (
                    self._rng.randint(0, max(0, self._bounds.width - w)),
                    self._rng.randint(0, max(0, self._bounds.height - h)),
                )
                for (w, h) in min_dims
            )
            if placement_is_legal_at_min_dims(self._circuit, anchors, self._bounds):
                return anchors
        order = list(range(len(min_dims)))
        self._rng.shuffle(order)
        packed = shelf_pack(min_dims, max_width=self._bounds.width, order=order)
        return tuple(packed)

    def _packed_placement(self) -> Tuple[Anchor, ...]:
        """A shelf packing spaced for mid-range block dimensions.

        Blocks are anchored where a packing of their mid-size footprints
        would put them, which leaves each block room to expand while keeping
        the overall arrangement compact.
        """
        mid_dims = [
            ((block.min_w + block.max_w) // 2, (block.min_h + block.max_h) // 2)
            for block in self._circuit.blocks
        ]
        order = list(range(len(mid_dims)))
        self._rng.shuffle(order)
        anchors = shelf_pack(mid_dims, max_width=self._bounds.width, order=order)
        clamped = tuple(
            self._bounds.clamp_anchor(x, y, w, h)
            for (x, y), (w, h) in zip(anchors, self._circuit.min_dims())
        )
        if placement_is_legal_at_min_dims(self._circuit, clamped, self._bounds):
            return clamped
        order = list(range(len(mid_dims)))
        self._rng.shuffle(order)
        packed = shelf_pack(self._circuit.min_dims(), max_width=self._bounds.width, order=order)
        return tuple(packed)

    # ------------------------------------------------------------------ #
    # Perturb Placement (Section 3.1.4)
    # ------------------------------------------------------------------ #
    def _perturb(self, anchors: Sequence[Anchor]) -> Tuple[Anchor, ...]:
        """Move a fraction of the blocks; out-of-bounds moves wrap around.

        The perturbed placement is re-drawn until it is legal at minimum
        dimensions (or the attempt budget runs out, in which case the last
        draw is returned and the expansion step will reject it).
        """
        config = self._config
        min_dims = self._circuit.min_dims()
        candidate = tuple(anchors)
        for _ in range(config.max_legalization_attempts):
            candidate = self._perturb_once(anchors, min_dims)
            if placement_is_legal_at_min_dims(self._circuit, candidate, self._bounds):
                return candidate
        return candidate

    def _perturb_once(
        self, anchors: Sequence[Anchor], min_dims: Sequence[Tuple[int, int]]
    ) -> Tuple[Anchor, ...]:
        config = self._config
        count = max(1, int(round(len(anchors) * config.perturb_fraction)))
        chosen = self._rng.sample(range(len(anchors)), min(count, len(anchors)))
        max_dx = max(1, int(self._bounds.width * config.perturb_step_fraction))
        max_dy = max(1, int(self._bounds.height * config.perturb_step_fraction))
        new_anchors = list(anchors)
        for block_index in chosen:
            x, y = new_anchors[block_index]
            w, h = min_dims[block_index]
            dx = self._rng.randint(-max_dx, max_dx)
            dy = self._rng.randint(-max_dy, max_dy)
            new_anchors[block_index] = self._bounds.wrap_anchor(x + dx, y + dy, w, h)
        return tuple(new_anchors)
