"""Integer intervals and the interval rows of the multi-placement structure.

Figure 3 of the paper: each block contributes one row per dimension; a row
is "a linked list of interval objects ... with the constraint of being
ascending and non-overlapping", and each interval object carries "an array
of numbers [which] represents the indices of all placements p_j in which
w_i (h_i) of vector V lie within [that placement's interval]".

:class:`IntervalList` implements exactly that row: an ordered list of
disjoint integer segments, each holding the set of placement indices valid
there.  Queries are ``O(log s)`` via binary search over segment starts.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[start, end]``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"interval start {self.start} exceeds end {self.end}")

    @property
    def length(self) -> int:
        """Number of integers in the interval."""
        return self.end - self.start + 1

    def contains(self, value: int) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.start <= value <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one integer."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The common sub-interval, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` lies fully inside this interval."""
        return self.start <= other.start and other.end <= self.end

    def strictly_contains(self, other: "Interval") -> bool:
        """True when ``other`` lies inside with room left on *both* sides."""
        return self.start < other.start and other.end < self.end

    def clamp(self, value: int) -> int:
        """Clamp ``value`` into the interval."""
        return min(max(value, self.start), self.end)

    def midpoint(self) -> int:
        """The (integer) midpoint of the interval."""
        return (self.start + self.end) // 2

    def as_tuple(self) -> Tuple[int, int]:
        """``(start, end)``."""
        return (self.start, self.end)


@dataclass
class _Segment:
    """One interval object of the row: a span plus the placement indices valid there."""

    start: int
    end: int
    indices: Set[int]

    def to_interval(self) -> Interval:
        return Interval(self.start, self.end)


class IntervalList:
    """An ascending, non-overlapping list of integer segments with index sets.

    This is the computational form of the row functions ``W_i`` / ``H_i``
    (Equation 3): ``query(a)`` returns the subset of placement indices whose
    stored interval for this row contains ``a``.
    """

    def __init__(self) -> None:
        self._segments: List[_Segment] = []

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Tuple[Interval, FrozenSet[int]]]:
        for segment in self._segments:
            yield (segment.to_interval(), frozenset(segment.indices))

    def is_empty(self) -> bool:
        """True when the row holds no segments."""
        return not self._segments

    def query(self, value: int) -> FrozenSet[int]:
        """Placement indices whose interval for this row contains ``value``.

        Returns an empty set when ``value`` falls in a gap (the structure
        then falls back to the template placement).
        """
        position = bisect_right(self._starts(), value) - 1
        if position < 0:
            return frozenset()
        segment = self._segments[position]
        if segment.start <= value <= segment.end:
            return frozenset(segment.indices)
        return frozenset()

    def indices(self) -> FrozenSet[int]:
        """All placement indices referenced anywhere in the row."""
        result: Set[int] = set()
        for segment in self._segments:
            result |= segment.indices
        return frozenset(result)

    def covered_length(self) -> int:
        """Total number of integer values covered by at least one placement."""
        return sum(segment.end - segment.start + 1 for segment in self._segments if segment.indices)

    def covered_interval_for(self, index: int) -> Optional[Interval]:
        """The contiguous span over which ``index`` appears, or ``None``.

        Placements always occupy one contiguous range per row, so the union
        of the segments mentioning ``index`` is a single interval.
        """
        spans = [seg for seg in self._segments if index in seg.indices]
        if not spans:
            return None
        return Interval(spans[0].start, spans[-1].end)

    def _starts(self) -> List[int]:
        return [segment.start for segment in self._segments]

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` when the ascending/non-overlapping invariant breaks."""
        for left, right in zip(self._segments, self._segments[1:]):
            assert left.end < right.start, (
                f"segments overlap or are out of order: "
                f"[{left.start},{left.end}] then [{right.start},{right.end}]"
            )
        for segment in self._segments:
            assert segment.start <= segment.end

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def insert(self, interval: Interval, index: int) -> None:
        """Register placement ``index`` over ``interval`` (the Store Placement routine).

        Existing segments are split at the interval boundaries so the row
        stays ascending and non-overlapping; gaps inside ``interval`` become
        new segments containing only ``index``.
        """
        start, end = interval.start, interval.end
        rebuilt: List[_Segment] = []
        cursor = start
        for segment in self._segments:
            if segment.end < start or segment.start > end:
                rebuilt.append(segment)
                continue
            if segment.start < start:
                rebuilt.append(_Segment(segment.start, start - 1, set(segment.indices)))
            mid_start = max(segment.start, start)
            mid_end = min(segment.end, end)
            if cursor < mid_start:
                rebuilt.append(_Segment(cursor, mid_start - 1, {index}))
            rebuilt.append(_Segment(mid_start, mid_end, set(segment.indices) | {index}))
            cursor = mid_end + 1
            if segment.end > end:
                rebuilt.append(_Segment(end + 1, segment.end, set(segment.indices)))
        if cursor <= end:
            rebuilt.append(_Segment(cursor, end, {index}))
        rebuilt.sort(key=lambda seg: seg.start)
        self._segments = rebuilt
        self._coalesce()

    def remove_index(self, index: int) -> None:
        """Remove every reference to placement ``index`` from the row."""
        remaining: List[_Segment] = []
        for segment in self._segments:
            segment.indices.discard(index)
            if segment.indices:
                remaining.append(segment)
        self._segments = remaining
        self._coalesce()

    def _coalesce(self) -> None:
        """Merge adjacent segments with identical index sets."""
        merged: List[_Segment] = []
        for segment in self._segments:
            if (
                merged
                and merged[-1].end + 1 == segment.start
                and merged[-1].indices == segment.indices
            ):
                merged[-1].end = segment.end
            else:
                merged.append(segment)
        self._segments = merged

    # ------------------------------------------------------------------ #
    # Serialization support
    # ------------------------------------------------------------------ #
    def to_list(self) -> List[Tuple[int, int, List[int]]]:
        """Plain-data form of the row (used by :mod:`repro.core.serialization`)."""
        return [(seg.start, seg.end, sorted(seg.indices)) for seg in self._segments]

    @classmethod
    def from_list(cls, data: List[Tuple[int, int, List[int]]]) -> "IntervalList":
        """Rebuild a row from :meth:`to_list` output."""
        row = cls()
        row._segments = [_Segment(start, end, set(indices)) for start, end, indices in data]
        row._segments.sort(key=lambda seg: seg.start)
        row.check_invariants()
        return row
