"""The Resolve Overlaps routine (Section 3.1.3).

Before a new placement is stored, its dimension box must be made disjoint
from every already-stored placement's box so that Equation 5 (at most one
placement per query) keeps holding.  For each conflicting pair the routine

1. finds the row (block + dimension) with the *smallest* overlap,
2. shrinks the placement with the *higher average cost* away from the other
   placement's interval in that row,
3. forks the shrunk placement into two pieces when the other placement's
   interval sits strictly inside it, and
4. discards the shrunk placement entirely when nothing remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange, StoredPlacement
from repro.core.structure import MultiPlacementStructure
from repro.utils.logging_utils import get_logger

LOGGER = get_logger("core.overlap_resolution")

#: Resolution policies (the paper's rule plus two ablation variants).
POLICY_SHRINK_WORSE = "shrink_worse"
POLICY_SHRINK_NEWER = "shrink_newer"
POLICY_DISCARD_NEWER = "discard_newer"

POLICIES = (POLICY_SHRINK_WORSE, POLICY_SHRINK_NEWER, POLICY_DISCARD_NEWER)


@dataclass
class ResolutionReport:
    """Bookkeeping of one resolve-overlaps run (used by tests and ablations)."""

    conflicts: int = 0
    shrunk_existing: int = 0
    shrunk_new: int = 0
    forked: int = 0
    discarded_existing: int = 0
    discarded_new: int = 0
    stored_pieces: List[StoredPlacement] = field(default_factory=list)


def smallest_overlap_dimension(
    a: Sequence[DimensionRange], b: Sequence[DimensionRange]
) -> Optional[Tuple[int, str, Interval]]:
    """The (block, axis) row where the two boxes overlap the least.

    Returns ``None`` when the boxes do not overlap (some row is disjoint).
    """
    best: Optional[Tuple[int, str, Interval]] = None
    best_length = None
    for block_index, (ra, rb) in enumerate(zip(a, b)):
        width_overlap = ra.width.intersection(rb.width)
        height_overlap = ra.height.intersection(rb.height)
        if width_overlap is None or height_overlap is None:
            return None
        for axis, overlap in (("w", width_overlap), ("h", height_overlap)):
            if best_length is None or overlap.length < best_length:
                best_length = overlap.length
                best = (block_index, axis, overlap)
    return best


def shrink_interval_away(loser: Interval, winner: Interval) -> List[Interval]:
    """Remove ``winner`` from ``loser`` along one axis.

    Returns zero, one or two remaining intervals: two when ``winner`` sits
    strictly inside ``loser`` (the fork case), one when the overlap touches
    an end of ``loser``, and zero when ``winner`` covers ``loser`` entirely.
    """
    if not loser.overlaps(winner):
        return [loser]
    pieces: List[Interval] = []
    if loser.start < winner.start:
        pieces.append(Interval(loser.start, winner.start - 1))
    if winner.end < loser.end:
        pieces.append(Interval(winner.end + 1, loser.end))
    return pieces


def shrink_ranges_away(
    loser: Sequence[DimensionRange],
    winner: Sequence[DimensionRange],
    block_index: int,
    axis: str,
) -> List[List[DimensionRange]]:
    """Shrink the loser's box away from the winner's in one row.

    Returns the list of resulting boxes (0, 1 or 2 — the 2-element case is
    the paper's fork).
    """
    loser_interval = loser[block_index].width if axis == "w" else loser[block_index].height
    winner_interval = winner[block_index].width if axis == "w" else winner[block_index].height
    pieces = shrink_interval_away(loser_interval, winner_interval)
    results: List[List[DimensionRange]] = []
    for piece in pieces:
        new_ranges = list(loser)
        if axis == "w":
            new_ranges[block_index] = loser[block_index].replace(width=piece)
        else:
            new_ranges[block_index] = loser[block_index].replace(height=piece)
        results.append(new_ranges)
    return results


def resolve_overlaps(
    structure: MultiPlacementStructure,
    anchors: Sequence[Tuple[int, int]],
    ranges: Sequence[DimensionRange],
    average_cost: float,
    best_cost: float,
    best_dims: Sequence[Tuple[int, int]] = (),
    policy: str = POLICY_SHRINK_WORSE,
    report: Optional[ResolutionReport] = None,
) -> List[StoredPlacement]:
    """Resolve conflicts of a candidate placement and store the surviving pieces.

    The candidate starts as a single piece; conflicts may shrink or fork it
    (or shrink/fork/remove already-stored placements, depending on the
    policy and the cost comparison).  Every surviving piece is stored in the
    structure and returned.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown overlap resolution policy {policy!r}; choose from {POLICIES}")
    report = report if report is not None else ResolutionReport()

    pending: List[List[DimensionRange]] = [list(ranges)]
    stored: List[StoredPlacement] = []

    while pending:
        piece = pending.pop()
        conflict = _first_conflict(structure, piece)
        if conflict is None:
            placement = structure.add_placement(
                anchors=anchors,
                ranges=piece,
                average_cost=average_cost,
                best_cost=best_cost,
                best_dims=best_dims,
            )
            stored.append(placement)
            report.stored_pieces.append(placement)
            continue

        existing = conflict
        report.conflicts += 1
        overlap = smallest_overlap_dimension(piece, existing.ranges)
        if overlap is None:  # pragma: no cover - _first_conflict guarantees overlap
            pending.append(piece)
            continue
        block_index, axis, _interval = overlap

        new_is_worse = _new_placement_loses(policy, average_cost, existing.average_cost)
        if policy == POLICY_DISCARD_NEWER:
            report.discarded_new += 1
            continue

        if new_is_worse:
            pieces = shrink_ranges_away(piece, existing.ranges, block_index, axis)
            if not pieces:
                report.discarded_new += 1
                continue
            if len(pieces) > 1:
                report.forked += 1
            report.shrunk_new += 1
            pending.extend(pieces)
        else:
            pieces = shrink_ranges_away(existing.ranges, piece, block_index, axis)
            if not pieces:
                structure.remove_placement(existing.index)
                report.discarded_existing += 1
            else:
                structure.update_ranges(existing.index, pieces[0])
                report.shrunk_existing += 1
                if len(pieces) > 1:
                    report.forked += 1
                    fork = existing.with_ranges(pieces[1], index=structure.allocate_index())
                    structure.store(fork)
            # The candidate piece is unchanged; re-examine it against the
            # remaining placements.
            pending.append(piece)
    return stored


def _first_conflict(
    structure: MultiPlacementStructure, ranges: Sequence[DimensionRange]
) -> Optional[StoredPlacement]:
    conflicts = structure.overlapping_placements(ranges)
    if not conflicts:
        return None
    return conflicts[0]


def _new_placement_loses(policy: str, new_cost: float, existing_cost: float) -> bool:
    """True when the *new* placement is the one to shrink under ``policy``."""
    if policy == POLICY_SHRINK_NEWER:
        return True
    if policy == POLICY_DISCARD_NEWER:
        return True
    # POLICY_SHRINK_WORSE: the placement with the higher average cost loses;
    # ties favour the already-stored placement.
    return new_cost >= existing_cost
