"""Stored placements: anchors plus per-block dimension intervals.

Equation 2 of the paper: a stored placement ``p_j`` attaches to every block
``B_i`` the 4-tuple ``(w_start, w_end, h_start, h_end)`` delimiting the
dimension values for which ``p_j`` is the placement to use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.intervals import Interval

Dims = Tuple[int, int]
Anchor = Tuple[int, int]


@dataclass(frozen=True)
class DimensionRange:
    """The width and height intervals of one block inside one stored placement."""

    width: Interval
    height: Interval

    def contains(self, w: int, h: int) -> bool:
        """True when ``(w, h)`` lies inside both intervals."""
        return self.width.contains(w) and self.height.contains(h)

    def overlaps(self, other: "DimensionRange") -> bool:
        """True when both the width and height intervals intersect ``other``'s."""
        return self.width.overlaps(other.width) and self.height.overlaps(other.height)

    @property
    def volume(self) -> int:
        """Number of admissible ``(w, h)`` pairs."""
        return self.width.length * self.height.length

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """The paper's 4-tuple ``(w_start, w_end, h_start, h_end)``."""
        return (self.width.start, self.width.end, self.height.start, self.height.end)

    @classmethod
    def from_tuple(cls, values: Sequence[int]) -> "DimensionRange":
        """Build from ``(w_start, w_end, h_start, h_end)``."""
        w_start, w_end, h_start, h_end = values
        return cls(Interval(w_start, w_end), Interval(h_start, h_end))

    def replace(self, width: Optional[Interval] = None,
                height: Optional[Interval] = None) -> "DimensionRange":
        """Copy with one or both intervals replaced."""
        return DimensionRange(width or self.width, height or self.height)


@dataclass
class StoredPlacement:
    """One placement ``p_j`` held by a multi-placement structure.

    Attributes
    ----------
    index:
        The placement's identity inside its structure (the number stored in
        the rows' placement arrays).
    anchors:
        Lower-left block anchors ``(x_i, y_i)`` in circuit block order.
    ranges:
        Per-block :class:`DimensionRange` — the validity box in dimension space.
    average_cost:
        Average cost over the BDIO's dimension search (the explorer's SA cost).
    best_cost:
        Best cost attained by the BDIO.
    best_dims:
        The dimension vector achieving ``best_cost``.
    """

    index: int
    anchors: Tuple[Anchor, ...]
    ranges: List[DimensionRange]
    average_cost: float
    best_cost: float
    best_dims: Tuple[Dims, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.anchors) != len(self.ranges):
            raise ValueError("anchors and ranges must have the same length")
        if self.best_cost > self.average_cost + 1e-9:
            raise ValueError("best cost cannot exceed average cost")
        self.anchors = tuple((int(x), int(y)) for x, y in self.anchors)
        if self.best_dims:
            self.best_dims = tuple((int(w), int(h)) for w, h in self.best_dims)

    @property
    def num_blocks(self) -> int:
        """Number of blocks the placement covers."""
        return len(self.anchors)

    def contains(self, dims: Sequence[Dims]) -> bool:
        """True when the dimension vector lies inside every block's range."""
        if len(dims) != len(self.ranges):
            return False
        return all(rng.contains(w, h) for rng, (w, h) in zip(self.ranges, dims))

    def box_overlaps(self, other: "StoredPlacement") -> bool:
        """True when the two placements' dimension boxes intersect.

        Overlap in the 2N-dimensional dimension space requires the intervals
        to intersect in *every* row; this is the condition the Resolve
        Overlaps routine must eliminate so that Equation 5 holds.
        """
        return all(mine.overlaps(theirs) for mine, theirs in zip(self.ranges, other.ranges))

    def overlap_dimensions(
        self, other: "StoredPlacement"
    ) -> List[Tuple[int, str, Interval]]:
        """Per-row overlap intervals with ``other`` (empty when boxes are disjoint)."""
        if not self.box_overlaps(other):
            return []
        overlaps: List[Tuple[int, str, Interval]] = []
        for block_index, (mine, theirs) in enumerate(zip(self.ranges, other.ranges)):
            width_overlap = mine.width.intersection(theirs.width)
            height_overlap = mine.height.intersection(theirs.height)
            if width_overlap is not None:
                overlaps.append((block_index, "w", width_overlap))
            if height_overlap is not None:
                overlaps.append((block_index, "h", height_overlap))
        return overlaps

    @property
    def volume(self) -> int:
        """Number of dimension vectors covered by the placement."""
        volume = 1
        for rng in self.ranges:
            volume *= rng.volume
        return volume

    def rects(self, dims: Sequence[Dims]):
        """Block rectangles for the given dimension vector (circuit block order)."""
        from repro.geometry.rect import Rect

        return [Rect(x, y, w, h) for (x, y), (w, h) in zip(self.anchors, dims)]

    def with_ranges(self, ranges: Sequence[DimensionRange], index: Optional[int] = None) -> "StoredPlacement":
        """Copy of the placement with different ranges (and optionally a new index)."""
        return StoredPlacement(
            index=self.index if index is None else index,
            anchors=self.anchors,
            ranges=list(ranges),
            average_cost=self.average_cost,
            best_cost=self.best_cost,
            best_dims=self.best_dims,
        )
