"""The multi-placement structure itself.

This is the function ``M`` of Equation 1: it maps a vector of block
dimensions to the single stored placement whose dimension box contains the
vector (Equations 4 and 5), and falls back to a template placement for the
uncovered remainder of the dimension space (Section 3.1.4).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.core.intervals import Interval, IntervalList
from repro.core.placement_entry import Anchor, DimensionRange, Dims, StoredPlacement
from repro.geometry.floorplan import FloorplanBounds
from repro.utils.logging_utils import get_logger

LOGGER = get_logger("core.structure")


class MultiPlacementStructure:
    """Per-topology container of pre-optimized placements, queried by block dimensions.

    Parameters
    ----------
    circuit:
        The topology this structure was generated for.
    bounds:
        The floorplan canvas the stored placements live on.
    """

    def __init__(self, circuit: Circuit, bounds: FloorplanBounds) -> None:
        self._circuit = circuit
        self._bounds = bounds
        self._width_rows: List[IntervalList] = [IntervalList() for _ in circuit.blocks]
        self._height_rows: List[IntervalList] = [IntervalList() for _ in circuit.blocks]
        self._placements: Dict[int, StoredPlacement] = {}
        self._next_index = 0
        self._fallback_anchors: Optional[Tuple[Anchor, ...]] = None
        self._mutations = 0

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def circuit(self) -> Circuit:
        """The circuit topology the structure belongs to."""
        return self._circuit

    @property
    def bounds(self) -> FloorplanBounds:
        """The floorplan canvas of the stored placements."""
        return self._bounds

    @property
    def num_placements(self) -> int:
        """Number of stored placements (the paper's Table 2 "Placements" column)."""
        return len(self._placements)

    def __len__(self) -> int:
        return len(self._placements)

    def __iter__(self) -> Iterator[StoredPlacement]:
        return iter(sorted(self._placements.values(), key=lambda sp: sp.index))

    def placements(self) -> List[StoredPlacement]:
        """All stored placements, ordered by index."""
        return list(iter(self))

    def placement(self, index: int) -> StoredPlacement:
        """The stored placement with the given index."""
        try:
            return self._placements[index]
        except KeyError as exc:
            raise KeyError(f"no stored placement with index {index}") from exc

    def has_placement(self, index: int) -> bool:
        """True when a placement with ``index`` is stored."""
        return index in self._placements

    @property
    def mutation_count(self) -> int:
        """Bumped whenever the stored placement set changes (a cheap staleness check)."""
        return self._mutations

    @property
    def fallback_anchors(self) -> Optional[Tuple[Anchor, ...]]:
        """Template anchors used for queries outside the covered space."""
        return self._fallback_anchors

    def set_fallback(self, anchors: Sequence[Anchor]) -> None:
        """Set the template placement covering the uncovered dimension space.

        The anchors must be valid (overlap-free, in bounds) when every block
        takes its *maximum* dimensions; they are then valid for any smaller
        dimensions because blocks grow from their lower-left anchor.
        """
        if len(anchors) != self._circuit.num_blocks:
            raise ValueError("fallback must provide one anchor per block")
        self._fallback_anchors = tuple((int(x), int(y)) for x, y in anchors)

    # ------------------------------------------------------------------ #
    # Row maintenance (the Store Placement routine)
    # ------------------------------------------------------------------ #
    def width_row(self, block_index: int) -> IntervalList:
        """The ``W_i`` row of block ``block_index``."""
        return self._width_rows[block_index]

    def height_row(self, block_index: int) -> IntervalList:
        """The ``H_i`` row of block ``block_index``."""
        return self._height_rows[block_index]

    def allocate_index(self) -> int:
        """Reserve a fresh placement index."""
        index = self._next_index
        self._next_index += 1
        return index

    def add_placement(
        self,
        anchors: Sequence[Anchor],
        ranges: Sequence[DimensionRange],
        average_cost: float,
        best_cost: float,
        best_dims: Sequence[Dims] = (),
        index: Optional[int] = None,
    ) -> StoredPlacement:
        """Store a new placement and register its intervals in every row."""
        if index is None:
            index = self.allocate_index()
        elif index in self._placements:
            raise ValueError(f"placement index {index} already stored")
        else:
            self._next_index = max(self._next_index, index + 1)
        placement = StoredPlacement(
            index=index,
            anchors=tuple(anchors),
            ranges=list(ranges),
            average_cost=average_cost,
            best_cost=best_cost,
            best_dims=tuple(best_dims),
        )
        self._placements[index] = placement
        self._insert_rows(placement)
        self._mutations += 1
        return placement

    def store(self, placement: StoredPlacement) -> StoredPlacement:
        """Store an already-built :class:`StoredPlacement` (index must be unused)."""
        if placement.index in self._placements:
            raise ValueError(f"placement index {placement.index} already stored")
        self._next_index = max(self._next_index, placement.index + 1)
        self._placements[placement.index] = placement
        self._insert_rows(placement)
        self._mutations += 1
        return placement

    def remove_placement(self, index: int) -> None:
        """Remove a stored placement and all its row entries."""
        placement = self.placement(index)
        self._remove_rows(placement)
        del self._placements[index]
        self._mutations += 1

    def update_ranges(self, index: int, ranges: Sequence[DimensionRange]) -> StoredPlacement:
        """Replace a stored placement's dimension ranges (used by overlap resolution)."""
        placement = self.placement(index)
        self._remove_rows(placement)
        placement.ranges = list(ranges)
        self._insert_rows(placement)
        return placement

    def _insert_rows(self, placement: StoredPlacement) -> None:
        for block_index, dim_range in enumerate(placement.ranges):
            self._width_rows[block_index].insert(dim_range.width, placement.index)
            self._height_rows[block_index].insert(dim_range.height, placement.index)

    def _remove_rows(self, placement: StoredPlacement) -> None:
        for block_index in range(len(placement.ranges)):
            self._width_rows[block_index].remove_index(placement.index)
            self._height_rows[block_index].remove_index(placement.index)

    # ------------------------------------------------------------------ #
    # Queries (the function M)
    # ------------------------------------------------------------------ #
    def query_candidates(self, dims: Sequence[Dims]) -> FrozenSet[int]:
        """Intersection of all row queries for the dimension vector (Equation 4)."""
        if len(dims) != self._circuit.num_blocks:
            raise ValueError(
                f"dimension vector must have {self._circuit.num_blocks} entries, got {len(dims)}"
            )
        result: Optional[Set[int]] = None
        for block_index, (w, h) in enumerate(dims):
            width_hits = self._width_rows[block_index].query(int(w))
            if not width_hits:
                return frozenset()
            height_hits = self._height_rows[block_index].query(int(h))
            if not height_hits:
                return frozenset()
            row_hits = width_hits & height_hits
            result = row_hits if result is None else (result & row_hits)
            if not result:
                return frozenset()
        return frozenset(result or set())

    def query(self, dims: Sequence[Dims]) -> Optional[StoredPlacement]:
        """The stored placement covering ``dims``, or ``None`` when uncovered.

        Equation 5 guarantees at most one candidate; if overlap resolution
        was bypassed (e.g. a hand-built structure) and several placements
        match, the lowest-average-cost one is returned.
        """
        candidates = self.query_candidates(dims)
        if not candidates:
            return None
        if len(candidates) > 1:
            LOGGER.debug(
                "query returned %d candidates; picking the lowest-cost one", len(candidates)
            )
        best_index = min(candidates, key=lambda idx: self._placements[idx].average_cost)
        return self._placements[best_index]

    def instantiate(self, dims: Sequence[Dims]):
        """Convenience wrapper around :class:`repro.core.instantiator.PlacementInstantiator`."""
        from repro.core.instantiator import PlacementInstantiator

        return PlacementInstantiator(self).instantiate(dims)

    # ------------------------------------------------------------------ #
    # Overlap and coverage helpers
    # ------------------------------------------------------------------ #
    def overlapping_placements(self, ranges: Sequence[DimensionRange]) -> List[StoredPlacement]:
        """Stored placements whose dimension boxes intersect ``ranges``.

        This is the set ``I`` collected by the Resolve Overlaps routine.
        """
        probe = StoredPlacement(
            index=-1,
            anchors=tuple((0, 0) for _ in ranges),
            ranges=list(ranges),
            average_cost=0.0,
            best_cost=0.0,
        )
        return [sp for sp in self if sp.box_overlaps(probe)]

    def marginal_coverage(self) -> float:
        """Mean covered fraction over all rows (the explorer's stopping metric)."""
        fractions: List[float] = []
        for block_index, block in enumerate(self._circuit.blocks):
            width_span = block.width_span
            height_span = block.height_span
            fractions.append(self._width_rows[block_index].covered_length() / width_span)
            fractions.append(self._height_rows[block_index].covered_length() / height_span)
        if not fractions:
            return 0.0
        return sum(fractions) / len(fractions)

    def volume_coverage(self, rng: random.Random, samples: int = 2000) -> float:
        """Monte-Carlo estimate of the covered fraction of the full dimension space."""
        if samples <= 0:
            raise ValueError("samples must be positive")
        if not self._placements:
            return 0.0
        hits = 0
        for _ in range(samples):
            dims = [
                (rng.randint(block.min_w, block.max_w), rng.randint(block.min_h, block.max_h))
                for block in self._circuit.blocks
            ]
            if self.query_candidates(dims):
                hits += 1
        return hits / samples

    def check_invariants(self) -> None:
        """Verify the row invariants and Equation 5 (pairwise disjoint boxes)."""
        for row in self._width_rows + self._height_rows:
            row.check_invariants()
        placements = self.placements()
        for i in range(len(placements)):
            for j in range(i + 1, len(placements)):
                assert not placements[i].box_overlaps(placements[j]), (
                    f"placements {placements[i].index} and {placements[j].index} "
                    "overlap in dimension space (Equation 5 violated)"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MultiPlacementStructure(circuit={self._circuit.name!r}, "
            f"placements={self.num_placements}, coverage={self.marginal_coverage():.2f})"
        )
