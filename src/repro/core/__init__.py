"""The paper's primary contribution: multi-placement structures.

* :mod:`repro.core.intervals` — the ascending, non-overlapping interval rows
  of Figure 3 (the ``W_i`` / ``H_i`` functions).
* :mod:`repro.core.structure` — the multi-placement structure itself
  (the function ``M`` of Equations 1, 4 and 5).
* :mod:`repro.core.expansion` — the Placement Expansion step.
* :mod:`repro.core.bdio` — the Block Dimensions-Interval Optimizer (inner SA).
* :mod:`repro.core.overlap_resolution` — the Resolve Overlaps routine.
* :mod:`repro.core.explorer` — the Placement Explorer (outer SA).
* :mod:`repro.core.generator` — one-shot generation entry point (Figure 1.a).
* :mod:`repro.core.instantiator` — fast placement instantiation (Figure 1.b).
* :mod:`repro.core.serialization` — persist generated structures as JSON.
"""

from repro.core.bdio import BDIOConfig, BDIOResult, BlockDimensionsIntervalOptimizer
from repro.core.coverage import marginal_coverage, volume_coverage_estimate
from repro.core.expansion import expand_placement
from repro.core.explorer import ExplorerConfig, ExplorerStats, PlacementExplorer
from repro.core.generator import GenerationResult, GeneratorConfig, MultiPlacementGenerator
from repro.core.instantiator import PlacementInstantiator
from repro.core.intervals import Interval, IntervalList
from repro.core.overlap_resolution import resolve_overlaps
from repro.core.placement_entry import DimensionRange, StoredPlacement
from repro.core.serialization import (
    load_structure,
    save_structure,
    structure_from_dict,
    structure_to_dict,
)
from repro.core.structure import MultiPlacementStructure

__all__ = [
    "BDIOConfig",
    "BDIOResult",
    "BlockDimensionsIntervalOptimizer",
    "marginal_coverage",
    "volume_coverage_estimate",
    "expand_placement",
    "ExplorerConfig",
    "ExplorerStats",
    "PlacementExplorer",
    "GenerationResult",
    "GeneratorConfig",
    "MultiPlacementGenerator",
    "PlacementInstantiator",
    "Interval",
    "IntervalList",
    "resolve_overlaps",
    "DimensionRange",
    "StoredPlacement",
    "load_structure",
    "save_structure",
    "structure_from_dict",
    "structure_to_dict",
    "MultiPlacementStructure",
]


def __getattr__(name: str):
    if name == "InstantiatedPlacement":
        # Deprecated: resolved lazily so the warning fires at the importer.
        from repro.core import instantiator

        return instantiator.InstantiatedPlacement
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
