"""One-shot generation of a multi-placement structure (Figure 1.a).

:class:`MultiPlacementGenerator` wires together the floorplan sizing, the
cost function, the BDIO, the placement explorer and the template fallback,
and returns a ready-to-query :class:`MultiPlacementStructure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.circuit.netlist import Circuit
from repro.circuit.validation import validate_circuit
from repro.core.bdio import BDIOConfig, BlockDimensionsIntervalOptimizer
from repro.core.explorer import ExplorerConfig, ExplorerStats, PlacementExplorer
from repro.core.structure import MultiPlacementStructure
from repro.cost.cost_function import CostWeights, PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.packing import shelf_pack
from repro.utils.rng import RandomLike, make_rng, spawn_rng
from repro.utils.timer import Timer


@dataclass(frozen=True)
class GeneratorConfig:
    """Configuration of the whole generation pipeline."""

    explorer: ExplorerConfig = field(default_factory=ExplorerConfig)
    bdio: BDIOConfig = field(default_factory=BDIOConfig)
    cost_weights: CostWeights = field(default_factory=CostWeights)
    wirelength_model: str = "hpwl"
    #: Canvas area relative to the total maximum block area.
    whitespace_factor: float = 1.6
    #: Canvas aspect ratio (width / height).
    aspect_ratio: float = 1.0
    seed: Optional[int] = None

    @classmethod
    def smoke(cls, seed: Optional[int] = 0) -> "GeneratorConfig":
        """A tiny budget for unit tests and continuous integration."""
        return cls(
            explorer=ExplorerConfig(max_iterations=8, coverage_target=0.8),
            bdio=BDIOConfig(max_iterations=60, moves_per_temperature=6),
            seed=seed,
        )

    @classmethod
    def default(cls, seed: Optional[int] = 0) -> "GeneratorConfig":
        """A moderate budget suitable for the example scripts."""
        return cls(
            explorer=ExplorerConfig(max_iterations=40, coverage_target=0.9),
            bdio=BDIOConfig(max_iterations=250),
            seed=seed,
        )

    @classmethod
    def paper(cls, seed: Optional[int] = 0) -> "GeneratorConfig":
        """A large budget approximating the paper's hours-long generation runs."""
        return cls(
            explorer=ExplorerConfig(max_iterations=200, coverage_target=0.95),
            bdio=BDIOConfig(max_iterations=1500),
            seed=seed,
        )

    def scaled(self, factor: float) -> "GeneratorConfig":
        """Copy with both SA budgets scaled by ``factor``."""
        return replace(self, explorer=self.explorer.scaled(factor), bdio=self.bdio.scaled(factor))


@dataclass
class GenerationResult:
    """A generated structure plus the statistics of its generation run."""

    structure: MultiPlacementStructure
    stats: ExplorerStats
    elapsed_seconds: float

    @property
    def num_placements(self) -> int:
        """Number of placements stored in the generated structure."""
        return self.structure.num_placements


class MultiPlacementGenerator:
    """Generate a multi-placement structure for one circuit topology."""

    def __init__(self, circuit: Circuit, config: GeneratorConfig = GeneratorConfig(),
                 seed: RandomLike = None) -> None:
        validate_circuit(circuit)
        self._circuit = circuit
        self._config = config
        self._rng = make_rng(seed if seed is not None else config.seed)
        self._bounds = FloorplanBounds.for_blocks(
            circuit.max_dims(),
            whitespace_factor=config.whitespace_factor,
            aspect_ratio=config.aspect_ratio,
        )
        self._cost_function = PlacementCostFunction(
            circuit,
            self._bounds,
            weights=config.cost_weights,
            wirelength_model=config.wirelength_model,
        )

    @property
    def circuit(self) -> Circuit:
        """The circuit a structure is generated for."""
        return self._circuit

    @property
    def bounds(self) -> FloorplanBounds:
        """The floorplan canvas used for generation."""
        return self._bounds

    @property
    def cost_function(self) -> PlacementCostFunction:
        """The cost function used by the BDIO."""
        return self._cost_function

    def generate(self) -> MultiPlacementStructure:
        """Generate and return the structure (discarding run statistics)."""
        return self.generate_with_stats().structure

    def generate_with_stats(self) -> GenerationResult:
        """Generate the structure and report the explorer statistics and wall time."""
        structure = MultiPlacementStructure(self._circuit, self._bounds)
        structure.set_fallback(self._template_fallback())
        bdio = BlockDimensionsIntervalOptimizer(
            self._cost_function,
            config=self._config.bdio,
            seed=spawn_rng(self._rng, salt=1),
        )
        explorer = PlacementExplorer(
            self._circuit,
            self._bounds,
            bdio,
            structure=structure,
            config=self._config.explorer,
            seed=spawn_rng(self._rng, salt=2),
        )
        with Timer() as timer:
            stats = explorer.run()
        return GenerationResult(structure=structure, stats=stats, elapsed_seconds=timer.elapsed)

    def _template_fallback(self):
        """Template anchors valid for every admissible dimension vector.

        Blocks are shelf-packed at their maximum dimensions in connectivity
        order (most-connected first) so the fallback is a reasonable, if
        fixed, placement — the "template-like placement for backup purposes"
        of Section 3.1.4.
        """
        graph = self._circuit.connectivity_graph()
        degree = {name: 0.0 for name in self._circuit.block_names()}
        for u, v, data in graph.edges(data=True):
            weight = data.get("weight", 1.0)
            degree[u] += weight
            degree[v] += weight
        order = sorted(
            range(self._circuit.num_blocks),
            key=lambda idx: -degree[self._circuit.blocks[idx].name],
        )
        return shelf_pack(
            self._circuit.max_dims(), max_width=self._bounds.width, order=order
        )
