"""Placement instantiation — the fast, online half of Figure 1.b.

During synthesis the sizing tool proposes device sizes, the module
generators turn them into block dimensions, and the instantiator asks the
multi-placement structure for the placement to use.

Three tiers are tried in order:

1. **structure** — the stored placement whose dimension box contains the
   query (the strict Equation 4/5 lookup).
2. **nearest** — when the query falls outside every stored box, the
   lowest-cost stored placement whose anchors still give a legal (in-bounds,
   overlap-free) layout for the queried dimensions.  This realises the
   paper's Figure 6 behaviour ("the lowest cost placement was selected,
   depending on the location of the proposed solution in the search
   space") for the uncovered part of the space.
3. **fallback** — the template placement registered on the structure
   (Section 3.1.4's "template-like placement for backup purposes").

Tier 2 can be disabled (``fallback_mode="template"``) to reproduce the
strictest reading of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.placement_entry import Dims, StoredPlacement
from repro.core.structure import MultiPlacementStructure
from repro.cost.cost_function import CostBreakdown, PlacementCostFunction
from repro.geometry.overlap import any_overlap
from repro.geometry.rect import Rect

#: Source tags of an instantiated placement.
SOURCE_STRUCTURE = "structure"
SOURCE_NEAREST = "nearest"
SOURCE_FALLBACK = "fallback"

#: Fallback behaviour when the query lies outside every stored box.
FALLBACK_BEST_STORED = "best_stored"
FALLBACK_TEMPLATE = "template"


@dataclass(frozen=True)
class InstantiatedPlacement:
    """A concrete floorplan produced for one dimension vector."""

    rects: Mapping[str, Rect]
    dims: Tuple[Dims, ...]
    source: str
    placement_index: Optional[int]
    cost: CostBreakdown

    @property
    def from_structure(self) -> bool:
        """True when a stored placement (strict containment hit) was used."""
        return self.source == SOURCE_STRUCTURE

    @property
    def used_stored_placement(self) -> bool:
        """True when any stored placement (strict or nearest) was used."""
        return self.source in (SOURCE_STRUCTURE, SOURCE_NEAREST)

    @property
    def total_cost(self) -> float:
        """Weighted total cost of the instantiated floorplan."""
        return self.cost.total

    def anchors(self) -> Tuple[Tuple[int, int], ...]:
        """Lower-left anchors in the order of ``rects`` iteration."""
        return tuple((rect.x, rect.y) for rect in self.rects.values())


class PlacementInstantiator:
    """Turn dimension vectors into concrete floorplans using a generated structure."""

    def __init__(
        self,
        structure: MultiPlacementStructure,
        cost_function: Optional[PlacementCostFunction] = None,
        fallback_mode: str = FALLBACK_BEST_STORED,
    ) -> None:
        if fallback_mode not in (FALLBACK_BEST_STORED, FALLBACK_TEMPLATE):
            raise ValueError(
                f"fallback_mode must be '{FALLBACK_BEST_STORED}' or '{FALLBACK_TEMPLATE}'"
            )
        self._structure = structure
        self._cost_function = cost_function or PlacementCostFunction(
            structure.circuit, structure.bounds
        )
        self._fallback_mode = fallback_mode
        #: (structure mutation count, placements in ascending best-cost order).
        self._sorted_stored: Optional[Tuple[int, Tuple[StoredPlacement, ...]]] = None

    @property
    def structure(self) -> MultiPlacementStructure:
        """The structure being queried."""
        return self._structure

    @property
    def fallback_mode(self) -> str:
        """The configured fallback behaviour."""
        return self._fallback_mode

    def instantiate(self, dims: Sequence[Dims]) -> InstantiatedPlacement:
        """Instantiate the best placement for ``dims`` (clamped into block bounds)."""
        circuit = self._structure.circuit
        clamped = tuple(
            block.clamp_dims(int(w), int(h))
            for block, (w, h) in zip(circuit.blocks, dims)
        )
        placement = self._structure.query(clamped)
        if placement is not None:
            rects = self._rects(placement.anchors, clamped)
            return InstantiatedPlacement(
                rects=rects,
                dims=clamped,
                source=SOURCE_STRUCTURE,
                placement_index=placement.index,
                cost=self._cost_function.evaluate(rects),
            )

        if self._fallback_mode == FALLBACK_BEST_STORED:
            nearest = self._best_feasible_stored(clamped)
            if nearest is not None:
                stored, rects, cost = nearest
                return InstantiatedPlacement(
                    rects=rects,
                    dims=clamped,
                    source=SOURCE_NEAREST,
                    placement_index=stored.index,
                    cost=cost,
                )

        anchors = self._fallback_anchors()
        rects = self._rects(anchors, clamped)
        return InstantiatedPlacement(
            rects=rects,
            dims=clamped,
            source=SOURCE_FALLBACK,
            placement_index=None,
            cost=self._cost_function.evaluate(rects),
        )

    def instantiate_from_params(
        self,
        params_per_block: Mapping[str, Mapping[str, float]],
        generators: Mapping[str, "object"],
    ) -> InstantiatedPlacement:
        """Instantiate from device sizing parameters via module generators.

        ``generators`` maps block names to :class:`~repro.modgen.base.ModuleGenerator`
        instances; ``params_per_block`` maps block names to their parameter
        values.  Blocks without an entry use their generator's defaults, and
        blocks without a generator keep their minimum dimensions.
        """
        circuit = self._structure.circuit
        dims = []
        for block in circuit.blocks:
            generator = generators.get(block.name)
            if generator is None:
                dims.append(block.min_dims)
                continue
            params = dict(params_per_block.get(block.name, {}))
            footprint = generator.footprint(**generator.resolve_params(params))
            dims.append(footprint.dims)
        return self.instantiate(dims)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _best_feasible_stored(
        self, dims: Tuple[Dims, ...]
    ) -> Optional[Tuple[StoredPlacement, Dict[str, Rect], CostBreakdown]]:
        """The lowest-cost stored placement that is legal at ``dims``, if any.

        Stored placements are tried in ascending ``best_cost`` order so the
        first legal hit is the answer; the cost function then runs exactly
        once, on the winner, instead of on every legal candidate.
        """
        for stored in self._stored_by_best_cost():
            rects = self._rects(stored.anchors, dims)
            if not self._is_legal(rects):
                continue
            return stored, rects, self._cost_function.evaluate(rects)
        return None

    def _stored_by_best_cost(self) -> Tuple[StoredPlacement, ...]:
        """Stored placements sorted ascending by best cost, cached per structure state."""
        version = self._structure.mutation_count
        if self._sorted_stored is None or self._sorted_stored[0] != version:
            ordered = tuple(
                sorted(self._structure, key=lambda sp: (sp.best_cost, sp.index))
            )
            self._sorted_stored = (version, ordered)
        return self._sorted_stored[1]

    def _is_legal(self, rects: Dict[str, Rect]) -> bool:
        bounds = self._structure.bounds
        rect_list = list(rects.values())
        if any(not bounds.contains(rect) for rect in rect_list):
            return False
        return not any_overlap(rect_list)

    def _fallback_anchors(self) -> Tuple[Tuple[int, int], ...]:
        anchors = self._structure.fallback_anchors
        if anchors is not None:
            return anchors
        # Last resort: pack the blocks at their maximum dimensions; valid for
        # any smaller dimensions because blocks grow from their anchor.
        from repro.geometry.packing import shelf_pack

        circuit = self._structure.circuit
        packed = shelf_pack(circuit.max_dims(), max_width=self._structure.bounds.width)
        return tuple(packed)

    def _rects(
        self, anchors: Sequence[Tuple[int, int]], dims: Sequence[Dims]
    ) -> Dict[str, Rect]:
        circuit = self._structure.circuit
        return {
            block.name: Rect(x, y, w, h)
            for block, (x, y), (w, h) in zip(circuit.blocks, anchors, dims)
        }
