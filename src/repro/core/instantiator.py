"""Placement instantiation — the fast, online half of Figure 1.b.

During synthesis the sizing tool proposes device sizes, the module
generators turn them into block dimensions, and the instantiator asks the
multi-placement structure for the placement to use.

Three tiers are tried in order:

1. **structure** — the stored placement whose dimension box contains the
   query (the strict Equation 4/5 lookup).
2. **nearest** — when the query falls outside every stored box, the
   lowest-cost stored placement whose anchors still give a legal (in-bounds,
   overlap-free) layout for the queried dimensions.  This realises the
   paper's Figure 6 behaviour ("the lowest cost placement was selected,
   depending on the location of the proposed solution in the search
   space") for the uncovered part of the space.
3. **fallback** — the template placement registered on the structure
   (Section 3.1.4's "template-like placement for backup purposes").

Tier 2 can be disabled (``fallback_mode="template"``) to reproduce the
strictest reading of the paper.

:class:`PlacementInstantiator` is the ``"mps"`` engine of the unified
placement API: it implements :class:`repro.api.Placer` (``place`` /
``place_batch`` / ``stats``), returns the unified
:class:`~repro.api.Placement` and keeps per-tier hit counters.
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.placement import (
    Placement,
    SOURCE_FALLBACK,
    SOURCE_NEAREST,
    SOURCE_STRUCTURE,
)
from repro.api.placer import Placer
from repro.core.placement_entry import Dims, StoredPlacement
from repro.core.structure import MultiPlacementStructure
from repro.cost.cost_function import CostBreakdown, PlacementCostFunction
from repro.geometry.overlap import any_overlap
from repro.geometry.rect import Rect
from repro.utils.timer import Timer

#: Fallback behaviour when the query lies outside every stored box.
FALLBACK_BEST_STORED = "best_stored"
FALLBACK_TEMPLATE = "template"


class PlacementInstantiator(Placer):
    """Turn dimension vectors into concrete floorplans using a generated structure."""

    name = "mps"

    def __init__(
        self,
        structure: MultiPlacementStructure,
        cost_function: Optional[PlacementCostFunction] = None,
        fallback_mode: str = FALLBACK_BEST_STORED,
    ) -> None:
        if fallback_mode not in (FALLBACK_BEST_STORED, FALLBACK_TEMPLATE):
            raise ValueError(
                f"fallback_mode must be '{FALLBACK_BEST_STORED}' or '{FALLBACK_TEMPLATE}'"
            )
        self._structure = structure
        self._cost_function = cost_function or PlacementCostFunction(
            structure.circuit, structure.bounds
        )
        self._fallback_mode = fallback_mode
        #: (structure mutation count, placements in ascending best-cost order).
        self._sorted_stored: Optional[Tuple[int, Tuple[StoredPlacement, ...]]] = None
        #: (structure mutation count, stacked stored anchors (S, B, 2)).
        self._stored_anchor_stack: Optional[Tuple[int, object]] = None
        self._stats_lock = threading.Lock()
        self._tier_hits: Dict[str, int] = {
            SOURCE_STRUCTURE: 0,
            SOURCE_NEAREST: 0,
            SOURCE_FALLBACK: 0,
        }
        self._queries = 0
        self._total_seconds = 0.0
        self._vector_counters: Dict[str, int] = {
            "batch_evals": 0,
            "batch_candidates": 0,
            "vector_fallbacks": 0,
        }

    @property
    def structure(self) -> MultiPlacementStructure:
        """The structure being queried."""
        return self._structure

    @property
    def fallback_mode(self) -> str:
        """The configured fallback behaviour."""
        return self._fallback_mode

    def instantiate(self, dims: Sequence[Dims]) -> Placement:
        """Instantiate the best placement for ``dims`` (clamped into block bounds)."""
        with Timer() as timer:
            circuit = self._structure.circuit
            clamped = tuple(
                block.clamp_dims(int(w), int(h))
                for block, (w, h) in zip(circuit.blocks, dims)
            )
            rects, source, index, cost = self._lookup(clamped)
        with self._stats_lock:
            self._queries += 1
            self._tier_hits[source] += 1
            self._total_seconds += timer.elapsed
        return Placement(
            rects=rects,
            cost=cost,
            placer=self.name,
            source=source,
            elapsed_seconds=timer.elapsed,
            metadata={"dims": clamped, "placement_index": index},
        )

    # ------------------------------------------------------------------ #
    # Unified placement API
    # ------------------------------------------------------------------ #
    def place(self, dims: Sequence[Dims]) -> Placement:
        """Alias of :meth:`instantiate` (the :class:`repro.api.Placer` verb)."""
        return self.instantiate(dims)

    def place_batch(self, queries: Sequence[Sequence[Dims]]) -> List[Placement]:
        """Batch instantiation with duplicate elimination.

        Delegates to :func:`repro.service.batch.instantiate_batch`, so any
        caller going through the unified API gets deduplication (and, when
        numpy is available, one vectorized cost sweep over the unique
        queries) for free.
        """
        from repro.service.batch import instantiate_batch

        return list(instantiate_batch(self, queries).results)

    def instantiate_many(self, dims_batch: Sequence[Sequence[Dims]]) -> List[Placement]:
        """Instantiate a batch of queries, scoring every lookup in one sweep.

        Tier resolution (structure / nearest / fallback) runs per query
        exactly as :meth:`instantiate` would — tier-hit statistics are
        identical — but the winning layouts of the whole batch are then
        cost-evaluated in a single :class:`~repro.eval.BatchEvaluator`
        sweep instead of one scalar evaluation per query.  Costs are
        bitwise identical either way.  Falls back to the scalar loop when
        vectorization is unavailable (see
        :func:`repro.eval.batch.batch_evaluator_for`).
        """
        evaluator = self._vector()
        if evaluator is None:
            from repro.eval.batch import record_fallback

            record_fallback()
            with self._stats_lock:
                self._vector_counters["vector_fallbacks"] += 1
            return [self.instantiate(dims) for dims in dims_batch]

        from repro.eval.batch import record_batch

        with Timer() as timer:
            circuit = self._structure.circuit
            resolved: List[Tuple[Tuple[Dims, ...], Tuple[Tuple[int, int], ...], str, Optional[int]]] = []
            for dims in dims_batch:
                clamped = tuple(
                    block.clamp_dims(int(w), int(h))
                    for block, (w, h) in zip(circuit.blocks, dims)
                )
                anchors, source, index = self._resolve_anchors(clamped)
                resolved.append((clamped, anchors, source, index))
            anchors_batch = [anchors for _, anchors, _, _ in resolved]
            dims_stack = [clamped for clamped, _, _, _ in resolved]
            breakdowns = evaluator.breakdowns(
                evaluator.stack(anchors_batch, dims_stack)
            )
        count = len(resolved)
        record_batch(count)
        per_query = timer.elapsed / count if count else 0.0
        with self._stats_lock:
            self._queries += count
            for _, _, source, _ in resolved:
                self._tier_hits[source] += 1
            self._total_seconds += timer.elapsed
            self._vector_counters["batch_evals"] += 1
            self._vector_counters["batch_candidates"] += count
        return [
            Placement(
                rects=self._rects(anchors, clamped),
                cost=cost,
                placer=self.name,
                source=source,
                elapsed_seconds=per_query,
                metadata={"dims": clamped, "placement_index": index},
            )
            for (clamped, anchors, source, index), cost in zip(resolved, breakdowns)
        ]

    def vector_ready(self) -> bool:
        """True when batch lookups will score on the vectorized path."""
        return self._vector() is not None

    def vector_stats(self) -> Dict[str, int]:
        """Snapshot of the vectorized batch-scoring counters."""
        with self._stats_lock:
            return dict(self._vector_counters)

    def stats(self) -> Dict[str, float]:
        """Per-tier hit counters and timing of every query served."""
        with self._stats_lock:
            return {
                "queries": self._queries,
                "structure_hits": self._tier_hits[SOURCE_STRUCTURE],
                "nearest_hits": self._tier_hits[SOURCE_NEAREST],
                "fallback_hits": self._tier_hits[SOURCE_FALLBACK],
                "total_seconds": self._total_seconds,
                **self._vector_counters,
            }

    def instantiate_from_params(
        self,
        params_per_block: Mapping[str, Mapping[str, float]],
        generators: Mapping[str, "object"],
    ) -> Placement:
        """Instantiate from device sizing parameters via module generators.

        ``generators`` maps block names to :class:`~repro.modgen.base.ModuleGenerator`
        instances; ``params_per_block`` maps block names to their parameter
        values.  Blocks without an entry use their generator's defaults, and
        blocks without a generator keep their minimum dimensions.
        """
        circuit = self._structure.circuit
        dims = []
        for block in circuit.blocks:
            generator = generators.get(block.name)
            if generator is None:
                dims.append(block.min_dims)
                continue
            params = dict(params_per_block.get(block.name, {}))
            footprint = generator.footprint(**generator.resolve_params(params))
            dims.append(footprint.dims)
        return self.instantiate(dims)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _lookup(
        self, clamped: Tuple[Dims, ...]
    ) -> Tuple[Dict[str, Rect], str, Optional[int], CostBreakdown]:
        """``(rects, source, placement_index, cost)`` for one clamped query."""
        placement = self._structure.query(clamped)
        if placement is not None:
            rects = self._rects(placement.anchors, clamped)
            return rects, SOURCE_STRUCTURE, placement.index, self._cost_function.evaluate(rects)

        if self._fallback_mode == FALLBACK_BEST_STORED:
            nearest = self._best_feasible_stored(clamped)
            if nearest is not None:
                stored, rects, cost = nearest
                return rects, SOURCE_NEAREST, stored.index, cost

        anchors = self._fallback_anchors()
        rects = self._rects(anchors, clamped)
        return rects, SOURCE_FALLBACK, None, self._cost_function.evaluate(rects)

    def _resolve_anchors(
        self, clamped: Tuple[Dims, ...]
    ) -> Tuple[Tuple[Tuple[int, int], ...], str, Optional[int]]:
        """``(anchors, source, placement_index)`` — tier resolution without costing.

        Runs the exact tier order of :meth:`_lookup` but leaves cost
        evaluation to the caller, so :meth:`instantiate_many` can score a
        whole batch of resolved layouts in one sweep.
        """
        placement = self._structure.query(clamped)
        if placement is not None:
            return placement.anchors, SOURCE_STRUCTURE, placement.index
        if self._fallback_mode == FALLBACK_BEST_STORED:
            stored = self._best_feasible_entry(clamped)
            if stored is not None:
                return stored.anchors, SOURCE_NEAREST, stored.index
        return self._fallback_anchors(), SOURCE_FALLBACK, None

    def _best_feasible_stored(
        self, dims: Tuple[Dims, ...]
    ) -> Optional[Tuple[StoredPlacement, Dict[str, Rect], CostBreakdown]]:
        """The lowest-cost stored placement that is legal at ``dims``, if any.

        Stored placements are tried in ascending ``best_cost`` order so the
        first legal hit is the answer; the cost function then runs exactly
        once, on the winner, instead of on every legal candidate.
        """
        stored = self._best_feasible_entry(dims)
        if stored is None:
            return None
        rects = self._rects(stored.anchors, dims)
        return stored, rects, self._cost_function.evaluate(rects)

    def _best_feasible_entry(self, dims: Tuple[Dims, ...]) -> Optional[StoredPlacement]:
        """First stored placement (ascending best-cost order) legal at ``dims``.

        With numpy available the legality of *all* stored candidates is
        checked in one :meth:`~repro.eval.BatchEvaluator.feasible_mask`
        sweep over the cached stored-anchor tensor, short-circuiting on the
        first feasible index; the mask reproduces the scalar
        ``contains``/``intersects`` checks exactly, so the winner — and
        therefore the tier-hit statistics — are identical to the scalar
        scan.
        """
        ordered = self._stored_by_best_cost()
        if not ordered:
            return None
        evaluator = self._vector()
        if evaluator is not None and len(ordered) > 1:
            from repro.eval.batch import record_batch

            mask = evaluator.feasible_mask(
                evaluator.stack(self._stored_anchor_array(ordered), dims)
            )
            record_batch(len(ordered))
            with self._stats_lock:
                self._vector_counters["batch_evals"] += 1
                self._vector_counters["batch_candidates"] += len(ordered)
            hits = mask.nonzero()[0]
            return ordered[int(hits[0])] if hits.size else None
        for stored in ordered:
            if self._is_legal(self._rects(stored.anchors, dims)):
                return stored
        return None

    def _vector(self):
        """The batch evaluator for this instantiator, or ``None`` (scalar path).

        Beyond :func:`~repro.eval.batch.batch_evaluator_for`'s own gating,
        the legality sweep additionally requires the cost function's bounds
        to be the structure's canvas — ``_is_legal`` checks against the
        structure, so a custom cost function scoring a different canvas
        must keep the scalar scan.
        """
        from repro.eval.batch import batch_evaluator_for

        evaluator = batch_evaluator_for(self._cost_function)
        if evaluator is None or self._cost_function.bounds != self._structure.bounds:
            return None
        return evaluator

    def _stored_anchor_array(self, ordered: Tuple[StoredPlacement, ...]):
        """Stacked ``(n_stored, n_blocks, 2)`` anchors, cached per structure state."""
        version = self._structure.mutation_count
        cached = self._stored_anchor_stack
        if cached is None or cached[0] != version:
            from repro.eval.vector import require_numpy

            np = require_numpy()
            cached = (version, np.asarray([sp.anchors for sp in ordered], dtype=np.int64))
            self._stored_anchor_stack = cached
        return cached[1]

    def _stored_by_best_cost(self) -> Tuple[StoredPlacement, ...]:
        """Stored placements sorted ascending by best cost, cached per structure state."""
        version = self._structure.mutation_count
        if self._sorted_stored is None or self._sorted_stored[0] != version:
            ordered = tuple(
                sorted(self._structure, key=lambda sp: (sp.best_cost, sp.index))
            )
            self._sorted_stored = (version, ordered)
        return self._sorted_stored[1]

    def _is_legal(self, rects: Dict[str, Rect]) -> bool:
        bounds = self._structure.bounds
        rect_list = list(rects.values())
        if any(not bounds.contains(rect) for rect in rect_list):
            return False
        return not any_overlap(rect_list)

    def _fallback_anchors(self) -> Tuple[Tuple[int, int], ...]:
        anchors = self._structure.fallback_anchors
        if anchors is not None:
            return anchors
        # Last resort: pack the blocks at their maximum dimensions; valid for
        # any smaller dimensions because blocks grow from their anchor.
        from repro.geometry.packing import shelf_pack

        circuit = self._structure.circuit
        packed = shelf_pack(circuit.max_dims(), max_width=self._structure.bounds.width)
        return tuple(packed)

    def _rects(
        self, anchors: Sequence[Tuple[int, int]], dims: Sequence[Dims]
    ) -> Dict[str, Rect]:
        circuit = self._structure.circuit
        return {
            block.name: Rect(x, y, w, h)
            for block, (x, y), (w, h) in zip(circuit.blocks, anchors, dims)
        }


def __getattr__(name: str):
    if name == "InstantiatedPlacement":
        warnings.warn(
            "InstantiatedPlacement is deprecated; every engine now returns the "
            "unified repro.api.Placement",
            DeprecationWarning,
            stacklevel=2,
        )
        return Placement
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
