"""Coverage metrics for the explorer's stopping criterion (Section 3.1.4).

The paper tracks "a value representing the percentage coverage of the
widths and heights ranges space" and stops once a user-set target is
reached, acknowledging that 100 % "can never be reached".  Two metrics are
provided:

* *marginal* coverage — mean covered fraction per interval row.  Cheap,
  monotone under placement storage, and the default stopping metric.
* *volume* coverage — Monte-Carlo estimate of the covered fraction of the
  full 2N-dimensional box.  Closest to the literal reading, but minuscule
  for realistic structures because each placement covers a tiny box.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.structure import MultiPlacementStructure
from repro.utils.rng import RandomLike, make_rng


def marginal_coverage(structure: MultiPlacementStructure) -> float:
    """Mean covered fraction over all width/height rows, in [0, 1]."""
    return structure.marginal_coverage()


def volume_coverage_estimate(
    structure: MultiPlacementStructure,
    samples: int = 2000,
    seed: RandomLike = None,
) -> float:
    """Monte-Carlo estimate of the covered fraction of the dimension space."""
    rng = make_rng(seed)
    return structure.volume_coverage(rng, samples)


def coverage(
    structure: MultiPlacementStructure,
    metric: str = "marginal",
    samples: int = 2000,
    rng: Optional[random.Random] = None,
) -> float:
    """Dispatch on the configured coverage metric (``"marginal"`` or ``"volume"``)."""
    if metric == "marginal":
        return marginal_coverage(structure)
    if metric == "volume":
        return structure.volume_coverage(rng or random.Random(0), samples)
    raise ValueError(f"unknown coverage metric {metric!r}; use 'marginal' or 'volume'")
