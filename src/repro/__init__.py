"""Reproduction of "Multi-Placement Structures for Fast and Optimized Placement
in Analog Circuit Synthesis" (Badaoui & Vemuri, DATE 2005).

The package is organised as a set of substrates (geometry, circuit, module
generators, cost models, annealing) underneath the paper's primary
contribution: the multi-placement structure (:mod:`repro.core`) and its
generation algorithm, plus the baselines and the layout-inclusive synthesis
loop the paper motivates.

Typical usage::

    from repro.benchcircuits import get_benchmark
    from repro.core import MultiPlacementGenerator, GeneratorConfig

    circuit = get_benchmark("two_stage_opamp")
    generator = MultiPlacementGenerator(circuit, GeneratorConfig.smoke())
    structure = generator.generate()
    result = structure.instantiate([(10, 12), (8, 8), (14, 10), (9, 9), (11, 7)])
    print(result.source, result.cost)
"""

from repro.version import __version__

__all__ = ["__version__"]
