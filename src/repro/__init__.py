"""Reproduction of "Multi-Placement Structures for Fast and Optimized Placement
in Analog Circuit Synthesis" (Badaoui & Vemuri, DATE 2005).

The package is organised as a set of substrates (geometry, circuit, module
generators, cost models, annealing) underneath the paper's primary
contribution: the multi-placement structure (:mod:`repro.core`) and its
generation algorithm, plus the baselines, the layout-inclusive synthesis
loop the paper motivates, and a service layer that turns the offline/online
split into long-lived infrastructure.

Module map
----------

* :mod:`repro.api` — the single placement API: the unified frozen
  :class:`~repro.api.Placement` result, the batch-first
  :class:`~repro.api.Placer` protocol, and the declarative backend
  registry (:func:`~repro.api.make_placer`, :func:`~repro.api.available_placers`).
* :mod:`repro.geometry` — rectangles, floorplan bounds, packing, overlap.
* :mod:`repro.circuit` — blocks, nets, pins, symmetry groups, netlists.
* :mod:`repro.modgen` — module generators (sizes -> block footprints).
* :mod:`repro.cost` — wirelength/area cost functions and penalties.
* :mod:`repro.eval` — incremental evaluation: the mutable
  :class:`~repro.eval.LayoutState` and the exact delta-cost
  :class:`~repro.eval.IncrementalEvaluator`
  (``cost_function.bind(anchors, dims)``) behind every optimizer's
  inner loop.
* :mod:`repro.annealing` — generic simulated-annealing machinery (the
  pure ``run()`` path and the delta ``run_incremental()`` path).
* :mod:`repro.core` — the multi-placement structure: generation (Figure
  1.a), instantiation (Figure 1.b) and JSON serialization.
* :mod:`repro.baselines` — template, random, genetic and annealing placers.
* :mod:`repro.synthesis` — the layout-inclusive sizing loop (takes any
  placer, or a ``make_placer`` spec dict).
* :mod:`repro.route` — global routing: the uniform
  :class:`~repro.route.RoutingGrid`, the congestion-negotiated,
  symmetry-aware :class:`~repro.route.GlobalRouter`, batched
  :func:`~repro.route.route_batch`, and the frozen
  :class:`~repro.route.RoutedLayout` feeding parasitics, cost and viz.
* :mod:`repro.service` — placement-as-a-service: topology fingerprints,
  the on-disk structure registry, LRU/memo caching, batched instantiation,
  route caching, and the :class:`~repro.service.engine.PlacementService`
  facade with per-tier statistics.
* :mod:`repro.parallel` — process-pool execution: the
  :class:`~repro.parallel.pool.WorkerPool` running picklable job specs,
  the fingerprint-sharded
  :class:`~repro.parallel.sharding.ShardedStructureRegistry` with
  advisory-lock exactly-once generation, and the ``"parallel"`` engine
  (:class:`~repro.parallel.placer.ParallelPlacer`) fanning any inner
  spec's batches across workers.
* :mod:`repro.obs` — observability: the process-local
  :class:`~repro.obs.MetricsRegistry` (counters, gauges, bounded
  histograms, Prometheus export), hierarchical :func:`~repro.obs.span`
  tracing that re-parents worker-pool spans into the coordinator's
  trace, Chrome-trace/JSONL exporters and run manifests. Off by
  default; enabling it never perturbs an RNG.
* :mod:`repro.benchcircuits` / :mod:`repro.experiments` — the paper's
  benchmark circuits and table/figure reproductions.
* :mod:`repro.viz` / :mod:`repro.utils` — rendering and shared utilities.

Typical usage — one API, many engines::

    from repro.api import make_placer
    from repro.benchcircuits import get_benchmark

    circuit = get_benchmark("two_stage_opamp")
    placer = make_placer({"kind": "mps", "scale": "smoke"}, circuit)
    placement = placer.place([(10, 12), (8, 8), (14, 10), (9, 9), (11, 7)])
    print(placement.source, placement.total_cost)

Or, served through the long-lived placement service (same API, plus an
on-disk registry, caching and per-tier statistics)::

    placer = make_placer({"kind": "service", "registry": "structures/"}, circuit)
    placements = placer.place_batch(dim_vectors)   # deduplicated fan-out
    print(placer.stats())
"""

from repro.api import Placement, Placer, available_placers, make_placer
from repro.parallel import ParallelPlacer, ShardedStructureRegistry, WorkerPool, open_registry
from repro.service import PlacementService, StructureRegistry
from repro.version import __version__

__all__ = [
    "__version__",
    "Placement",
    "Placer",
    "available_placers",
    "make_placer",
    "ParallelPlacer",
    "PlacementService",
    "ShardedStructureRegistry",
    "StructureRegistry",
    "WorkerPool",
    "open_registry",
]
