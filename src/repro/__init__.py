"""Reproduction of "Multi-Placement Structures for Fast and Optimized Placement
in Analog Circuit Synthesis" (Badaoui & Vemuri, DATE 2005).

The package is organised as a set of substrates (geometry, circuit, module
generators, cost models, annealing) underneath the paper's primary
contribution: the multi-placement structure (:mod:`repro.core`) and its
generation algorithm, plus the baselines, the layout-inclusive synthesis
loop the paper motivates, and a service layer that turns the offline/online
split into long-lived infrastructure.

Module map
----------

* :mod:`repro.geometry` — rectangles, floorplan bounds, packing, overlap.
* :mod:`repro.circuit` — blocks, nets, pins, symmetry groups, netlists.
* :mod:`repro.modgen` — module generators (sizes -> block footprints).
* :mod:`repro.cost` — wirelength/area cost functions and penalties.
* :mod:`repro.annealing` — generic simulated-annealing machinery.
* :mod:`repro.core` — the multi-placement structure: generation (Figure
  1.a), instantiation (Figure 1.b) and JSON serialization.
* :mod:`repro.baselines` — template, random, genetic and annealing placers.
* :mod:`repro.synthesis` — the layout-inclusive sizing loop and its
  placement backends.
* :mod:`repro.service` — placement-as-a-service: topology fingerprints,
  the on-disk structure registry, LRU/memo caching, batched instantiation
  and the :class:`~repro.service.engine.PlacementService` facade with
  per-tier statistics.
* :mod:`repro.benchcircuits` / :mod:`repro.experiments` — the paper's
  benchmark circuits and table/figure reproductions.
* :mod:`repro.viz` / :mod:`repro.utils` — rendering and shared utilities.

Typical usage::

    from repro.benchcircuits import get_benchmark
    from repro.core import MultiPlacementGenerator, GeneratorConfig

    circuit = get_benchmark("two_stage_opamp")
    generator = MultiPlacementGenerator(circuit, GeneratorConfig.smoke())
    structure = generator.generate()
    result = structure.instantiate([(10, 12), (8, 8), (14, 10), (9, 9), (11, 7)])
    print(result.source, result.cost)

Or, served through the placement service::

    from repro.service import PlacementService, StructureRegistry

    service = PlacementService(StructureRegistry("structures/"))
    batch = service.instantiate_batch(circuit, dim_vectors)
    print(service.stats.tier_counts)
"""

from repro.service import PlacementService, StructureRegistry
from repro.version import __version__

__all__ = ["__version__", "PlacementService", "StructureRegistry"]
