"""The customizable placement cost function of Section 3.2.2.

The cost calculator "calculates a cost for the proposed circuit based on
the wire-lengths and area of that proposed design.  This cost function is
customizable."  :class:`PlacementCostFunction` therefore exposes weights for
every component; the defaults reproduce the paper's wirelength + area
objective, while baseline placers additionally enable overlap and
out-of-bounds penalties because their intermediate states may be illegal.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.cost.area import area_cost, aspect_ratio_penalty
from repro.cost.penalties import (
    out_of_bounds_penalty,
    overlap_penalty,
    routability_penalty,
    symmetry_penalty,
)
from repro.cost.wirelength import total_wirelength
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (eval imports cost)
    from repro.eval.incremental import IncrementalEvaluator
    from repro.eval.vector import BatchEvaluator


@dataclass(frozen=True)
class CostWeights:
    """Relative weights of the placement cost components."""

    wirelength: float = 1.0
    area: float = 0.05
    overlap: float = 0.0
    out_of_bounds: float = 0.0
    symmetry: float = 0.0
    aspect_ratio: float = 0.0
    #: Weight of the RUDY congestion estimate (needs floorplan bounds).
    routability: float = 0.0

    def with_legalization(self, overlap: float = 50.0, out_of_bounds: float = 50.0) -> "CostWeights":
        """Weights with legalization penalties enabled (for iterative placers).

        Built with :func:`dataclasses.replace` so every other field — present
        or added later — carries over untouched.
        """
        return replace(self, overlap=overlap, out_of_bounds=out_of_bounds)


@dataclass(frozen=True)
class CostBreakdown:
    """Weighted total cost along with the unweighted components."""

    total: float
    wirelength: float
    area: float
    overlap: float = 0.0
    out_of_bounds: float = 0.0
    symmetry: float = 0.0
    aspect_ratio: float = 0.0
    routability: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Component values as a plain dictionary."""
        return {
            "total": self.total,
            "wirelength": self.wirelength,
            "area": self.area,
            "overlap": self.overlap,
            "out_of_bounds": self.out_of_bounds,
            "symmetry": self.symmetry,
            "aspect_ratio": self.aspect_ratio,
            "routability": self.routability,
        }

    @property
    def is_legal(self) -> bool:
        """True when the layout has no overlap or out-of-bounds violation."""
        return self.overlap == 0.0 and self.out_of_bounds == 0.0


class PlacementCostFunction:
    """Evaluate the weighted cost of a placed layout.

    Parameters
    ----------
    circuit:
        The circuit whose nets and symmetry groups define the objective.
    bounds:
        Floorplan canvas; needed for external-net I/O positions and the
        out-of-bounds penalty.
    weights:
        Component weights (defaults reproduce the paper's wirelength+area).
    wirelength_model:
        ``"hpwl"`` (default), ``"star"`` or ``"mst"``.
    """

    def __init__(
        self,
        circuit: Circuit,
        bounds: Optional[FloorplanBounds] = None,
        weights: CostWeights = CostWeights(),
        wirelength_model: str = "hpwl",
    ) -> None:
        self._circuit = circuit
        self._bounds = bounds
        self._weights = weights
        self._model = wirelength_model

    @property
    def circuit(self) -> Circuit:
        """The circuit being scored."""
        return self._circuit

    @property
    def bounds(self) -> Optional[FloorplanBounds]:
        """The floorplan canvas, if any."""
        return self._bounds

    @property
    def weights(self) -> CostWeights:
        """The component weights in use."""
        return self._weights

    @property
    def wirelength_model(self) -> str:
        """The wirelength estimator in use (``hpwl``/``star``/``mst``)."""
        return self._model

    @property
    def supports_incremental(self) -> bool:
        """True when :meth:`bind` yields deltas matching this evaluation.

        Subclasses that override :meth:`evaluate`, :meth:`evaluate_layout`
        or :meth:`rects_from` change the evaluation in ways the generic
        :class:`~repro.eval.IncrementalEvaluator` knows nothing about;
        optimizers check this flag and fall back to the from-scratch path
        for them (see the README migration note).
        """
        cls = type(self)
        return (
            cls.evaluate is PlacementCostFunction.evaluate
            and cls.evaluate_layout is PlacementCostFunction.evaluate_layout
            and cls.rects_from is PlacementCostFunction.rects_from
        )

    @property
    def supports_vectorized(self) -> bool:
        """True when :meth:`batch` scores stacked layouts matching this evaluation.

        Mirrors :attr:`supports_incremental`: subclasses that override
        :meth:`evaluate`, :meth:`evaluate_layout` or :meth:`rects_from`
        change the evaluation in ways the generic array kernels know
        nothing about.  :meth:`compose` is additionally checked because
        the :class:`~repro.eval.vector.BatchEvaluator` re-expresses its
        weighting arithmetic elementwise rather than calling it.  Batch
        consumers check this flag (via
        :func:`repro.eval.batch.batch_evaluator_for`) and fall back to
        the scalar loop for overriding subclasses.
        """
        cls = type(self)
        return (
            cls.evaluate is PlacementCostFunction.evaluate
            and cls.evaluate_layout is PlacementCostFunction.evaluate_layout
            and cls.rects_from is PlacementCostFunction.rects_from
            and cls.compose is PlacementCostFunction.compose
        )

    def batch(self) -> "BatchEvaluator":
        """Build a :class:`~repro.eval.vector.BatchEvaluator` over this cost.

        The evaluator scores ``(n_candidates, n_blocks, 4)`` rect tensors
        with this cost function's weights, bounds and wirelength model,
        bitwise identical to :meth:`evaluate_layout` per candidate — the
        weights stay the single source of truth, exactly as with
        :meth:`bind`.  Raises for unsupported subclasses and models (see
        :attr:`supports_vectorized`); callers that want automatic scalar
        fallback should go through
        :func:`repro.eval.batch.batch_evaluator_for` instead.
        """
        from repro.eval.vector import BatchEvaluator

        return BatchEvaluator(self)

    def bind(
        self,
        anchors: Sequence[Tuple[int, int]],
        dims: Sequence[Tuple[int, int]],
        resync_interval: Optional[int] = None,
    ) -> "IncrementalEvaluator":
        """Bind an :class:`~repro.eval.IncrementalEvaluator` to a layout.

        The evaluator starts at ``(anchors, dims)`` (index order, as in
        :meth:`evaluate_layout`) and prices single-module moves and
        dimension changes by delta, using this cost function's weights,
        bounds and wirelength model throughout — the weights stay the
        single source of truth.
        """
        from repro.eval.incremental import IncrementalEvaluator

        kwargs = {} if resync_interval is None else {"resync_interval": resync_interval}
        return IncrementalEvaluator(self, anchors, dims, **kwargs)

    @staticmethod
    def compose(
        weights: CostWeights,
        wirelength: float,
        area: float,
        overlap: float = 0.0,
        out_of_bounds: float = 0.0,
        symmetry: float = 0.0,
        aspect_ratio: float = 0.0,
        routability: float = 0.0,
    ) -> CostBreakdown:
        """Weigh components into a :class:`CostBreakdown`.

        Shared by :meth:`evaluate` and the incremental evaluator so both
        paths apply the weights with identical arithmetic (and therefore
        agree bitwise on the total).
        """
        total = (
            weights.wirelength * wirelength
            + weights.area * area
            + weights.overlap * overlap
            + weights.out_of_bounds * out_of_bounds
            + weights.symmetry * symmetry
            + weights.aspect_ratio * aspect_ratio
            + weights.routability * routability
        )
        return CostBreakdown(
            total=total,
            wirelength=wirelength,
            area=area,
            overlap=overlap,
            out_of_bounds=out_of_bounds,
            symmetry=symmetry,
            aspect_ratio=aspect_ratio,
            routability=routability,
        )

    def evaluate(self, rects: Dict[str, Rect]) -> CostBreakdown:
        """Score a layout given as a mapping of block name to placed rectangle."""
        weights = self._weights
        wirelength = total_wirelength(self._circuit, rects, self._bounds, self._model)
        area = area_cost(rects)
        overlap = overlap_penalty(rects) if weights.overlap else 0.0
        oob = 0.0
        if weights.out_of_bounds and self._bounds is not None:
            oob = out_of_bounds_penalty(rects, self._bounds)
        symmetry = 0.0
        if weights.symmetry and self._circuit.symmetry_groups:
            symmetry = symmetry_penalty(rects, self._circuit.symmetry_groups)
        aspect = aspect_ratio_penalty(rects) if weights.aspect_ratio else 0.0
        routability = 0.0
        if weights.routability and self._bounds is not None:
            routability = routability_penalty(rects, self._circuit, self._bounds)
        return self.compose(
            weights,
            wirelength=wirelength,
            area=area,
            overlap=overlap,
            out_of_bounds=oob,
            symmetry=symmetry,
            aspect_ratio=aspect,
            routability=routability,
        )

    def evaluate_layout(
        self,
        anchors: Sequence[Tuple[int, int]],
        dims: Sequence[Tuple[int, int]],
    ) -> CostBreakdown:
        """Score a layout given as parallel anchor and dimension sequences.

        The ordering follows the circuit's block index order, which is how
        the placement explorer and BDIO represent layouts internally.
        """
        rects = self.rects_from(anchors, dims)
        return self.evaluate(rects)

    def rects_from(
        self,
        anchors: Sequence[Tuple[int, int]],
        dims: Sequence[Tuple[int, int]],
    ) -> Dict[str, Rect]:
        """Build the name->Rect mapping from index-ordered anchors and dims."""
        if len(anchors) != self._circuit.num_blocks or len(dims) != self._circuit.num_blocks:
            raise ValueError(
                "anchors and dims must have one entry per circuit block "
                f"({self._circuit.num_blocks}), got {len(anchors)} and {len(dims)}"
            )
        rects: Dict[str, Rect] = {}
        for block, (x, y), (w, h) in zip(self._circuit.blocks, anchors, dims):
            rects[block.name] = Rect(x, y, w, h)
        return rects
