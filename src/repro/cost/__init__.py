"""Placement cost models: wirelength, area and constraint penalties."""

from repro.cost.area import area_cost, aspect_ratio_penalty
from repro.cost.cost_function import CostBreakdown, CostWeights, PlacementCostFunction
from repro.cost.penalties import (
    out_of_bounds_penalty,
    overlap_penalty,
    routability_penalty,
    symmetry_penalty,
)
from repro.cost.wirelength import (
    hpwl,
    mst_wirelength,
    net_terminal_positions,
    star_wirelength,
    total_wirelength,
)

__all__ = [
    "area_cost",
    "aspect_ratio_penalty",
    "CostBreakdown",
    "CostWeights",
    "PlacementCostFunction",
    "out_of_bounds_penalty",
    "overlap_penalty",
    "routability_penalty",
    "symmetry_penalty",
    "hpwl",
    "mst_wirelength",
    "net_terminal_positions",
    "star_wirelength",
    "total_wirelength",
]
