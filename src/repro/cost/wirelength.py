"""Wirelength estimators.

The BDIO's cost calculator scores a candidate layout "based on the
wire-lengths and area of that proposed design" (Section 3.2.2).  Three
standard estimators are provided — half-perimeter (HPWL, the default), star
and rectilinear minimum spanning tree — so the "customizable cost function"
can swap models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.net import Net
from repro.circuit.netlist import Circuit
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect

Position = Tuple[float, float]


def net_terminal_positions(
    net: Net,
    circuit: Circuit,
    rects: Dict[str, Rect],
    bounds: Optional[FloorplanBounds] = None,
) -> List[Position]:
    """Absolute positions of every connection point of ``net``.

    Block terminals resolve through the block's pin offsets; external nets
    additionally contribute their boundary I/O position when ``bounds`` is
    given.
    """
    positions: List[Position] = []
    for terminal in net.terminals:
        block = circuit.block(terminal.block)
        rect = rects[terminal.block]
        pin = block.pin(terminal.pin)
        positions.append(pin.position(rect))
    if net.external and bounds is not None:
        fx, fy = net.io_position
        positions.append((fx * bounds.width, fy * bounds.height))
    return positions


def _two_pin_length(positions: Sequence[Position]) -> float:
    """Manhattan distance of a two-terminal net (HPWL == star == MST there)."""
    (x0, y0), (x1, y1) = positions
    return abs(x0 - x1) + abs(y0 - y1)


def hpwl(positions: Sequence[Position]) -> float:
    """Half-perimeter wirelength of a set of terminal positions."""
    if len(positions) < 2:
        return 0.0
    if len(positions) == 2:
        return _two_pin_length(positions)
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def star_wirelength(positions: Sequence[Position]) -> float:
    """Star-model wirelength: Manhattan distance of every terminal to the centroid."""
    if len(positions) < 2:
        return 0.0
    if len(positions) == 2:
        return _two_pin_length(positions)
    cx = sum(p[0] for p in positions) / len(positions)
    cy = sum(p[1] for p in positions) / len(positions)
    return sum(abs(p[0] - cx) + abs(p[1] - cy) for p in positions)


def mst_wirelength(positions: Sequence[Position]) -> float:
    """Rectilinear minimum-spanning-tree wirelength (Prim's algorithm).

    On the parasitics hot path (called for every net of every synthesis
    iteration), so the dense O(n^2) Prim is fused into a single selection
    + relaxation pass over flat coordinate lists: the inner loop performs
    no allocation, no tuple unpacking and no method calls.
    """
    n = len(positions)
    if n < 2:
        return 0.0
    if n == 2:
        return _two_pin_length(positions)
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    inf = float("inf")
    # distance[i] < 0 marks "already in the tree" — one list doubles as
    # both the frontier distances and the membership flags.
    distance = [inf] * n
    distance[0] = -1.0
    total = 0.0
    last = 0
    for _ in range(n - 1):
        lx = xs[last]
        ly = ys[last]
        best = -1
        best_dist = inf
        for i in range(n):
            d = distance[i]
            if d < 0.0:
                continue
            dx = xs[i] - lx
            if dx < 0.0:
                dx = -dx
            dy = ys[i] - ly
            if dy < 0.0:
                dy = -dy
            nd = dx + dy
            if nd < d:
                d = nd
                distance[i] = nd
            if d < best_dist:
                best_dist = d
                best = i
        distance[best] = -1.0
        total += best_dist
        last = best
    return total


_MODELS = {
    "hpwl": hpwl,
    "star": star_wirelength,
    "mst": mst_wirelength,
}


def wirelength_estimator(model: str):
    """The per-net estimator callable for ``model`` (``hpwl``/``star``/``mst``).

    The incremental evaluator caches per-net lengths and needs the same
    callable :func:`total_wirelength` dispatches to, so the two paths
    agree bitwise.
    """
    try:
        return _MODELS[model]
    except KeyError as exc:
        raise ValueError(f"unknown wirelength model {model!r}; choose from {sorted(_MODELS)}") from exc


def total_wirelength(
    circuit: Circuit,
    rects: Dict[str, Rect],
    bounds: Optional[FloorplanBounds] = None,
    model: str = "hpwl",
) -> float:
    """Weighted total wirelength of a layout under the chosen net model."""
    estimator = wirelength_estimator(model)
    total = 0.0
    for net in circuit.nets:
        positions = net_terminal_positions(net, circuit, rects, bounds)
        total += net.weight * estimator(positions)
    return total


def per_net_wirelength(
    circuit: Circuit,
    rects: Dict[str, Rect],
    bounds: Optional[FloorplanBounds] = None,
    model: str = "hpwl",
) -> Dict[str, float]:
    """Unweighted wirelength of each net (used by the parasitic estimator)."""
    estimator = _MODELS[model]
    lengths: Dict[str, float] = {}
    for net in circuit.nets:
        positions = net_terminal_positions(net, circuit, rects, bounds)
        lengths[net.name] = estimator(positions)
    return lengths
