"""Constraint penalties: overlap, floorplan bounds and symmetry mismatch."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.circuit.symmetry import SymmetryGroup
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.overlap import total_overlap_area
from repro.geometry.rect import Rect


def overlap_penalty(rects: Dict[str, Rect]) -> float:
    """Total pairwise overlap area of the layout (0 for legal placements)."""
    return float(total_overlap_area(list(rects.values())))


def out_of_bounds_penalty(rects: Dict[str, Rect], bounds: FloorplanBounds) -> float:
    """Total block area lying outside the floorplan canvas."""
    canvas = bounds.as_rect()
    outside = 0.0
    for rect in rects.values():
        inside = rect.intersection(canvas)
        inside_area = inside.area if inside is not None else 0
        outside += rect.area - inside_area
    return outside


def symmetry_penalty(
    rects: Dict[str, Rect],
    groups: Optional[Sequence[SymmetryGroup]] = None,
    circuit: Optional[Circuit] = None,
) -> float:
    """Total symmetry-axis mismatch over all symmetry groups.

    Either an explicit list of groups or a circuit (whose groups are used)
    must be supplied.
    """
    if groups is None:
        groups = circuit.symmetry_groups if circuit is not None else ()
    return sum(group.mismatch(rects) for group in groups)
