"""Constraint penalties: overlap, bounds, symmetry mismatch and routability."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.symmetry import SymmetryGroup
from repro.cost.wirelength import net_terminal_positions
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.overlap import total_overlap_area
from repro.geometry.rect import Rect

#: Default wire-density a routing bin tolerates before it is congested
#: (wirelength per unit area; matches one track per grid unit of pitch).
DEFAULT_TRACK_CAPACITY = 1.0


def overlap_penalty(rects: Dict[str, Rect]) -> float:
    """Total pairwise overlap area of the layout (0 for legal placements)."""
    return float(total_overlap_area(list(rects.values())))


def out_of_bounds_penalty(rects: Dict[str, Rect], bounds: FloorplanBounds) -> float:
    """Total block area lying outside the floorplan canvas."""
    canvas = bounds.as_rect()
    outside = 0.0
    for rect in rects.values():
        inside = rect.intersection(canvas)
        inside_area = inside.area if inside is not None else 0
        outside += rect.area - inside_area
    return outside


def symmetry_penalty(
    rects: Dict[str, Rect],
    groups: Optional[Sequence[SymmetryGroup]] = None,
    circuit: Optional[Circuit] = None,
) -> float:
    """Total symmetry-axis mismatch over all symmetry groups.

    Either an explicit list of groups or a circuit (whose groups are used)
    must be supplied.
    """
    if groups is None:
        groups = circuit.symmetry_groups if circuit is not None else ()
    return sum(group.mismatch(rects) for group in groups)


def rudy_net_entries(
    positions: Sequence[Tuple[float, float]],
    weight: float,
    bins: int,
    bin_w: float,
    bin_h: float,
) -> List[Tuple[int, float]]:
    """One net's RUDY density contributions as ``(bin_index, amount)`` pairs.

    Each net spreads its expected wire density (``(w + h) / (w * h)``
    over its terminal bounding box, the RUDY model) onto a ``bins`` x
    ``bins`` decomposition of the canvas.  Shared by
    :func:`routability_penalty` and the incremental evaluator's
    maintained congestion bins, so the two stay in lockstep.
    """
    if len(positions) < 2:
        return []
    x_lo = min(p[0] for p in positions)
    x_hi = max(p[0] for p in positions)
    y_lo = min(p[1] for p in positions)
    y_hi = max(p[1] for p in positions)
    # Degenerate (collinear) boxes still occupy one track's width —
    # widen the box itself so the bin-overlap spread sees it too.
    x_hi = max(x_hi, x_lo + 1.0)
    y_hi = max(y_hi, y_lo + 1.0)
    width = x_hi - x_lo
    height = y_hi - y_lo
    rudy = weight * (width + height) / (width * height)
    i_lo = min(max(int(x_lo / bin_w), 0), bins - 1)
    i_hi = min(max(int(x_hi / bin_w), 0), bins - 1)
    j_lo = min(max(int(y_lo / bin_h), 0), bins - 1)
    j_hi = min(max(int(y_hi / bin_h), 0), bins - 1)
    entries: List[Tuple[int, float]] = []
    for j in range(j_lo, j_hi + 1):
        overlap_h = min(y_hi, (j + 1) * bin_h) - max(y_lo, j * bin_h)
        for i in range(i_lo, i_hi + 1):
            overlap_w = min(x_hi, (i + 1) * bin_w) - max(x_lo, i * bin_w)
            area = max(overlap_w, 0.0) * max(overlap_h, 0.0)
            if area > 0.0:
                entries.append((j * bins + i, rudy * area))
    return entries


def routability_penalty(
    rects: Dict[str, Rect],
    circuit: Circuit,
    bounds: FloorplanBounds,
    bins: int = 8,
    track_capacity: float = DEFAULT_TRACK_CAPACITY,
) -> float:
    """Estimated routing congestion of the layout (RUDY-style).

    A cheap stand-in for running the global router inside a placement
    cost function: every net's :func:`rudy_net_entries` demand is
    accumulated per bin, and the penalty is the total demand above
    ``track_capacity``, in units of excess wirelength.  Zero for layouts
    whose nets are spread out enough to route without contention.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    bin_w = bounds.width / bins
    bin_h = bounds.height / bins
    density = [0.0] * (bins * bins)
    for net in circuit.nets:
        positions = net_terminal_positions(net, circuit, rects, bounds)
        for bin_index, amount in rudy_net_entries(positions, net.weight, bins, bin_w, bin_h):
            density[bin_index] += amount
    bin_area = bin_w * bin_h
    threshold = track_capacity * bin_area
    return sum(d - threshold for d in density if d > threshold)
