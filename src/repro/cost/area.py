"""Area components of the placement cost."""

from __future__ import annotations

from typing import Dict

from repro.geometry.floorplan import bounding_box
from repro.geometry.rect import Rect


def area_cost(rects: Dict[str, Rect]) -> float:
    """Bounding-box area of the layout (grid units squared)."""
    if not rects:
        return 0.0
    return float(bounding_box(rects.values()).area)


def aspect_ratio_penalty(rects: Dict[str, Rect], target: float = 1.0) -> float:
    """Deviation of the bounding-box aspect ratio from ``target``.

    Analog blocks are typically embedded into larger floorplans, so strongly
    elongated placements are undesirable even when their raw area is small.
    """
    if not rects:
        return 0.0
    bbox = bounding_box(rects.values())
    if bbox.w == 0 or bbox.h == 0:
        return 0.0
    aspect = bbox.w / bbox.h
    if aspect < 1.0:
        aspect = 1.0 / aspect
    return max(0.0, aspect - target)


def dead_space(rects: Dict[str, Rect]) -> float:
    """Bounding-box area not covered by blocks (assumes no overlaps)."""
    if not rects:
        return 0.0
    bbox_area = area_cost(rects)
    used = float(sum(r.area for r in rects.values()))
    return max(0.0, bbox_area - used)
