"""Batched routing with deduplication and fan-out.

Synthesis optimizers evaluate placements in batches, and — exactly as with
placement queries — those batches are heavy with repeats: distinct sizing
points collapse onto the same dimension vector and therefore the same
floorplan.  Identical placements route identically, so
:func:`route_batch` routes each unique rect-set once and fans the
:class:`~repro.route.result.RoutedLayout` back out, optionally spreading
unique layouts across a worker pool (routing is pure, so concurrent runs
are safe).
"""

from __future__ import annotations

from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.placement import Placement
from repro.circuit.netlist import Circuit
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.route.result import RoutedLayout
from repro.route.router import GlobalRouter, RouterConfig
from repro.utils.timer import Timer

#: Minimum number of unique layouts before a worker pool is worth spinning up.
MIN_PARALLEL_ROUTES = 8

#: Hashable identity of one placement's rect-set.
RectsKey = Tuple[Tuple[str, int, int, int, int], ...]


@dataclass
class RouteBatchResult:
    """Everything produced by one batched routing call."""

    #: One routed layout per input placement, in input order.
    results: List[RoutedLayout]
    #: Number of unique rect-sets actually routed.
    unique_layouts: int
    #: Number of inputs answered by deduplication.
    duplicate_layouts: int
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> RoutedLayout:
        return self.results[index]

    @property
    def total_layouts(self) -> int:
        """Number of input placements."""
        return len(self.results)

    @property
    def total_overflow(self) -> int:
        """Summed overflow over the unique routed layouts."""
        seen: set = set()
        total = 0
        for layout in self.results:
            if id(layout) not in seen:
                seen.add(id(layout))
                total += layout.overflow
        return total


def rects_key(rects: Mapping[str, Rect]) -> RectsKey:
    return tuple(
        sorted((name, r.x, r.y, r.w, r.h) for name, r in rects.items())
    )


def route_batch(
    circuit: Circuit,
    placements: Sequence[Union[Placement, Mapping[str, Rect]]],
    bounds: Optional[FloorplanBounds] = None,
    config: Optional[RouterConfig] = None,
    max_workers: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> RouteBatchResult:
    """Route every placement in ``placements``, deduplicating identical ones.

    Parameters mirror :func:`repro.service.batch.instantiate_batch`:
    ``max_workers`` sizes a transient pool (``None`` or ``<= 1`` runs
    serially; pools only spin up past :data:`MIN_PARALLEL_ROUTES` unique
    layouts), ``executor`` reuses an existing pool without shutting it down.
    """
    router = GlobalRouter(circuit, bounds=bounds, config=config)
    with Timer() as timer:
        order: List[RectsKey] = []
        rects_for: Dict[RectsKey, Mapping[str, Rect]] = {}
        positions: Dict[RectsKey, List[int]] = {}
        for position, placement in enumerate(placements):
            rects = placement.rects if isinstance(placement, Placement) else placement
            key = rects_key(rects)
            if key not in positions:
                positions[key] = []
                rects_for[key] = rects
                order.append(key)
            positions[key].append(position)

        unique_layouts = _run_unique(
            router, [rects_for[key] for key in order], max_workers, executor
        )

        results: List[Optional[RoutedLayout]] = [None] * len(placements)
        for key, layout in zip(order, unique_layouts):
            for position in positions[key]:
                results[position] = layout
    return RouteBatchResult(
        results=results,  # type: ignore[arg-type] # every slot filled above
        unique_layouts=len(order),
        duplicate_layouts=len(placements) - len(order),
        elapsed_seconds=timer.elapsed,
    )


def _run_unique(
    router: GlobalRouter,
    unique_rects: List[Mapping[str, Rect]],
    max_workers: Optional[int],
    executor: Optional[Executor],
) -> List[RoutedLayout]:
    """Route each unique rect-set, in order, serially or on a pool."""
    if executor is not None:
        return list(executor.map(router.route, unique_rects))
    if (
        max_workers is not None
        and max_workers > 1
        and len(unique_rects) >= MIN_PARALLEL_ROUTES
    ):
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(router.route, unique_rects))
    return [router.route(rects) for rects in unique_rects]
