"""The grid-based symmetry-aware global router.

:class:`GlobalRouter` turns a placed circuit into per-net routes over a
:class:`~repro.route.grid.RoutingGrid`:

* every net's terminals (block pins via their fractional offsets, plus the
  boundary I/O point of external nets) escape onto the lattice at their
  nearest unblocked *access node*;
* multi-terminal nets grow a rectilinear Steiner-ish tree by repeatedly
  A*-connecting the closest remaining terminal to the partial tree, with
  congestion-aware edge costs;
* nets matched by a symmetry group are routed as geometric mirror images
  across the group axis (analog parasitic matching), falling back to
  independent routing when the mirrored path is illegal;
* a rip-up-and-reroute negotiation loop resolves edge overflow: offending
  nets are ripped up, overflowed edges accumulate history cost, and the
  nets re-route around the congestion.

The routed wirelength of every net counts its lattice edges *plus* the
pin-to-access-node stubs, which makes it a true upper bound of the net's
HPWL regardless of grid resolution — the sanity invariant
``benchmarks/bench_routing.py`` asserts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.api.placement import Placement
from repro.circuit.netlist import Circuit
from repro.cost.wirelength import hpwl, net_terminal_positions
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.obs.spans import is_enabled as _obs_enabled, metrics as _obs_metrics, span
from repro.route.grid import DEFAULT_EDGE_CAPACITY, Edge, Node, RoutingGrid
from repro.route.result import RoutedLayout, RoutedNet, Segment
from repro.route.symmetry import NetPair, symmetric_net_pairs
from repro.utils.timer import Timer

#: Tolerance when checking that a symmetry axis lands on the lattice.
_AXIS_EPS = 1e-6


@dataclass(frozen=True)
class RouterConfig:
    """Knobs of the global router."""

    #: Node pitch in layout units; ``None`` picks an automatic pitch.
    resolution: Optional[float] = None
    #: Nets one routing edge can carry before it overflows.
    capacity: int = DEFAULT_EDGE_CAPACITY
    #: Cost added per unit of would-be overflow when choosing paths.
    congestion_weight: float = 2.0
    #: History cost added to every overflowed edge per negotiation round.
    history_weight: float = 0.5
    #: Maximum rip-up-and-reroute rounds before giving up on overflow.
    max_iterations: int = 8
    #: Route symmetry-paired nets as mirror images when geometrically legal.
    mirror_symmetric_nets: bool = True


def _norm_edge(a: Node, b: Node) -> Edge:
    return (a, b) if a <= b else (b, a)


class GlobalRouter:
    """Route every net of one circuit over placed block rectangles."""

    def __init__(
        self,
        circuit: Circuit,
        bounds: Optional[FloorplanBounds] = None,
        config: Optional[RouterConfig] = None,
    ) -> None:
        self._circuit = circuit
        self._bounds = bounds
        self._config = config if config is not None else RouterConfig()

    @property
    def circuit(self) -> Circuit:
        """The circuit being routed."""
        return self._circuit

    @property
    def config(self) -> RouterConfig:
        """The router configuration in use."""
        return self._config

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def route(self, rects: Mapping[str, Rect]) -> RoutedLayout:
        """Route all nets of the circuit over the placed ``rects``."""
        config = self._config
        with span(
            "route.route", circuit=self._circuit.name, nets=len(self._circuit.nets)
        ) as obs_span, Timer() as timer:
            bounds = self._bounds if self._bounds is not None else derive_bounds(rects)
            grid = RoutingGrid(bounds, config.resolution, config.capacity)
            grid.add_blockages(rects.values())

            # Terminal geometry: exact pin positions and lattice access nodes.
            rects_dict = dict(rects)
            exact: Dict[str, List[Tuple[float, float]]] = {}
            access: Dict[str, Optional[List[Node]]] = {}
            for net in self._circuit.nets:
                positions = net_terminal_positions(net, self._circuit, rects_dict, bounds)
                exact[net.name] = positions
                nodes: Optional[List[Node]] = []
                for x, y in positions:
                    node = grid.access_node(x, y)
                    if node is None:
                        nodes = None
                        break
                    nodes.append(node)
                access[net.name] = nodes

            pairs = symmetric_net_pairs(self._circuit) if config.mirror_symmetric_nets else []
            mirror_of: Dict[str, NetPair] = {pair.mirror: pair for pair in pairs}
            # The mirror axes are layout properties: compute once per call,
            # not once per mirror attempt per negotiation round.
            axes: Dict[str, float] = {
                group.name: group.best_axis(rects_dict)
                for group in self._circuit.symmetry_groups
            }
            partner: Dict[str, str] = {}
            for pair in pairs:
                partner[pair.primary] = pair.mirror
                partner[pair.mirror] = pair.primary

            # Short nets first: they have the least routing freedom, so they
            # claim their corridors before long nets spread congestion.
            order = [net.name for net in self._circuit.nets]
            order.sort(key=lambda name: hpwl(exact[name]))
            order.sort(key=lambda name: 1 if name in mirror_of else 0)

            edges: Dict[str, Optional[Set[Edge]]] = {}
            mirrored_from: Dict[str, str] = {}

            def route_one(name: str) -> None:
                if len(exact[name]) < 2:
                    # Nothing to connect: a degenerate single-pin net is
                    # trivially routed, blocked or not.
                    edges[name] = set()
                    return
                nodes = access[name]
                if nodes is None:
                    edges[name] = None
                    return
                pair = mirror_of.get(name)
                if pair is not None:
                    mirrored = self._mirror_route(
                        grid, axes.get(pair.group), edges.get(pair.primary), nodes
                    )
                    if mirrored is not None:
                        edges[name] = mirrored
                        mirrored_from[name] = pair.primary
                        grid.add_usage(mirrored, +1)
                        return
                    mirrored_from.pop(name, None)
                tree = self._route_tree(grid, nodes)
                edges[name] = tree
                if tree:
                    grid.add_usage(tree, +1)

            for name in order:
                route_one(name)

            iterations = 0
            for _ in range(config.max_iterations):
                overflowed = grid.overflowed_edges()
                if not overflowed:
                    break
                iterations += 1
                over_set = set(overflowed)
                offenders = {
                    name
                    for name, tree in edges.items()
                    if tree and not over_set.isdisjoint(tree)
                }
                # Mirror pairs rip up and reroute as one unit so the mirror
                # can re-derive from its partner's fresh route.
                for name in list(offenders):
                    if name in partner:
                        offenders.add(partner[name])
                grid.add_history(overflowed, config.history_weight)
                for name in offenders:
                    tree = edges.get(name)
                    if tree:
                        grid.add_usage(tree, -1)
                    edges[name] = set()
                for name in order:
                    if name in offenders:
                        route_one(name)

            nets = {
                net.name: self._build_net(
                    grid,
                    net.name,
                    exact[net.name],
                    access[net.name],
                    edges.get(net.name),
                    mirrored_from.get(net.name),
                )
                for net in self._circuit.nets
            }
            obs_span.set(iterations=iterations, overflow=grid.total_overflow)
            if _obs_enabled():
                metrics = _obs_metrics()
                metrics.inc("route.routes")
                metrics.inc("route.ripup_iterations", iterations)
                if grid.total_overflow:
                    metrics.inc("route.overflowed_layouts")
        return RoutedLayout(
            nets=nets,
            resolution=grid.resolution,
            grid_shape=grid.shape,
            overflow=grid.total_overflow,
            max_congestion=grid.max_usage,
            iterations=iterations,
            elapsed_seconds=timer.elapsed,
        )

    # ------------------------------------------------------------------ #
    # Single-net routing
    # ------------------------------------------------------------------ #
    def _route_tree(self, grid: RoutingGrid, nodes: Sequence[Node]) -> Optional[Set[Edge]]:
        """Connect ``nodes`` into one tree; ``None`` when any leg is unreachable."""
        unique: List[Node] = []
        for node in nodes:
            if node not in unique:
                unique.append(node)
        tree_edges: Set[Edge] = set()
        if len(unique) <= 1:
            return tree_edges
        tree: Set[Node] = {unique[0]}
        remaining = unique[1:]
        while remaining:
            best_index = 0
            best_dist = float("inf")
            for index, candidate in enumerate(remaining):
                dist = min(
                    abs(candidate[0] - n[0]) + abs(candidate[1] - n[1]) for n in tree
                )
                if dist < best_dist:
                    best_dist = dist
                    best_index = index
            start = remaining.pop(best_index)
            path = self._astar(grid, start, tree)
            if path is None:
                return None
            previous: Optional[Node] = None
            for node in path:
                tree.add(node)
                if previous is not None:
                    tree_edges.add(_norm_edge(previous, node))
                previous = node
        return tree_edges

    def _astar(
        self, grid: RoutingGrid, start: Node, targets: Set[Node]
    ) -> Optional[List[Node]]:
        """Cheapest congestion-aware path from ``start`` to any of ``targets``."""
        if start in targets:
            return [start]
        resolution = grid.resolution
        congestion_weight = self._config.congestion_weight
        min_i = min(i for i, _ in targets)
        max_i = max(i for i, _ in targets)
        min_j = min(j for _, j in targets)
        max_j = max(j for _, j in targets)

        def heuristic(i: int, j: int) -> float:
            dx = min_i - i if i < min_i else (i - max_i if i > max_i else 0)
            dy = min_j - j if j < min_j else (j - max_j if j > max_j else 0)
            return (dx + dy) * resolution

        best_g: Dict[Node, float] = {start: 0.0}
        parent: Dict[Node, Node] = {}
        open_heap: List[Tuple[float, float, Node]] = [
            (heuristic(*start), 0.0, start)
        ]
        closed: Set[Node] = set()
        nx, ny = grid.shape
        while open_heap:
            _, g, node = heapq.heappop(open_heap)
            if node in closed:
                continue
            closed.add(node)
            if node in targets:
                path = [node]
                while node in parent:
                    node = parent[node]
                    path.append(node)
                path.reverse()
                return path
            i, j = node
            for ni, nj in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
                if not (0 <= ni < nx and 0 <= nj < ny):
                    continue
                neighbour = (ni, nj)
                if neighbour in closed or grid.is_blocked(neighbour):
                    continue
                tentative = g + grid.edge_cost(node, neighbour, congestion_weight)
                if tentative < best_g.get(neighbour, float("inf")):
                    best_g[neighbour] = tentative
                    parent[neighbour] = node
                    heapq.heappush(
                        open_heap, (tentative + heuristic(ni, nj), tentative, neighbour)
                    )
        return None

    # ------------------------------------------------------------------ #
    # Symmetry mirroring
    # ------------------------------------------------------------------ #
    def _mirror_route(
        self,
        grid: RoutingGrid,
        axis: Optional[float],
        primary_edges: Optional[Set[Edge]],
        mirror_access: Sequence[Node],
    ) -> Optional[Set[Edge]]:
        """The primary's route reflected across the pair's symmetry ``axis``.

        Returns ``None`` (fall back to independent routing) when the axis
        does not land on the lattice, any reflected node is off-grid or
        blocked, or the reflected tree misses one of the mirror net's
        access nodes (which would leave it disconnected).
        """
        if primary_edges is None or axis is None:
            return None
        doubled = 2.0 * axis / grid.resolution
        if abs(doubled - round(doubled)) > _AXIS_EPS:
            return None
        flip = int(round(doubled))

        mirrored: Set[Edge] = set()
        nodes: Set[Node] = set()
        for (ai, aj), (bi, bj) in primary_edges:
            ma = (flip - ai, aj)
            mb = (flip - bi, bj)
            if not (grid.in_grid(ma) and grid.in_grid(mb)):
                return None
            if grid.is_blocked(ma) or grid.is_blocked(mb):
                return None
            mirrored.add(_norm_edge(ma, mb))
            nodes.add(ma)
            nodes.add(mb)
        unique_access = set(mirror_access)
        if not mirrored:
            # A zero-edge primary mirrors onto a zero-edge route only when
            # the mirror net also collapses onto a single access node.
            return set() if len(unique_access) <= 1 else None
        if not unique_access.issubset(nodes):
            return None
        return mirrored

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _build_net(
        self,
        grid: RoutingGrid,
        name: str,
        exact: Sequence[Tuple[float, float]],
        access: Optional[Sequence[Node]],
        tree: Optional[Set[Edge]],
        mirrored_from: Optional[str],
    ) -> RoutedNet:
        if len(exact) < 2:
            return RoutedNet(name=name)
        if access is None or tree is None:
            return RoutedNet(name=name, failed=True)
        stubs: List[Segment] = []
        stub_length = 0.0
        for (x, y), node in zip(exact, access):
            px, py = grid.node_position(node)
            length = abs(px - x) + abs(py - y)
            if length > 1e-9:
                stubs.append(((x, y), (px, py)))
                stub_length += length
        segments = tuple(
            sorted(
                (grid.node_position(a), grid.node_position(b))
                for a, b in tree
            )
        )
        wirelength = len(tree) * grid.resolution + stub_length
        return RoutedNet(
            name=name,
            segments=segments,
            stubs=tuple(stubs),
            wirelength=wirelength,
            mirrored_from=mirrored_from,
        )


# ---------------------------------------------------------------------- #
# Convenience entry points
# ---------------------------------------------------------------------- #
def derive_bounds(rects: Mapping[str, Rect]) -> FloorplanBounds:
    """The smallest origin-anchored canvas containing every placed rect."""
    if not rects:
        return FloorplanBounds(1, 1)
    width = max(rect.x2 for rect in rects.values())
    height = max(rect.y2 for rect in rects.values())
    return FloorplanBounds(max(width, 1), max(height, 1))


def route_placement(
    circuit: Circuit,
    placement: Union[Placement, Mapping[str, Rect]],
    bounds: Optional[FloorplanBounds] = None,
    config: Optional[RouterConfig] = None,
) -> RoutedLayout:
    """Route one placement (a :class:`Placement` or a name->rect mapping)."""
    rects = placement.rects if isinstance(placement, Placement) else placement
    router = GlobalRouter(circuit, bounds=bounds, config=config)
    return router.route(rects)
