"""Global routing: from a placed floorplan to routed nets.

The paper's synthesis loop routes and extracts each placed layout before
scoring it (Figure 1.b); this subsystem supplies that missing layer.  A
placed :class:`~repro.api.Placement` becomes a routing problem over a
uniform :class:`RoutingGrid` (blockages from the placed rects, pin access
points from the block pin offsets), the :class:`GlobalRouter` solves it
with congestion-negotiated A* search and symmetry-mirrored routes for
matched nets, and the frozen :class:`RoutedLayout` carries per-net paths,
routed wirelength and overflow statistics to every consumer — parasitics
(:func:`repro.synthesis.parasitics.estimate_parasitics_from_routes`), the
placement service's route cache, the SVG renderer and the experiment
harnesses.

Typical usage::

    from repro.route import route_placement, route_batch

    routed = route_placement(circuit, placement)
    print(routed.total_wirelength, routed.overflow, routed.is_fully_routed)

    batch = route_batch(circuit, placements)     # dedup + fan-out
"""

from repro.route.batch import RouteBatchResult, route_batch
from repro.route.grid import DEFAULT_EDGE_CAPACITY, RoutingGrid, default_resolution
from repro.route.result import RoutedLayout, RoutedNet
from repro.route.router import (
    GlobalRouter,
    RouterConfig,
    derive_bounds,
    route_placement,
)
from repro.route.symmetry import NetPair, symmetric_net_pairs

__all__ = [
    "DEFAULT_EDGE_CAPACITY",
    "GlobalRouter",
    "NetPair",
    "RouteBatchResult",
    "RoutedLayout",
    "RoutedNet",
    "RouterConfig",
    "RoutingGrid",
    "default_resolution",
    "derive_bounds",
    "route_batch",
    "route_placement",
    "symmetric_net_pairs",
]
