"""Frozen results of a global-routing run.

A :class:`RoutedLayout` is to routing what :class:`repro.api.Placement` is
to placement: the one immutable answer every consumer reads — per-net
paths for drawing, per-net routed wirelength for parasitics, and
overflow/congestion statistics for cost models and service telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple

#: One rectilinear wire piece as layout coordinates: ((x1, y1), (x2, y2)).
Segment = Tuple[Tuple[float, float], Tuple[float, float]]


@dataclass(frozen=True)
class RoutedNet:
    """One net's route over the grid.

    ``segments`` are the unique lattice edges of the net's routing tree;
    ``stubs`` connect each exact pin position to its lattice access node.
    ``wirelength`` is the total physical length of both — counting the
    stubs keeps the routed length an upper bound of the net's HPWL even
    when pin positions snap inward onto the lattice.
    """

    name: str
    segments: Tuple[Segment, ...] = ()
    stubs: Tuple[Segment, ...] = ()
    wirelength: float = 0.0
    #: Name of the symmetry partner this route was mirrored from, if any.
    mirrored_from: Optional[str] = None
    #: True when the router could not connect the net (e.g. blocked pins).
    failed: bool = False

    @property
    def num_segments(self) -> int:
        """Number of lattice edges in the routing tree."""
        return len(self.segments)


@dataclass(frozen=True)
class RoutedLayout:
    """The routed form of one placed circuit."""

    #: Per-net routes, keyed by net name (immutable).
    nets: Mapping[str, RoutedNet]
    #: Node pitch of the routing grid in layout units.
    resolution: float
    #: ``(columns, rows)`` of the routing lattice.
    grid_shape: Tuple[int, int]
    #: Total net-units above edge capacity after negotiation (0 = routable).
    overflow: int = 0
    #: The most nets any single routing edge carries.
    max_congestion: int = 0
    #: Rip-up-and-reroute iterations the negotiation ran.
    iterations: int = 0
    elapsed_seconds: float = 0.0
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "nets", MappingProxyType(dict(self.nets)))
        object.__setattr__(self, "metadata", MappingProxyType(dict(self.metadata)))

    # ``MappingProxyType`` cannot be pickled; plain-dict state lets routed
    # layouts return from parallel routing workers (mirrors
    # :meth:`repro.api.Placement.__getstate__`).
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["nets"] = dict(self.nets)
        state["metadata"] = dict(self.metadata)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for key, value in state.items():
            if key in ("nets", "metadata"):
                value = MappingProxyType(dict(value))  # type: ignore[arg-type]
            object.__setattr__(self, key, value)

    # ------------------------------------------------------------------ #
    # Wirelength
    # ------------------------------------------------------------------ #
    def wirelength(self, net_name: str) -> float:
        """Routed wirelength of one net (0 when the net is unknown)."""
        net = self.nets.get(net_name)
        return net.wirelength if net is not None else 0.0

    @property
    def total_wirelength(self) -> float:
        """Total routed wirelength over all nets."""
        return sum(net.wirelength for net in self.nets.values())

    def net_wirelengths(self) -> Dict[str, float]:
        """Per-net routed wirelength as a plain dictionary."""
        return {name: net.wirelength for name, net in self.nets.items()}

    # ------------------------------------------------------------------ #
    # Routability
    # ------------------------------------------------------------------ #
    @property
    def failed_nets(self) -> Tuple[str, ...]:
        """Names of nets the router could not connect."""
        return tuple(name for name, net in self.nets.items() if net.failed)

    @property
    def mirrored_nets(self) -> Tuple[str, ...]:
        """Names of nets routed by mirroring a symmetry partner."""
        return tuple(
            name for name, net in self.nets.items() if net.mirrored_from is not None
        )

    @property
    def is_fully_routed(self) -> bool:
        """True when every net connected and no edge overflowed."""
        return self.overflow == 0 and not self.failed_nets

    def stats(self) -> Dict[str, float]:
        """Plain-data summary for reports and ``Placement.metadata``."""
        return {
            "routed_wirelength": self.total_wirelength,
            "overflow": float(self.overflow),
            "max_congestion": float(self.max_congestion),
            "failed_nets": float(len(self.failed_nets)),
            "mirrored_nets": float(len(self.mirrored_nets)),
            "iterations": float(self.iterations),
            "grid_columns": float(self.grid_shape[0]),
            "grid_rows": float(self.grid_shape[1]),
            "resolution": float(self.resolution),
            "elapsed_seconds": self.elapsed_seconds,
        }
