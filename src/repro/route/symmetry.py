"""Symmetry-aware net pairing for analog routing.

Analog matching does not stop at placement: the nets of a differential
pair must see the same wiring parasitics, so matched nets are routed as
geometric mirror images across the symmetry axis.  This module finds those
net pairs from the circuit's :class:`~repro.circuit.symmetry.SymmetryGroup`
constraints: two nets pair when mapping every terminal through the group's
block pairing (left <-> right, self-symmetric blocks onto themselves)
turns one net's terminal set into the other's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.circuit.net import Net
from repro.circuit.netlist import Circuit
from repro.circuit.symmetry import SymmetryGroup


@dataclass(frozen=True)
class NetPair:
    """Two nets that must be routed as mirror images."""

    primary: str
    mirror: str
    group: str


def block_mapping(group: SymmetryGroup) -> Dict[str, str]:
    """The block substitution induced by ``group``'s pairing."""
    mapping: Dict[str, str] = {}
    for left, right in group.pairs:
        mapping[left] = right
        mapping[right] = left
    for name in group.self_symmetric:
        mapping[name] = name
    return mapping


def _terminal_set(net: Net) -> FrozenSet[Tuple[str, str]]:
    return frozenset((t.block, t.pin) for t in net.terminals)


def _mapped_terminal_set(
    net: Net, mapping: Dict[str, str]
) -> Optional[FrozenSet[Tuple[str, str]]]:
    """``net``'s terminal set pushed through ``mapping``.

    ``None`` when any terminal touches a block outside the symmetry group —
    such a net has no well-defined mirror image.
    """
    mapped = set()
    for terminal in net.terminals:
        partner = mapping.get(terminal.block)
        if partner is None:
            return None
        mapped.add((partner, terminal.pin))
    return frozenset(mapped)


def symmetric_net_pairs(circuit: Circuit) -> List[NetPair]:
    """All net pairs of ``circuit`` that must route as mirror images.

    External nets are excluded (their boundary I/O pin has no mirror), as
    are self-mapping nets (a net whose mirror image is itself needs no
    partner route).  Each net joins at most one pair; the lexicographically
    smaller name becomes the pair's primary.
    """
    pairs: List[NetPair] = []
    paired: set = set()
    by_terminals: Dict[FrozenSet[Tuple[str, str]], Net] = {}
    for net in circuit.nets:
        if not net.external and net.terminals:
            by_terminals.setdefault(_terminal_set(net), net)
    for group in circuit.symmetry_groups:
        mapping = block_mapping(group)
        for net in circuit.nets:
            if net.external or not net.terminals or net.name in paired:
                continue
            mapped = _mapped_terminal_set(net, mapping)
            if mapped is None or mapped == _terminal_set(net):
                continue
            partner = by_terminals.get(mapped)
            if partner is None or partner.name in paired or partner.name == net.name:
                continue
            primary, mirror = sorted((net.name, partner.name))
            pairs.append(NetPair(primary=primary, mirror=mirror, group=group.name))
            paired.add(net.name)
            paired.add(partner.name)
    return pairs
