"""The uniform routing grid a global router works on.

Global routing abstracts the layout into a lattice of routing nodes with
capacitated edges between neighbours: blocks become blockages, pins become
access points on the lattice, and a route is a path over the surviving
edges.  :class:`RoutingGrid` derives that lattice from a
:class:`~repro.geometry.floorplan.FloorplanBounds` canvas at a chosen
resolution (layout grid units between adjacent routing nodes) and tracks
per-edge usage, capacity and negotiation history for the rip-up-and-reroute
loop.

Blockage is resolution-limited by design: a routing node is blocked when it
lies *strictly inside* a placed rectangle, so block boundaries remain
routable corridors (the classic "route along macro edges" abstraction) and
finer blockage detail than the node pitch is intentionally not modelled.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect

#: Default number of nets one routing edge can carry.
DEFAULT_EDGE_CAPACITY = 4

#: Target node count per grid side when the resolution is chosen automatically.
_TARGET_NODES_PER_SIDE = 48

#: A routing node addressed by its (column, row) lattice indices.
Node = Tuple[int, int]

#: A grid edge: the node pair it connects, in lattice indices.
Edge = Tuple[Node, Node]

#: Position-space tolerance when classifying nodes against rect boundaries:
#: a node within this distance of an edge counts as *on* it (routable),
#: guarding the strictly-interior test against float division error at
#: fractional resolutions (e.g. 33/1.1 evaluating just below 30).
_BOUNDARY_EPS = 1e-7


def default_resolution(bounds: FloorplanBounds) -> int:
    """The automatic node pitch for ``bounds``.

    One layout grid unit per node for small canvases, coarsening so that
    neither side exceeds ``_TARGET_NODES_PER_SIDE`` nodes — keeps the maze
    search cheap on large floorplans without losing the small-canvas
    exactness the tests rely on.
    """
    return max(1, math.ceil(max(bounds.width, bounds.height) / _TARGET_NODES_PER_SIDE))


class RoutingGrid:
    """A capacitated routing lattice over a floorplan canvas.

    Parameters
    ----------
    bounds:
        The layout canvas the lattice spans.
    resolution:
        Distance between adjacent nodes in layout grid units; defaults to
        :func:`default_resolution`.
    capacity:
        Number of nets each edge can carry before it overflows.
    """

    def __init__(
        self,
        bounds: FloorplanBounds,
        resolution: Optional[float] = None,
        capacity: int = DEFAULT_EDGE_CAPACITY,
    ) -> None:
        if resolution is None:
            resolution = default_resolution(bounds)
        if resolution <= 0:
            raise ValueError(f"grid resolution must be positive, got {resolution}")
        if capacity < 1:
            raise ValueError(f"edge capacity must be at least 1, got {capacity}")
        self.bounds = bounds
        self.resolution = float(resolution)
        self.capacity = capacity
        self.nx = int(math.floor(bounds.width / self.resolution)) + 1
        self.ny = int(math.floor(bounds.height / self.resolution)) + 1
        self._blocked = bytearray(self.nx * self.ny)
        # Horizontal edges: (i, j)-(i+1, j), row-major over (ny, nx-1).
        self._h_usage = [0] * (self.ny * (self.nx - 1))
        self._h_history = [0.0] * (self.ny * (self.nx - 1))
        # Vertical edges: (i, j)-(i, j+1), row-major over (ny-1, nx).
        self._v_usage = [0] * ((self.ny - 1) * self.nx)
        self._v_history = [0.0] * ((self.ny - 1) * self.nx)

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(columns, rows)`` of the node lattice."""
        return (self.nx, self.ny)

    @property
    def num_nodes(self) -> int:
        """Total number of routing nodes."""
        return self.nx * self.ny

    def node_position(self, node: Node) -> Tuple[float, float]:
        """Layout coordinates of a lattice node."""
        i, j = node
        return (i * self.resolution, j * self.resolution)

    def snap(self, x: float, y: float) -> Node:
        """The lattice node nearest to layout position ``(x, y)``, clamped."""
        i = int(round(x / self.resolution))
        j = int(round(y / self.resolution))
        return (min(max(i, 0), self.nx - 1), min(max(j, 0), self.ny - 1))

    def in_grid(self, node: Node) -> bool:
        """True when ``node`` lies on the lattice."""
        i, j = node
        return 0 <= i < self.nx and 0 <= j < self.ny

    # ------------------------------------------------------------------ #
    # Blockages and pin access
    # ------------------------------------------------------------------ #
    def block_rect(self, rect: Rect) -> None:
        """Block every node strictly inside ``rect``."""
        res = self.resolution
        i_lo = int(math.floor((rect.x + _BOUNDARY_EPS) / res)) + 1
        i_hi = int(math.ceil((rect.x2 - _BOUNDARY_EPS) / res)) - 1
        j_lo = int(math.floor((rect.y + _BOUNDARY_EPS) / res)) + 1
        j_hi = int(math.ceil((rect.y2 - _BOUNDARY_EPS) / res)) - 1
        for j in range(max(j_lo, 0), min(j_hi, self.ny - 1) + 1):
            base = j * self.nx
            for i in range(max(i_lo, 0), min(i_hi, self.nx - 1) + 1):
                self._blocked[base + i] = 1

    def add_blockages(self, rects: Iterable[Rect]) -> None:
        """Block the interiors of all ``rects``."""
        for rect in rects:
            self.block_rect(rect)

    def is_blocked(self, node: Node) -> bool:
        """True when ``node`` lies strictly inside a blockage."""
        i, j = node
        return bool(self._blocked[j * self.nx + i])

    def access_node(self, x: float, y: float) -> Optional[Node]:
        """The nearest unblocked node to layout position ``(x, y)``.

        Pins sit inside their own block's footprint, so their snapped node
        is usually blocked; the access node is where the net escapes onto
        the routing lattice (the pin-to-node stub is accounted separately).
        Returns ``None`` when every node is blocked.
        """
        ci, cj = self.snap(x, y)
        if not self._blocked[cj * self.nx + ci]:
            return (ci, cj)
        best: Optional[Node] = None
        best_dist = float("inf")
        found_radius: Optional[int] = None
        max_radius = max(self.nx, self.ny)
        for radius in range(1, max_radius + 1):
            # Once a candidate exists at Chebyshev radius r, a nearer
            # *Manhattan* candidate can still hide out to radius 2r (+1
            # for the pin's sub-pitch offset from its snapped node).
            if found_radius is not None and radius > 2 * found_radius + 1:
                break
            for i, j in self._ring(ci, cj, radius):
                if self._blocked[j * self.nx + i]:
                    continue
                dist = abs(i * self.resolution - x) + abs(j * self.resolution - y)
                if dist < best_dist:
                    best = (i, j)
                    best_dist = dist
            if best is not None and found_radius is None:
                found_radius = radius
        return best

    def _ring(self, ci: int, cj: int, radius: int) -> Iterable[Node]:
        """Lattice nodes at Chebyshev distance ``radius`` from ``(ci, cj)``."""
        i_lo, i_hi = ci - radius, ci + radius
        j_lo, j_hi = cj - radius, cj + radius
        for i in range(max(i_lo, 0), min(i_hi, self.nx - 1) + 1):
            if 0 <= j_lo < self.ny:
                yield (i, j_lo)
            if 0 <= j_hi < self.ny and j_hi != j_lo:
                yield (i, j_hi)
        for j in range(max(j_lo + 1, 0), min(j_hi - 1, self.ny - 1) + 1):
            if 0 <= i_lo < self.nx:
                yield (i_lo, j)
            if 0 <= i_hi < self.nx and i_hi != i_lo:
                yield (i_hi, j)

    # ------------------------------------------------------------------ #
    # Edge accounting
    # ------------------------------------------------------------------ #
    def edge_key(self, a: Node, b: Node) -> Tuple[bool, int]:
        """``(horizontal, flat index)`` of the edge between neighbours ``a``/``b``."""
        (ai, aj), (bi, bj) = a, b
        if aj == bj and abs(ai - bi) == 1:
            return (True, aj * (self.nx - 1) + min(ai, bi))
        if ai == bi and abs(aj - bj) == 1:
            return (False, min(aj, bj) * self.nx + ai)
        raise ValueError(f"nodes {a} and {b} are not lattice neighbours")

    def usage(self, a: Node, b: Node) -> int:
        """Current number of nets over the edge ``a``-``b``."""
        horizontal, index = self.edge_key(a, b)
        return (self._h_usage if horizontal else self._v_usage)[index]

    def add_usage(self, edges: Iterable[Edge], delta: int) -> None:
        """Add ``delta`` nets to every edge in ``edges``."""
        for a, b in edges:
            horizontal, index = self.edge_key(a, b)
            (self._h_usage if horizontal else self._v_usage)[index] += delta

    def add_history(self, edges: Iterable[Edge], amount: float) -> None:
        """Grow the negotiation history cost of every edge in ``edges``."""
        for a, b in edges:
            horizontal, index = self.edge_key(a, b)
            (self._h_history if horizontal else self._v_history)[index] += amount

    def edge_cost(self, a: Node, b: Node, congestion_weight: float) -> float:
        """Congestion-aware traversal cost of one more net over ``a``-``b``.

        Base cost is the physical edge length; the negotiated history and
        the would-be overflow (usage after this net, past capacity) are
        added on top, so the cost never drops below the length and distance
        heuristics stay admissible.
        """
        horizontal, index = self.edge_key(a, b)
        if horizontal:
            usage, history = self._h_usage[index], self._h_history[index]
        else:
            usage, history = self._v_usage[index], self._v_history[index]
        over = usage + 1 - self.capacity
        penalty = history + (congestion_weight * over if over > 0 else 0.0)
        return self.resolution * (1.0 + penalty)

    def overflowed_edges(self) -> List[Edge]:
        """All edges currently carrying more nets than their capacity."""
        edges: List[Edge] = []
        nx = self.nx
        for index, usage in enumerate(self._h_usage):
            if usage > self.capacity:
                j, i = divmod(index, nx - 1)
                edges.append(((i, j), (i + 1, j)))
        for index, usage in enumerate(self._v_usage):
            if usage > self.capacity:
                j, i = divmod(index, nx)
                edges.append(((i, j), (i, j + 1)))
        return edges

    @property
    def total_overflow(self) -> int:
        """Total net-units above capacity over all edges."""
        cap = self.capacity
        return sum(u - cap for u in self._h_usage if u > cap) + sum(
            u - cap for u in self._v_usage if u > cap
        )

    @property
    def max_usage(self) -> int:
        """The most nets any single edge carries."""
        h = max(self._h_usage) if self._h_usage else 0
        v = max(self._v_usage) if self._v_usage else 0
        return max(h, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RoutingGrid({self.nx}x{self.ny} @ {self.resolution}, "
            f"capacity={self.capacity})"
        )
