"""Block orientations.

The DATE'05 paper works with unrotated blocks, but analog module generators
commonly emit layouts that may be mirrored or rotated; the explorer can
optionally toggle orientations during perturbation.  Orientation only
affects the footprint (width/height swap for 90-degree rotations) and pin
offset mirroring.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple


class Orientation(Enum):
    """The eight layout orientations (rotations and mirrors)."""

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"
    MY = "MY"
    MX90 = "MX90"
    MY90 = "MY90"

    @property
    def swaps_dimensions(self) -> bool:
        """True for orientations that exchange width and height."""
        return self in (Orientation.R90, Orientation.R270, Orientation.MX90, Orientation.MY90)


def oriented_dims(w: int, h: int, orientation: Orientation = Orientation.R0) -> Tuple[int, int]:
    """Footprint of a ``w x h`` block under ``orientation``."""
    if orientation.swaps_dimensions:
        return (h, w)
    return (w, h)


def oriented_pin_offset(
    fx: float, fy: float, orientation: Orientation = Orientation.R0
) -> Tuple[float, float]:
    """Fractional pin offset after applying ``orientation`` to the block."""
    if orientation == Orientation.R0:
        return (fx, fy)
    if orientation == Orientation.R180:
        return (1.0 - fx, 1.0 - fy)
    if orientation == Orientation.MX:
        return (fx, 1.0 - fy)
    if orientation == Orientation.MY:
        return (1.0 - fx, fy)
    if orientation == Orientation.R90:
        return (1.0 - fy, fx)
    if orientation == Orientation.R270:
        return (fy, 1.0 - fx)
    if orientation == Orientation.MX90:
        return (fy, fx)
    if orientation == Orientation.MY90:
        return (1.0 - fy, 1.0 - fx)
    raise ValueError(f"unknown orientation {orientation!r}")
