"""Simple shelf packing.

Used to build legal starting placements (explorer initialisation), the
template fallback covering the uncovered dimension space, and the
template-based baseline placer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

Dims = Tuple[int, int]
Anchor = Tuple[int, int]


def shelf_pack(
    dims: Sequence[Dims],
    max_width: Optional[int] = None,
    gap: int = 0,
    order: Optional[Sequence[int]] = None,
) -> List[Anchor]:
    """Pack blocks left-to-right into shelves (rows) of bounded width.

    Parameters
    ----------
    dims:
        ``(w, h)`` of each block, in index order.
    max_width:
        Shelf width; defaults to a value giving a roughly square packing.
    gap:
        Spacing inserted between neighbouring blocks and shelves.
    order:
        Optional packing order (indices into ``dims``); defaults to the
        given order.  Anchors are always returned in the original index
        order regardless of packing order.

    Returns
    -------
    list of ``(x, y)`` lower-left anchors, one per block, guaranteed
    non-overlapping.
    """
    if not dims:
        return []
    if max_width is None:
        total_area = sum(w * h for w, h in dims)
        widest = max(w for w, _ in dims)
        max_width = max(widest, int(total_area ** 0.5 * 1.2) + 1)
    if order is None:
        order = range(len(dims))
    anchors: List[Optional[Anchor]] = [None] * len(dims)
    shelf_x = 0
    shelf_y = 0
    shelf_height = 0
    for index in order:
        w, h = dims[index]
        if shelf_x > 0 and shelf_x + w > max_width:
            shelf_y += shelf_height + gap
            shelf_x = 0
            shelf_height = 0
        anchors[index] = (shelf_x, shelf_y)
        shelf_x += w + gap
        shelf_height = max(shelf_height, h)
    return [anchor for anchor in anchors if anchor is not None]


def packing_extent(dims: Sequence[Dims], anchors: Sequence[Anchor]) -> Dims:
    """Width and height of the bounding box of a packed arrangement."""
    if not dims:
        return (0, 0)
    width = max(x + w for (x, y), (w, h) in zip(anchors, dims))
    height = max(y + h for (x, y), (w, h) in zip(anchors, dims))
    return (width, height)
