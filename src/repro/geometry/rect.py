"""Axis-aligned rectangles on the integer layout grid.

All placement geometry in the library uses half-open rectangles
``[x, x + w) x [y, y + h)`` anchored at their lower-left corner.  The paper's
interval objects are defined over integer dimensions, so widths, heights and
anchors are integers throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple


@dataclass(frozen=True)
class Point:
    """An integer point on the layout grid."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[int, int]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """A half-open axis-aligned rectangle anchored at its lower-left corner."""

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"rectangle dimensions must be non-negative, got {self.w}x{self.h}")

    @property
    def x2(self) -> int:
        """Exclusive right edge."""
        return self.x + self.w

    @property
    def y2(self) -> int:
        """Exclusive top edge."""
        return self.y + self.h

    @property
    def area(self) -> int:
        """Rectangle area in grid units squared."""
        return self.w * self.h

    @property
    def center(self) -> Tuple[float, float]:
        """Geometric center of the rectangle."""
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    @property
    def anchor(self) -> Point:
        """Lower-left anchor of the rectangle."""
        return Point(self.x, self.y)

    def is_empty(self) -> bool:
        """True when the rectangle has zero area."""
        return self.w == 0 or self.h == 0

    def contains_point(self, x: float, y: float) -> bool:
        """True when ``(x, y)`` lies inside the half-open rectangle."""
        return self.x <= x < self.x2 and self.y <= y < self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies fully inside this rectangle."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles share a region of positive area."""
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping region, or ``None`` when the rectangles are disjoint."""
        if not self.intersects(other):
            return None
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        return Rect(x, y, x2 - x, y2 - y)

    def union_bbox(self, other: "Rect") -> "Rect":
        """The smallest rectangle containing both rectangles."""
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Rect(x, y, x2 - x, y2 - y)

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return the rectangle shifted by ``(dx, dy)``."""
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def resized(self, w: int, h: int) -> "Rect":
        """Return a rectangle with the same anchor and new dimensions."""
        return Rect(self.x, self.y, w, h)

    def inflated(self, margin: int) -> "Rect":
        """Return the rectangle grown by ``margin`` on every side."""
        return Rect(self.x - margin, self.y - margin, self.w + 2 * margin, self.h + 2 * margin)

    def terminal_position(self, fx: float, fy: float) -> Tuple[float, float]:
        """Absolute position of a pin at fractional offset ``(fx, fy)``."""
        return (self.x + fx * self.w, self.y + fy * self.h)


def bounding_box_of(rects: Iterable[Rect]) -> Rect:
    """The smallest rectangle enclosing all ``rects`` (which must be non-empty)."""
    rects = list(rects)
    if not rects:
        raise ValueError("bounding_box_of requires at least one rectangle")
    x = min(r.x for r in rects)
    y = min(r.y for r in rects)
    x2 = max(r.x2 for r in rects)
    y2 = max(r.y2 for r in rects)
    return Rect(x, y, x2 - x, y2 - y)
