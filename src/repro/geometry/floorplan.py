"""Floorplan bounds and whole-floorplan area measures."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.geometry.rect import Rect, bounding_box_of


@dataclass(frozen=True)
class FloorplanBounds:
    """The rectangular layout region blocks must stay inside.

    The paper's placement explorer treats the floorplan as a fixed canvas:
    expansion stops at the boundary and out-of-bound perturbations wrap to
    the opposite side (Section 3.1.4).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("floorplan bounds must be positive")

    @property
    def area(self) -> int:
        """Canvas area in grid units squared."""
        return self.width * self.height

    def as_rect(self) -> Rect:
        """The canvas as a rectangle anchored at the origin."""
        return Rect(0, 0, self.width, self.height)

    def contains(self, rect: Rect) -> bool:
        """True when ``rect`` lies fully inside the canvas."""
        return rect.x >= 0 and rect.y >= 0 and rect.x2 <= self.width and rect.y2 <= self.height

    def clamp_anchor(self, x: int, y: int, w: int, h: int) -> tuple:
        """Clamp an anchor so a ``w x h`` block fits inside the canvas."""
        cx = min(max(x, 0), max(self.width - w, 0))
        cy = min(max(y, 0), max(self.height - h, 0))
        return (cx, cy)

    def wrap_anchor(self, x: int, y: int, w: int, h: int) -> tuple:
        """Wrap an out-of-bounds anchor to the opposite side of the canvas.

        This mirrors the paper's perturbation rule: "an out-of-bound
        coordinate variation is not discarded but used to shift the block
        back to the opposite side of the floor-plan".
        """
        span_x = max(self.width - w, 1)
        span_y = max(self.height - h, 1)
        return (x % span_x, y % span_y)

    @staticmethod
    def for_blocks(
        max_dims: Sequence[tuple],
        whitespace_factor: float = 1.6,
        aspect_ratio: float = 1.0,
    ) -> "FloorplanBounds":
        """Size a square-ish canvas able to hold all blocks at maximum size.

        ``max_dims`` is a list of ``(max_w, max_h)`` per block.  The canvas
        area is the total maximum block area multiplied by
        ``whitespace_factor``; its side is at least the largest single block
        dimension so every block fits individually.
        """
        if not max_dims:
            raise ValueError("at least one block is required")
        if whitespace_factor < 1.0:
            raise ValueError("whitespace_factor must be >= 1.0")
        total_area = sum(w * h for w, h in max_dims)
        side = math.sqrt(total_area * whitespace_factor)
        width = int(math.ceil(side * math.sqrt(aspect_ratio)))
        height = int(math.ceil(side / math.sqrt(aspect_ratio)))
        width = max(width, max(w for w, _ in max_dims))
        height = max(height, max(h for _, h in max_dims))
        return FloorplanBounds(width, height)


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Bounding box of a collection of placed blocks."""
    return bounding_box_of(rects)


def occupied_area(rects: Iterable[Rect]) -> int:
    """Sum of block areas (overlaps counted twice; use cost.penalties for overlap)."""
    return sum(r.area for r in rects)


def dead_space_ratio(rects: Dict[str, Rect]) -> float:
    """Fraction of the bounding box not covered by block area.

    Assumes blocks do not overlap, which holds for every placement the
    library instantiates.
    """
    rect_list = list(rects.values())
    if not rect_list:
        return 0.0
    bbox = bounding_box_of(rect_list)
    if bbox.area == 0:
        return 0.0
    used = occupied_area(rect_list)
    return max(0.0, 1.0 - used / bbox.area)
