"""Block overlap detection.

The placement expansion step (Section 3.1.2) grows block dimensions until
"no further expansion is possible due to overlapping or out-of-bounds
constraints", so overlap queries are on the hot path of structure
generation.  A uniform spatial grid keeps pairwise checks local for the
25-module circuits the paper targets.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.geometry.rect import Rect


def overlap_pairs(rects: Sequence[Rect]) -> List[Tuple[int, int]]:
    """Indices of every pair of rectangles that overlap."""
    pairs = []
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            if rects[i].intersects(rects[j]):
                pairs.append((i, j))
    return pairs


def any_overlap(rects: Sequence[Rect]) -> bool:
    """True when any two rectangles overlap."""
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            if rects[i].intersects(rects[j]):
                return True
    return False


#: Above this many rectangles :func:`total_overlap_area` switches from the
#: O(n^2) pairwise scan to the spatial grid (identical integer result).
GRID_PAIRWISE_CUTOFF = 32


def total_overlap_area(rects: Sequence[Rect]) -> int:
    """Total pairwise overlap area (used as a soft penalty by baseline placers).

    Small layouts use the direct pairwise scan; past
    :data:`GRID_PAIRWISE_CUTOFF` rectangles a spatial grid restricts the
    intersection tests to local neighbourhoods.  Areas are integers, so
    both paths return exactly the same value.
    """
    n = len(rects)
    if n > GRID_PAIRWISE_CUTOFF:
        return _total_overlap_area_grid(rects)
    total = 0
    for i in range(n):
        for j in range(i + 1, n):
            inter = rects[i].intersection(rects[j])
            if inter is not None:
                total += inter.area
    return total


def auto_cell_size(rects: Sequence[Rect]) -> int:
    """A spatial-grid cell comparable to the average block footprint."""
    if not rects:
        return 16
    average_side = sum(max(r.w, r.h, 1) for r in rects) / len(rects)
    return max(4, int(round(average_side)))


def _total_overlap_area_grid(rects: Sequence[Rect]) -> int:
    """Grid-accelerated total overlap: each pair is counted once (i < j)."""
    grid = SpatialGrid(cell_size=auto_cell_size(rects))
    for index, rect in enumerate(rects):
        grid.insert(index, rect)
    total = 0
    for index, rect in enumerate(rects):
        for other in grid.query(rect, exclude=index):
            if other > index:
                inter = rect.intersection(rects[other])
                if inter is not None:
                    total += inter.area
    return total


def rect_overlaps_any(rect: Rect, others: Iterable[Rect]) -> bool:
    """True when ``rect`` overlaps any rectangle in ``others``."""
    return any(rect.intersects(other) for other in others)


class SpatialGrid:
    """A uniform bucket grid accelerating overlap queries against a set of rects.

    Cells are ``cell_size`` wide; each rectangle is registered in every cell
    it touches.  Queries only test rectangles sharing a cell with the probe.
    """

    def __init__(self, cell_size: int = 16) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._cell_size = cell_size
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._rects: Dict[int, Rect] = {}

    def _cells_for(self, rect: Rect) -> Iterable[Tuple[int, int]]:
        cs = self._cell_size
        x0 = rect.x // cs
        x1 = max(x0, (rect.x2 - 1) // cs)
        y0 = rect.y // cs
        y1 = max(y0, (rect.y2 - 1) // cs)
        for cx in range(x0, x1 + 1):
            for cy in range(y0, y1 + 1):
                yield (cx, cy)

    def insert(self, key: int, rect: Rect) -> None:
        """Register ``rect`` under integer ``key`` (replacing any previous rect)."""
        if key in self._rects:
            self.remove(key)
        self._rects[key] = rect
        if rect.is_empty():
            return
        for cell in self._cells_for(rect):
            self._cells[cell].append(key)

    def remove(self, key: int) -> None:
        """Remove the rectangle registered under ``key`` (no-op if absent)."""
        rect = self._rects.pop(key, None)
        if rect is None or rect.is_empty():
            return
        for cell in self._cells_for(rect):
            bucket = self._cells.get(cell)
            if bucket and key in bucket:
                bucket.remove(key)

    def query(self, rect: Rect, exclude: int = -1) -> List[int]:
        """Keys of registered rectangles overlapping ``rect`` (excluding ``exclude``)."""
        if rect.is_empty():
            return []
        seen = set()
        hits = []
        for cell in self._cells_for(rect):
            for key in self._cells.get(cell, ()):
                if key == exclude or key in seen:
                    continue
                seen.add(key)
                if self._rects[key].intersects(rect):
                    hits.append(key)
        return hits

    def __len__(self) -> int:
        return len(self._rects)

    def __contains__(self, key: int) -> bool:
        return key in self._rects
