"""Geometry substrate: integer-grid rectangles, floorplan bounds, overlap checks."""

from repro.geometry.rect import Point, Rect
from repro.geometry.floorplan import FloorplanBounds, bounding_box, occupied_area
from repro.geometry.overlap import (
    SpatialGrid,
    any_overlap,
    overlap_pairs,
    total_overlap_area,
)
from repro.geometry.transform import Orientation, oriented_dims

__all__ = [
    "Point",
    "Rect",
    "FloorplanBounds",
    "bounding_box",
    "occupied_area",
    "SpatialGrid",
    "any_overlap",
    "overlap_pairs",
    "total_overlap_area",
    "Orientation",
    "oriented_dims",
]
