"""MIM capacitor module generator."""

from __future__ import annotations

import math
from typing import Tuple

from repro.modgen.base import Footprint, ModuleGenerator, SizingParameter, to_grid


class MimCapacitorGenerator(ModuleGenerator):
    """A metal-insulator-metal capacitor plate.

    The plate area follows from the capacitance and the process capacitance
    density; the ``aspect`` parameter shapes the plate into a rectangle.
    """

    name = "mim_capacitor"

    def __init__(self, density_ff_per_um2: float = 2.0, margin_um: float = 1.5) -> None:
        if density_ff_per_um2 <= 0:
            raise ValueError("capacitance density must be positive")
        self._density = density_ff_per_um2
        self._margin = margin_um

    def parameters(self) -> Tuple[SizingParameter, ...]:
        return (
            SizingParameter("capacitance", 10.0, 5000.0, 500.0, "fF"),
            SizingParameter("aspect", 0.25, 4.0, 1.0, ""),
        )

    def footprint(self, **params: float) -> Footprint:
        values = self.resolve_params(params)
        area_um2 = values["capacitance"] / self._density
        width_um = math.sqrt(area_um2 * values["aspect"]) + 2 * self._margin
        height_um = math.sqrt(area_um2 / values["aspect"]) + 2 * self._margin
        pins = {"top": (0.5, 0.9), "bottom": (0.5, 0.1)}
        return Footprint(to_grid(width_um), to_grid(height_um), pins)
