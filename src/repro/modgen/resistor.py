"""Serpentine poly resistor module generator."""

from __future__ import annotations

import math
from typing import Tuple

from repro.modgen.base import Footprint, ModuleGenerator, SizingParameter, to_grid


class PolyResistorGenerator(ModuleGenerator):
    """A poly resistor folded into a serpentine of ``segments`` strips.

    The total strip length follows from the resistance, the sheet resistance
    and the strip width; folding trades module width against height.
    """

    name = "poly_resistor"

    def __init__(self, sheet_ohms: float = 300.0, spacing_um: float = 0.8,
                 margin_um: float = 1.0) -> None:
        if sheet_ohms <= 0:
            raise ValueError("sheet resistance must be positive")
        self._sheet = sheet_ohms
        self._spacing = spacing_um
        self._margin = margin_um

    def parameters(self) -> Tuple[SizingParameter, ...]:
        return (
            SizingParameter("resistance", 100.0, 500000.0, 10000.0, "ohm"),
            SizingParameter("strip_width", 0.4, 4.0, 1.0, "um"),
            SizingParameter("segments", 1.0, 24.0, 6.0, ""),
        )

    def footprint(self, **params: float) -> Footprint:
        values = self.resolve_params(params)
        segments = max(1, int(round(values["segments"])))
        squares = values["resistance"] / self._sheet
        total_length_um = squares * values["strip_width"]
        segment_length_um = total_length_um / segments
        width_um = segments * (values["strip_width"] + self._spacing) + 2 * self._margin
        height_um = segment_length_um + 2 * self._margin
        pins = {"a": (0.05, 0.1), "b": (0.95, 0.1)}
        return Footprint(to_grid(width_um), to_grid(height_um), pins)
