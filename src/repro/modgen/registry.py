"""Registry mapping generator names to generator classes."""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.modgen.base import ModuleGenerator
from repro.modgen.capacitor import MimCapacitorGenerator
from repro.modgen.current_mirror import CurrentMirrorGenerator
from repro.modgen.diffpair import DifferentialPairGenerator
from repro.modgen.mosfet import FoldedMosfetGenerator
from repro.modgen.resistor import PolyResistorGenerator

_REGISTRY: Dict[str, Type[ModuleGenerator]] = {}


def register_generator(cls: Type[ModuleGenerator]) -> Type[ModuleGenerator]:
    """Register a generator class under its ``name`` attribute.

    Can be used as a decorator by user code defining custom generators.
    """
    if not getattr(cls, "name", None):
        raise ValueError("module generator classes must define a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def create_generator(name: str, **kwargs: float) -> ModuleGenerator:
    """Instantiate the generator registered under ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"no module generator named {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc
    return cls(**kwargs)


def available_generators() -> List[str]:
    """Names of all registered generators."""
    return sorted(_REGISTRY)


for _cls in (
    FoldedMosfetGenerator,
    DifferentialPairGenerator,
    CurrentMirrorGenerator,
    MimCapacitorGenerator,
    PolyResistorGenerator,
):
    register_generator(_cls)
