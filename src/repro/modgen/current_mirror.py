"""Current mirror module generator."""

from __future__ import annotations

from typing import Tuple

from repro.modgen.base import Footprint, ModuleGenerator, SizingParameter, to_grid


class CurrentMirrorGenerator(ModuleGenerator):
    """An interdigitated current mirror with an integer mirror ratio.

    The reference device and the ``ratio`` output devices are folded into a
    single row of stripes; width grows with the ratio, height with the
    per-stripe device width.
    """

    name = "current_mirror"

    def __init__(
        self,
        contact_pitch_um: float = 1.2,
        edge_um: float = 1.2,
        overhead_um: float = 2.5,
    ) -> None:
        self._contact_pitch = contact_pitch_um
        self._edge = edge_um
        self._overhead = overhead_um

    def parameters(self) -> Tuple[SizingParameter, ...]:
        return (
            SizingParameter("width", 1.0, 200.0, 15.0, "um"),
            SizingParameter("length", 0.18, 10.0, 1.0, "um"),
            SizingParameter("ratio", 1.0, 8.0, 1.0, ""),
            SizingParameter("fingers", 1.0, 8.0, 2.0, ""),
        )

    def footprint(self, **params: float) -> Footprint:
        values = self.resolve_params(params)
        fingers = max(1, int(round(values["fingers"])))
        ratio = max(1, int(round(values["ratio"])))
        stripes = fingers * (1 + ratio)
        finger_width = values["width"] / fingers
        module_width = stripes * (values["length"] + self._contact_pitch) + 2 * self._edge
        module_height = finger_width + self._overhead
        pins = {
            "ref": (0.1, 0.5),
            "out": (0.9, 0.5),
            "common": (0.5, 0.05),
        }
        return Footprint(to_grid(module_width), to_grid(module_height), pins)
