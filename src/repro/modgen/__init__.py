"""Analog module generators: device sizes -> block footprints and pins.

The synthesis loop of Figure 1.b "translate[s] the proposed device sizes
into widths and heights of the modules using module generator functions";
these generators play the role of the BALLISTIC/MSL-style procedural
generators referenced by the paper.
"""

from repro.modgen.base import GRID_UM, Footprint, ModuleGenerator, SizingParameter
from repro.modgen.capacitor import MimCapacitorGenerator
from repro.modgen.current_mirror import CurrentMirrorGenerator
from repro.modgen.diffpair import DifferentialPairGenerator
from repro.modgen.mosfet import FoldedMosfetGenerator
from repro.modgen.resistor import PolyResistorGenerator
from repro.modgen.registry import available_generators, create_generator, register_generator

__all__ = [
    "GRID_UM",
    "Footprint",
    "ModuleGenerator",
    "SizingParameter",
    "MimCapacitorGenerator",
    "CurrentMirrorGenerator",
    "DifferentialPairGenerator",
    "FoldedMosfetGenerator",
    "PolyResistorGenerator",
    "available_generators",
    "create_generator",
    "register_generator",
]
