"""Module generator interface.

A module generator maps continuous device sizing parameters (transistor
width/length, capacitance, resistance, folding factor ...) to a discrete
layout footprint in grid units plus pin offsets.  The multi-placement
structure only ever consumes the footprints; the synthesis loop owns the
parameters.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

# Physical size of one layout grid unit in micrometres.  All generators round
# their footprints up to whole grid units.
GRID_UM = 0.5


@dataclass(frozen=True)
class SizingParameter:
    """A continuous sizing parameter with bounds and a default value."""

    name: str
    minimum: float
    maximum: float
    default: float
    unit: str = ""

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise ValueError(f"parameter {self.name}: minimum exceeds maximum")
        if not (self.minimum <= self.default <= self.maximum):
            raise ValueError(f"parameter {self.name}: default outside bounds")

    def clamp(self, value: float) -> float:
        """Clamp ``value`` into the parameter's range."""
        return min(max(value, self.minimum), self.maximum)


@dataclass(frozen=True)
class Footprint:
    """The layout footprint a generator produces for one parameter set."""

    width: int
    height: int
    pin_offsets: Mapping[str, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("footprint dimensions must be positive")

    @property
    def dims(self) -> Tuple[int, int]:
        """``(width, height)`` in grid units."""
        return (self.width, self.height)

    @property
    def area(self) -> int:
        """Footprint area in grid units squared."""
        return self.width * self.height


def to_grid(length_um: float) -> int:
    """Round a physical length in micrometres up to whole grid units (>= 1)."""
    if length_um < 0:
        raise ValueError("length must be non-negative")
    return max(1, int(math.ceil(length_um / GRID_UM)))


class ModuleGenerator(abc.ABC):
    """Base class for parameterized analog module generators."""

    #: Generator name used by the registry and by :attr:`Block.generator`.
    name: str = "module"

    @abc.abstractmethod
    def parameters(self) -> Tuple[SizingParameter, ...]:
        """The sizing parameters the generator accepts."""

    @abc.abstractmethod
    def footprint(self, **params: float) -> Footprint:
        """Footprint for the given parameter values (missing ones use defaults)."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def parameter(self, name: str) -> SizingParameter:
        """Look up a parameter description by name."""
        for param in self.parameters():
            if param.name == name:
                return param
        raise KeyError(f"generator {self.name} has no parameter {name!r}")

    def default_params(self) -> Dict[str, float]:
        """Default value of every parameter."""
        return {param.name: param.default for param in self.parameters()}

    def resolve_params(self, params: Mapping[str, float]) -> Dict[str, float]:
        """Merge ``params`` over the defaults, clamping into bounds.

        Unknown parameter names raise ``KeyError`` so synthesis binding
        mistakes surface early.
        """
        resolved = self.default_params()
        for key, value in params.items():
            if key not in resolved:
                raise KeyError(f"generator {self.name} has no parameter {key!r}")
            resolved[key] = self.parameter(key).clamp(float(value))
        return resolved

    def dimension_bounds(self) -> Tuple[int, int, int, int]:
        """``(min_w, max_w, min_h, max_h)`` over the corner points of the parameter box.

        The footprint of every generator in this package is monotone in each
        parameter, so evaluating the corners of the parameter hyper-box
        brackets the reachable footprints; blocks use these as their
        designer bounds.
        """
        params = self.parameters()
        corners = [{}]
        for param in params:
            corners = [
                {**corner, param.name: bound}
                for corner in corners
                for bound in (param.minimum, param.maximum)
            ]
        widths = []
        heights = []
        for corner in corners:
            fp = self.footprint(**corner)
            widths.append(fp.width)
            heights.append(fp.height)
        return (min(widths), max(widths), min(heights), max(heights))
