"""Differential pair module generator (common-centroid layout)."""

from __future__ import annotations

from typing import Tuple

from repro.modgen.base import Footprint, ModuleGenerator, SizingParameter, to_grid


class DifferentialPairGenerator(ModuleGenerator):
    """A matched transistor pair laid out as a 2 x 2k common-centroid array.

    Both devices are split into ``fingers`` stripes and interdigitated, so
    the module is roughly twice as wide as a single folded device of the
    same size and two rows tall.
    """

    name = "diff_pair"

    def __init__(
        self,
        contact_pitch_um: float = 1.2,
        edge_um: float = 1.5,
        row_gap_um: float = 1.0,
        overhead_um: float = 2.0,
    ) -> None:
        self._contact_pitch = contact_pitch_um
        self._edge = edge_um
        self._row_gap = row_gap_um
        self._overhead = overhead_um

    def parameters(self) -> Tuple[SizingParameter, ...]:
        return (
            SizingParameter("width", 2.0, 400.0, 40.0, "um"),
            SizingParameter("length", 0.18, 5.0, 0.5, "um"),
            SizingParameter("fingers", 1.0, 12.0, 4.0, ""),
        )

    def footprint(self, **params: float) -> Footprint:
        values = self.resolve_params(params)
        fingers = max(1, int(round(values["fingers"])))
        finger_width = values["width"] / fingers
        # Two interdigitated devices share each row: 2 * fingers stripes total.
        module_width = 2 * fingers * (values["length"] + self._contact_pitch) + 2 * self._edge
        module_height = 2 * (finger_width / 2.0) + self._row_gap + self._overhead
        pins = {
            "inp": (0.1, 0.9),
            "inn": (0.9, 0.9),
            "outp": (0.25, 0.1),
            "outn": (0.75, 0.1),
            "tail": (0.5, 0.05),
        }
        return Footprint(to_grid(module_width), to_grid(module_height), pins)
