"""Folded MOSFET module generator."""

from __future__ import annotations

import math
from typing import Tuple

from repro.modgen.base import Footprint, ModuleGenerator, SizingParameter, to_grid


class FoldedMosfetGenerator(ModuleGenerator):
    """A single MOS transistor folded into ``fingers`` parallel gate stripes.

    Geometry model (dimensions in micrometres before gridding):

    * each finger contributes ``length + contact_pitch`` to the module width,
      plus edge diffusion on both sides;
    * the module height is the per-finger device width ``width / fingers``
      plus well/guard-ring overhead.
    """

    name = "folded_mosfet"

    def __init__(
        self,
        contact_pitch_um: float = 1.2,
        edge_um: float = 1.0,
        overhead_um: float = 2.0,
    ) -> None:
        self._contact_pitch = contact_pitch_um
        self._edge = edge_um
        self._overhead = overhead_um

    def parameters(self) -> Tuple[SizingParameter, ...]:
        return (
            SizingParameter("width", 1.0, 200.0, 20.0, "um"),
            SizingParameter("length", 0.18, 5.0, 0.5, "um"),
            SizingParameter("fingers", 1.0, 16.0, 4.0, ""),
        )

    def footprint(self, **params: float) -> Footprint:
        values = self.resolve_params(params)
        fingers = max(1, int(round(values["fingers"])))
        finger_width = values["width"] / fingers
        module_width = fingers * (values["length"] + self._contact_pitch) + 2 * self._edge
        module_height = finger_width + self._overhead
        pins = {
            "d": (0.15, 0.5),
            "g": (0.5, 0.95),
            "s": (0.85, 0.5),
            "b": (0.5, 0.05),
        }
        return Footprint(to_grid(module_width), to_grid(module_height), pins)

    def fingers_for_aspect(self, width_um: float, length_um: float, target_aspect: float = 1.0) -> int:
        """Finger count bringing the footprint aspect ratio close to ``target_aspect``."""
        best_fingers = 1
        best_error = math.inf
        for fingers in range(1, 17):
            fp = self.footprint(width=width_um, length=length_um, fingers=fingers)
            aspect = fp.width / fp.height
            error = abs(aspect - target_aspect)
            if error < best_error:
                best_error = error
                best_fingers = fingers
        return best_fingers
