"""Bounded LRU caching for the placement service.

Two levels of caching sit between a query and the disk:

* :class:`LRUCache` — a small, thread-safe, bounded map used by the engine
  to keep recently-served (structure, instantiator) pairs loaded, so a
  service juggling many topologies does not re-deserialize a structure on
  every request.
* :class:`MemoizingInstantiator` — wraps a
  :class:`~repro.core.instantiator.PlacementInstantiator` and memoizes the
  dimension-vector -> placement mapping.  Synthesis loops revisit sizing
  points constantly (SA proposals oscillate around accepted states), so
  repeated queries are the common case, and a
  :class:`~repro.api.Placement` is frozen and safe to share between
  callers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Optional, Sequence, Tuple, TypeVar

from repro.api.placement import Placement
from repro.core.instantiator import PlacementInstantiator
from repro.core.placement_entry import Dims

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def as_dict(self) -> Dict[str, float]:
        """Plain-data snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache(Generic[K, V]):
    """A thread-safe, bounded least-recently-used map."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._stats = CacheStats()

    @property
    def capacity(self) -> int:
        """Maximum number of entries held."""
        return self._capacity

    @property
    def stats(self) -> CacheStats:
        """The cache's hit/miss/eviction counters."""
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """The value under ``key`` (marking it most-recently used), or ``default``."""
        with self._lock:
            if key not in self._data:
                self._stats.misses += 1
                return default
            self._stats.hits += 1
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key: K, value: V) -> None:
        """Insert ``key``, evicting the least-recently-used entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            if len(self._data) >= self._capacity:
                self._data.popitem(last=False)
                self._stats.evictions += 1
            self._data[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._data.clear()

    def keys(self) -> Tuple[K, ...]:
        """Current keys, least-recently used first."""
        with self._lock:
            return tuple(self._data.keys())


class MemoizingInstantiator:
    """A :class:`PlacementInstantiator` with a bounded per-query memo table.

    The memo key is the *clamped* dimension vector — the same normalization
    the instantiator itself applies — so out-of-bounds queries that clamp
    to the same admissible vector share one entry.
    """

    def __init__(self, instantiator: PlacementInstantiator, capacity: int = 4096) -> None:
        self._instantiator = instantiator
        self._memo: LRUCache[Tuple[Dims, ...], Placement] = LRUCache(capacity)

    @property
    def instantiator(self) -> PlacementInstantiator:
        """The wrapped instantiator."""
        return self._instantiator

    @property
    def structure(self):
        """The structure being queried (mirrors the instantiator's property)."""
        return self._instantiator.structure

    @property
    def memo_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the memo table."""
        return self._memo.stats

    def cache_key(self, dims: Sequence[Dims]) -> Tuple[Dims, ...]:
        """The clamped, hashable form of a dimension vector."""
        blocks = self._instantiator.structure.circuit.blocks
        return tuple(
            block.clamp_dims(int(w), int(h)) for block, (w, h) in zip(blocks, dims)
        )

    def instantiate(self, dims: Sequence[Dims]) -> Placement:
        """Memoized :meth:`PlacementInstantiator.instantiate`."""
        return self.instantiate_with_info(dims)[0]

    def instantiate_many(self, dims_batch: Sequence[Sequence[Dims]]) -> List[Placement]:
        """Memoized :meth:`PlacementInstantiator.instantiate_many`.

        Memo hits are answered from the table; the misses run through the
        wrapped instantiator's single vectorized cost sweep and are stored
        for next time.  Memo hit/miss statistics match the per-query path.
        """
        keys = [self.cache_key(dims) for dims in dims_batch]
        resolved: Dict[Tuple[Dims, ...], Placement] = {}
        pending: List[Tuple[Dims, ...]] = []
        for key in keys:
            if key in resolved or key in pending:
                continue
            cached = self._memo.get(key)
            if cached is not None:
                resolved[key] = cached
            else:
                pending.append(key)
        if pending:
            for key, placement in zip(pending, self._instantiator.instantiate_many(pending)):
                self._memo.put(key, placement)
                resolved[key] = placement
        return [resolved[key] for key in keys]

    def vector_ready(self) -> bool:
        """Whether batch queries will score on the vectorized path."""
        return self._instantiator.vector_ready()

    def vector_stats(self) -> Dict[str, int]:
        """The wrapped instantiator's vectorized batch-scoring counters."""
        return self._instantiator.vector_stats()

    def instantiate_with_info(
        self, dims: Sequence[Dims]
    ) -> Tuple[Placement, bool]:
        """``(placement, from_memo)`` — the flag is True on a memo hit."""
        key = self.cache_key(dims)
        cached = self._memo.get(key)
        if cached is not None:
            return cached, True
        result = self._instantiator.instantiate(key)
        self._memo.put(key, result)
        return result, False

    def clear(self) -> None:
        """Drop all memoized placements."""
        self._memo.clear()
