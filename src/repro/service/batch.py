"""Batched placement instantiation with deduplication and fan-out.

Synthesis optimizers (population-based sizing, parallel SA chains, design
space sweeps) naturally produce *batches* of dimension vectors, and those
batches are heavy with duplicates: module generators snap continuous sizes
onto integer grids, so distinct sizing points frequently collapse onto the
same dimension vector.  Instantiating each unique vector once and fanning
the results back out is therefore the single biggest win of the service
layer; a ``concurrent.futures`` pool then spreads the remaining unique
queries across workers.
"""

from __future__ import annotations

from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api.placement import Placement
from repro.core.instantiator import PlacementInstantiator
from repro.core.placement_entry import Dims
from repro.service.cache import MemoizingInstantiator
from repro.utils.timer import Timer

#: Minimum number of unique queries before a worker pool is worth spinning up.
MIN_PARALLEL_QUERIES = 8

AnyInstantiator = Union[PlacementInstantiator, MemoizingInstantiator]


@dataclass
class BatchResult:
    """Everything produced by one batched instantiation call."""

    #: One placement per input query, in input order.
    results: List[Placement]
    #: Number of unique dimension vectors actually instantiated.
    unique_queries: int
    #: Number of input queries answered by deduplication.
    duplicate_queries: int
    elapsed_seconds: float = 0.0
    #: Sources of the returned placements, tallied over *all* queries.
    source_counts: Dict[str, int] = field(default_factory=dict)
    #: Merged worker/pool counters when the batch ran on a process pool
    #: (``pool_jobs``, ``pool_worker_processes``, worker stats deltas, …);
    #: empty for in-process batches.
    pool_stats: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> Placement:
        return self.results[index]

    @property
    def total_queries(self) -> int:
        """Number of input queries."""
        return len(self.results)

    @property
    def queries_per_second(self) -> float:
        """Throughput of the batch call."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_queries / self.elapsed_seconds


def _dims_key(instantiator: AnyInstantiator, dims: Sequence[Dims]) -> Tuple[Dims, ...]:
    """The clamped, hashable dedup key of one query."""
    if isinstance(instantiator, MemoizingInstantiator):
        return instantiator.cache_key(dims)
    blocks = instantiator.structure.circuit.blocks
    return tuple(block.clamp_dims(int(w), int(h)) for block, (w, h) in zip(blocks, dims))


def instantiate_batch(
    instantiator: AnyInstantiator,
    dims_batch: Sequence[Sequence[Dims]],
    max_workers: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> BatchResult:
    """Instantiate every dimension vector in ``dims_batch``.

    Identical vectors (after per-block clamping) are instantiated once and
    shared.  When ``executor`` is given, or ``max_workers`` asks for more
    than one worker and the batch has enough unique queries to amortize
    pool startup, unique queries run concurrently; instantiation is pure,
    so concurrent queries against one structure are safe.

    Parameters
    ----------
    instantiator:
        A :class:`PlacementInstantiator` or :class:`MemoizingInstantiator`.
    dims_batch:
        One dimension vector per query.
    max_workers:
        Size of the transient thread pool (``None`` or ``<= 1`` runs
        serially).  Ignored when ``executor`` is provided.
    executor:
        An existing pool to run on (not shut down by this call).
    """
    with Timer() as timer:
        order: List[Tuple[Dims, ...]] = []
        positions: Dict[Tuple[Dims, ...], List[int]] = {}
        # Two-level dedup: exact repeats collapse on the raw vector without
        # paying the per-block clamp, then clamping merges the remainder.
        raw_to_clamped: Dict[Tuple[Dims, ...], Tuple[Dims, ...]] = {}
        num_blocks = instantiator.structure.circuit.num_blocks
        for position, dims in enumerate(dims_batch):
            raw = tuple((w, h) for w, h in dims)
            if len(raw) != num_blocks:
                raise ValueError(
                    f"dimension vector {position} must have {num_blocks} entries, "
                    f"got {len(raw)}"
                )
            key = raw_to_clamped.get(raw)
            if key is None:
                key = _dims_key(instantiator, dims)
                raw_to_clamped[raw] = key
            if key not in positions:
                positions[key] = []
                order.append(key)
            positions[key].append(position)

        unique_results = _run_unique(instantiator, order, max_workers, executor)

        results: List[Optional[Placement]] = [None] * len(dims_batch)
        source_counts: Dict[str, int] = {}
        for key, result in zip(order, unique_results):
            spots = positions[key]
            source_counts[result.source] = source_counts.get(result.source, 0) + len(spots)
            for position in spots:
                results[position] = result
    return BatchResult(
        results=results,  # type: ignore[arg-type] # every slot filled above
        unique_queries=len(order),
        duplicate_queries=len(dims_batch) - len(order),
        elapsed_seconds=timer.elapsed,
        source_counts=source_counts,
    )


def _run_unique(
    instantiator: AnyInstantiator,
    unique_keys: List[Tuple[Dims, ...]],
    max_workers: Optional[int],
    executor: Optional[Executor],
) -> List[Placement]:
    """Instantiate each unique key, in order, serially or on a pool.

    Serial batches of more than one unique query go through the
    instantiator's
    :meth:`~repro.core.instantiator.PlacementInstantiator.instantiate_many`,
    which scores the whole batch in one vectorized cost sweep — bitwise
    identical to the per-query loop — and itself falls back to (and
    counts) the scalar loop when vectorization is unavailable.
    """
    if executor is not None:
        return list(executor.map(instantiator.instantiate, unique_keys))
    if (
        max_workers is not None
        and max_workers > 1
        and len(unique_keys) >= MIN_PARALLEL_QUERIES
    ):
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(instantiator.instantiate, unique_keys))
    instantiate_many = getattr(instantiator, "instantiate_many", None)
    if len(unique_keys) > 1 and instantiate_many is not None:
        return instantiate_many(unique_keys)
    return [instantiator.instantiate(key) for key in unique_keys]
