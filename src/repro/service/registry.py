"""On-disk structure library: the offline half of the service.

The registry owns a directory of serialized multi-placement structures plus
a JSON index mapping registry keys (:func:`repro.service.fingerprint.structure_key`)
to the file holding each structure.  Its central operation is
``get_or_generate``: return the stored structure for a (circuit, config)
pair, generating and persisting it first if this is the first time the
topology is seen.  All writes are atomic (temp file + ``os.replace``) and
index writes merge with the on-disk state, so concurrent services sharing
one registry directory never observe a truncated structure or lose each
other's entries.  Simultaneous first-sight calls may duplicate a
generation run (last writer wins) — wasted work, never corruption.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.circuit.netlist import Circuit
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.core.serialization import load_structure, save_structure
from repro.core.structure import MultiPlacementStructure
from repro.obs.spans import is_enabled as _obs_enabled, metrics as _obs_metrics, span
from repro.service.fingerprint import (
    circuit_fingerprint,
    config_fingerprint,
    structure_key,
)
from repro.utils.logging_utils import get_logger

LOGGER = get_logger("service.registry")

INDEX_NAME = "index.json"
INDEX_FORMAT_VERSION = 1

#: Temp files older than this are considered orphaned by a crashed writer.
STALE_TEMP_SECONDS = 60.0


@dataclass(frozen=True)
class RegistryEntry:
    """One structure known to the registry."""

    key: str
    circuit_name: str
    circuit_fingerprint: str
    config_fingerprint: str
    #: File name of the serialized structure, relative to the registry root.
    filename: str
    num_blocks: int
    num_placements: int

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form stored in the index file."""
        return {
            "key": self.key,
            "circuit_name": self.circuit_name,
            "circuit_fingerprint": self.circuit_fingerprint,
            "config_fingerprint": self.config_fingerprint,
            "filename": self.filename,
            "num_blocks": self.num_blocks,
            "num_placements": self.num_placements,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RegistryEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        return cls(
            key=str(data["key"]),
            circuit_name=str(data["circuit_name"]),
            circuit_fingerprint=str(data["circuit_fingerprint"]),
            config_fingerprint=str(data["config_fingerprint"]),
            filename=str(data["filename"]),
            num_blocks=int(data["num_blocks"]),
            num_placements=int(data["num_placements"]),
        )


@dataclass
class RegistryStats:
    """How often the registry served from disk versus generated from scratch."""

    loads: int = 0
    generations: int = 0

    @property
    def requests(self) -> int:
        """Total fetches answered."""
        return self.loads + self.generations

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches served from disk."""
        if self.requests == 0:
            return 0.0
        return self.loads / self.requests


class StructureRegistry:
    """A directory of serialized structures with ``get_or_generate`` semantics.

    Parameters
    ----------
    root:
        Directory holding the structure files and the ``index.json`` index.
        Created (with parents) if it does not exist.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._entries: Dict[str, RegistryEntry] = {}
        self._stats = RegistryStats()
        self.reap_temp_files()
        self._load_index()

    @property
    def root(self) -> Path:
        """The registry directory."""
        return self._root

    @property
    def stats(self) -> RegistryStats:
        """Load/generation counters for this registry instance."""
        return self._stats

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[str]:
        """All registry keys, sorted."""
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """All index entries, sorted by key."""
        with self._lock:
            return [self._entries[key] for key in sorted(self._entries)]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalize(config: Optional[GeneratorConfig]) -> GeneratorConfig:
        """``None`` means the default config — key and generate it as such."""
        return config if config is not None else GeneratorConfig()

    def key_for(self, circuit: Circuit, config: Optional[GeneratorConfig] = None) -> str:
        """The registry key of ``circuit`` under ``config``.

        ``config=None`` and ``config=GeneratorConfig()`` are the same slot:
        both generate with the default configuration, so they must not
        occupy (and regenerate) two.
        """
        return structure_key(circuit, self._normalize(config))

    def contains(self, circuit: Circuit, config: Optional[GeneratorConfig] = None) -> bool:
        """True when a structure for (``circuit``, ``config``) is registered."""
        with self._lock:
            return self.key_for(circuit, config) in self._entries

    def entry(self, key: str) -> Optional[RegistryEntry]:
        """The index entry under ``key``, or ``None``."""
        with self._lock:
            return self._entries.get(key)

    def get(
        self, circuit: Circuit, config: Optional[GeneratorConfig] = None
    ) -> Optional[MultiPlacementStructure]:
        """Load the stored structure for (``circuit``, ``config``), or ``None``."""
        with self._lock:
            entry = self._entries.get(self.key_for(circuit, config))
            if entry is None:
                return None
            path = self._root / entry.filename
        structure = load_structure(path)
        self._stats.loads += 1
        return structure

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def put(
        self,
        structure: MultiPlacementStructure,
        config: Optional[GeneratorConfig] = None,
    ) -> RegistryEntry:
        """Persist ``structure`` under its (circuit, config) key and index it.

        An existing structure under the same key is replaced atomically.
        """
        circuit = structure.circuit
        key = self.key_for(circuit, config)
        entry = RegistryEntry(
            key=key,
            circuit_name=circuit.name,
            circuit_fingerprint=circuit_fingerprint(circuit),
            config_fingerprint=config_fingerprint(self._normalize(config)),
            filename=f"{key}.json",
            num_blocks=circuit.num_blocks,
            num_placements=structure.num_placements,
        )
        save_structure(structure, self._root / entry.filename)
        with self._lock:
            self._entries[key] = entry
            self._write_index()
        return entry

    def fetch(
        self,
        circuit: Circuit,
        config: Optional[GeneratorConfig] = None,
    ) -> Tuple[MultiPlacementStructure, bool]:
        """``(structure, generated)`` for the pair, generating on first sight.

        ``generated`` is True when the structure was built by this call
        (registry miss) and False when it was served from disk.
        """
        with span("registry.fetch", circuit=circuit.name) as obs_span:
            structure = self.get(circuit, config)
            if structure is not None:
                obs_span.set(hit=True)
                if _obs_enabled():
                    _obs_metrics().inc("registry.loads")
                return structure, False
            LOGGER.info(
                "registry miss for circuit %s (key %s); generating",
                circuit.name,
                self.key_for(circuit, config),
            )
            obs_span.set(hit=False)
            with span("registry.generate", circuit=circuit.name):
                generator = MultiPlacementGenerator(circuit, self._normalize(config))
                structure = generator.generate()
            self.put(structure, config)
            self._stats.generations += 1
            if _obs_enabled():
                _obs_metrics().inc("registry.generations")
            return structure, True

    def get_or_generate(
        self,
        circuit: Circuit,
        config: Optional[GeneratorConfig] = None,
    ) -> MultiPlacementStructure:
        """The stored structure for (``circuit``, ``config``), generating if absent."""
        structure, _ = self.fetch(circuit, config)
        return structure

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def reload(self) -> None:
        """Re-read the on-disk index, picking up other processes' writes.

        The in-memory entry table is a point-in-time view; concurrent
        services sharing one directory call this (under an advisory lock)
        before deciding a structure is missing, so a sibling's freshly
        indexed structure is never regenerated.
        """
        with self._lock:
            self._load_index()

    def reap_temp_files(self, max_age_seconds: float = STALE_TEMP_SECONDS) -> List[Path]:
        """Delete orphaned ``*.tmp`` files left by crashed writers.

        Atomic writes stage their payload in a ``.{name}.XXXX.tmp`` file
        before :func:`os.replace`; a writer killed between the two steps
        leaks the temp file forever.  Files younger than
        ``max_age_seconds`` are left alone — they may belong to a write in
        flight in another process.  Runs automatically on registry open;
        returns the paths it removed.
        """
        reaped: List[Path] = []
        now = time.time()
        try:
            candidates = list(self._root.iterdir())
        except OSError:
            return reaped
        for path in candidates:
            if not (path.is_file() and path.suffix == ".tmp"):
                continue
            try:
                if now - path.stat().st_mtime < max_age_seconds:
                    continue
                path.unlink()
                reaped.append(path)
            except OSError:
                continue  # a concurrent writer finished (or reaped) it first
        return reaped

    def clear(self) -> None:
        """Delete every registered structure file and empty the index."""
        with self._lock:
            for entry in self._entries.values():
                try:
                    os.unlink(self._root / entry.filename)
                except OSError:
                    pass
            self._entries = {}
            self._write_index(merge=False)

    # ------------------------------------------------------------------ #
    # Index I/O
    # ------------------------------------------------------------------ #
    def _index_path(self) -> Path:
        return self._root / INDEX_NAME

    def _read_index_entries(self) -> Dict[str, RegistryEntry]:
        path = self._index_path()
        if not path.exists():
            return {}
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
        version = data.get("format_version")
        if version != INDEX_FORMAT_VERSION:
            raise ValueError(f"unsupported registry index version {version!r}")
        return {entry["key"]: RegistryEntry.from_dict(entry) for entry in data["entries"]}

    def _load_index(self) -> None:
        self._entries = self._read_index_entries()

    def _write_index(self, merge: bool = True) -> None:
        # Fold in entries another process indexed since our last read so a
        # shared registry directory never loses them (clear() opts out).
        if merge:
            try:
                on_disk = self._read_index_entries()
            except (ValueError, OSError, json.JSONDecodeError, KeyError):
                on_disk = {}
            for key, entry in on_disk.items():
                self._entries.setdefault(key, entry)
        payload = json.dumps(
            {
                "format_version": INDEX_FORMAT_VERSION,
                "entries": [self._entries[key].to_dict() for key in sorted(self._entries)],
            },
            indent=2,
        )
        path = self._index_path()
        fd, tmp_name = tempfile.mkstemp(
            dir=self._root, prefix=f".{INDEX_NAME}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StructureRegistry(root={str(self._root)!r}, structures={len(self)})"
