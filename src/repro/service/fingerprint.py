"""Canonical topology fingerprints for keying placement structures.

A multi-placement structure is generated once per topology (Figure 1.a) and
then queried thousands of times (Figure 1.b); to *serve* structures, the
registry must be able to answer "do I already have one for this circuit?"
The fingerprint is a canonical, order-insensitive hash of everything a
structure depends on — blocks (with dimension bounds, device types and
pins), nets (with terminals, weights and I/O positions) and symmetry
groups — so two declarations of the same topology hash identically no
matter the order their blocks or nets were added in.

Generation configuration is hashed separately (:func:`config_fingerprint`):
the same circuit generated under different SA budgets or canvas factors
yields different structures and must occupy different registry slots.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Optional

from repro.circuit.netlist import Circuit

#: Number of hex digits kept when composing registry keys from fingerprints.
KEY_DIGEST_CHARS = 16


def canonical_circuit_dict(circuit: Circuit, include_name: bool = False) -> Dict[str, Any]:
    """A canonical plain-data form of ``circuit``, insensitive to declaration order.

    Blocks, nets, symmetry groups, pins, terminals and symmetry pairs are
    all sorted, so circuits that differ only in the order their parts were
    added produce identical dictionaries.  The circuit *name* is excluded
    by default because it is a label, not topology: a structure generated
    for the topology serves every identically-shaped circuit.
    """
    data: Dict[str, Any] = {
        "blocks": sorted(
            (
                {
                    "name": block.name,
                    "bounds": [block.min_w, block.max_w, block.min_h, block.max_h],
                    "device_type": block.device_type.value,
                    "generator": block.generator,
                    "symmetry_group": block.symmetry_group,
                    "pins": sorted(
                        [pin.name, pin.fx, pin.fy] for pin in block.pins.values()
                    ),
                }
                for block in circuit.blocks
            ),
            key=lambda entry: entry["name"],
        ),
        "nets": sorted(
            (
                {
                    "name": net.name,
                    "terminals": sorted([t.block, t.pin] for t in net.terminals),
                    "weight": net.weight,
                    "external": net.external,
                    "io_position": list(net.io_position),
                }
                for net in circuit.nets
            ),
            key=lambda entry: entry["name"],
        ),
        "symmetry_groups": sorted(
            (
                {
                    "name": group.name,
                    "pairs": sorted(list(pair) for pair in group.pairs),
                    "self_symmetric": sorted(group.self_symmetric),
                }
                for group in circuit.symmetry_groups
            ),
            key=lambda entry: entry["name"],
        ),
    }
    if include_name:
        data["name"] = circuit.name
    return data


def _digest(data: Any) -> str:
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def circuit_fingerprint(circuit: Circuit, include_name: bool = False) -> str:
    """Hex SHA-256 of the canonical form of ``circuit``."""
    return _digest(canonical_circuit_dict(circuit, include_name=include_name))


def config_fingerprint(config: Optional[object]) -> str:
    """Hex SHA-256 of a generation configuration (``None`` hashes the empty config).

    Accepts any dataclass (e.g. :class:`repro.core.generator.GeneratorConfig`,
    whose nested explorer/BDIO/cost-weight dataclasses flatten via
    :func:`dataclasses.asdict`) or any JSON-serializable mapping.
    """
    if config is None:
        return _digest({})
    if is_dataclass(config) and not isinstance(config, type):
        return _digest(asdict(config))
    return _digest(config)


def structure_key(circuit: Circuit, config: Optional[object] = None) -> str:
    """The registry key for ``circuit`` generated under ``config``.

    ``<circuit-digest>-<config-digest>`` with both digests truncated to
    :data:`KEY_DIGEST_CHARS` hex characters — short enough for file names,
    long enough that collisions are never a practical concern.
    """
    return (
        f"{circuit_fingerprint(circuit)[:KEY_DIGEST_CHARS]}"
        f"-{config_fingerprint(config)[:KEY_DIGEST_CHARS]}"
    )
