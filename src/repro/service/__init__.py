"""Placement-as-a-service: registry, caching and batched instantiation.

The paper's offline/online split (generate once per topology, query
thousands of times per synthesis run) becomes an operable service here:

* :mod:`repro.service.fingerprint` — canonical, order-insensitive topology
  hashes that key structures by what they were generated for.
* :mod:`repro.service.registry` — the on-disk structure library with
  ``get_or_generate`` semantics and atomic writes.
* :mod:`repro.service.cache` — bounded LRU caching of loaded structures
  and memoization of repeated dimension-vector queries.
* :mod:`repro.service.batch` — batched instantiation with duplicate
  elimination and ``concurrent.futures`` fan-out.
* :mod:`repro.service.engine` — the :class:`PlacementService` facade with
  per-tier hit/miss/latency statistics.
* :mod:`repro.service.placer` — :class:`ServicePlacer`, the service as a
  unified :class:`repro.api.Placer` engine (registry kind ``"service"``).
"""

from repro.service.batch import BatchResult, instantiate_batch
from repro.service.cache import CacheStats, LRUCache, MemoizingInstantiator
from repro.service.engine import PlacementService, ServiceStats
from repro.service.placer import ServicePlacer
from repro.service.fingerprint import (
    canonical_circuit_dict,
    circuit_fingerprint,
    config_fingerprint,
    structure_key,
)
from repro.service.registry import RegistryEntry, RegistryStats, StructureRegistry

__all__ = [
    "BatchResult",
    "instantiate_batch",
    "CacheStats",
    "LRUCache",
    "MemoizingInstantiator",
    "PlacementService",
    "ServicePlacer",
    "ServiceStats",
    "canonical_circuit_dict",
    "circuit_fingerprint",
    "config_fingerprint",
    "structure_key",
    "RegistryEntry",
    "RegistryStats",
    "StructureRegistry",
]
