"""The placement service facade.

:class:`PlacementService` is the front door of the subsystem: callers hand
it a circuit and dimension vectors and get placements back, while the
service transparently

* keys the circuit by topology fingerprint,
* serves the structure from its in-memory LRU, the on-disk registry, or a
  fresh generation run (in that order),
* memoizes repeated queries and deduplicates batches, and
* tracks per-tier hit counters (``structure`` / ``nearest`` / ``fallback``)
  plus cache and latency statistics, so the offline/online split of the
  paper becomes observable in production.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel imports service)
    from repro.parallel.pool import WorkerPool

from repro.circuit.netlist import Circuit
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.api.placement import (
    Placement,
    SOURCE_FALLBACK,
    SOURCE_NEAREST,
    SOURCE_STRUCTURE,
)
from repro.core.instantiator import FALLBACK_BEST_STORED, PlacementInstantiator
from repro.core.placement_entry import Dims
from repro.core.structure import MultiPlacementStructure
from repro.geometry.rect import Rect
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import is_enabled as _obs_enabled, metrics as _obs_metrics, span
from repro.route.batch import RectsKey, rects_key
from repro.route.result import RoutedLayout
from repro.route.router import RouterConfig, route_placement
from repro.service.batch import BatchResult, instantiate_batch
from repro.service.cache import LRUCache, MemoizingInstantiator
from repro.service.fingerprint import structure_key
from repro.service.registry import StructureRegistry
from repro.utils.timer import Timer


class ServiceStats:
    """Counters describing everything a :class:`PlacementService` served.

    Tier counters follow the instantiator's three-tier lookup: a
    ``structure`` hit is the strict Equation 4/5 containment lookup, a
    ``nearest`` hit reuses the best legal stored placement outside every
    box, and ``fallback`` is the template placement of last resort.

    Since the observability layer landed, the counters are *views* over a
    :class:`~repro.obs.MetricsRegistry` (one private registry per stats
    object, exposed as :attr:`metrics`) — attribute reads and ``+=``
    updates behave exactly as the old dataclass fields did, and every
    update is additionally mirrored into the process-global
    ``repro.obs.metrics()`` registry under the same ``service.*`` names
    while tracing is enabled.
    """

    #: Integer-valued counters, in :meth:`as_dict` order.
    INT_FIELDS = (
        "queries",
        "batches",
        "structure_hits",
        "nearest_hits",
        "fallback_hits",
        #: Queries answered from a per-structure memo table.
        "memo_hits",
        #: Batch queries answered by deduplication against the same batch.
        "dedup_hits",
        #: Structures served from the on-disk registry.
        "structures_loaded",
        #: Structures generated because no tier had them.
        "structures_generated",
        #: Instantiators served from the in-memory LRU.
        "cache_hits",
        "cache_misses",
        #: Routing queries served (placements turned into routed layouts).
        "route_queries",
        #: Routing queries answered from the route cache.
        "route_cache_hits",
        #: Vectorized batch cost sweeps run by the served instantiators.
        "batch_evals",
        #: Candidate layouts scored inside those sweeps.
        "batch_candidates",
        #: Batches that fell back to the scalar evaluation loop.
        "vector_fallbacks",
    )
    #: Seconds-valued counters (wall-clock answering / routing time).
    FLOAT_FIELDS = ("total_seconds", "route_seconds")
    _COUNTER_FIELDS = frozenset(INT_FIELDS + FLOAT_FIELDS)
    #: Namespace the counters occupy in both registries.
    METRIC_PREFIX = "service."

    def __init__(self, **initial: float) -> None:
        object.__setattr__(self, "_metrics", MetricsRegistry())
        for name in self.INT_FIELDS + self.FLOAT_FIELDS:
            self._metrics.counter(self.METRIC_PREFIX + name)
        for name, value in initial.items():
            if name not in self._COUNTER_FIELDS:
                raise TypeError(f"unknown ServiceStats field {name!r}")
            setattr(self, name, value)

    @property
    def metrics(self) -> MetricsRegistry:
        """The backing metrics registry (counter names: ``service.*``)."""
        return self._metrics

    def __getattr__(self, name: str):
        # Only reached for names without a real attribute — i.e. the
        # counter fields, which live in the backing registry.
        if name in ServiceStats._COUNTER_FIELDS:
            value = self._metrics.counter(ServiceStats.METRIC_PREFIX + name).value
            return float(value) if name in ServiceStats.FLOAT_FIELDS else int(value)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        if name in self._COUNTER_FIELDS:
            counter = self._metrics.counter(self.METRIC_PREFIX + name)
            delta = float(value) - counter.value
            counter.set(float(value))
            if delta and _obs_enabled():
                _obs_metrics().counter(self.METRIC_PREFIX + name).inc(delta)
            return
        object.__setattr__(self, name, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ServiceStats(queries={self.queries}, batches={self.batches}, "
            f"structure_hits={self.structure_hits})"
        )

    @property
    def tier_counts(self) -> Dict[str, int]:
        """Per-tier hit counters keyed by the instantiator's source tags."""
        return {
            SOURCE_STRUCTURE: self.structure_hits,
            SOURCE_NEAREST: self.nearest_hits,
            SOURCE_FALLBACK: self.fallback_hits,
        }

    @property
    def structure_hit_rate(self) -> float:
        """Fraction of queries answered by strict containment."""
        if self.queries == 0:
            return 0.0
        return self.structure_hits / self.queries

    @property
    def mean_latency_seconds(self) -> float:
        """Average wall-clock seconds per query."""
        if self.queries == 0:
            return 0.0
        return self.total_seconds / self.queries

    def record_source(self, source: str, count: int = 1) -> None:
        """Add ``count`` hits to the tier identified by ``source``."""
        if source == SOURCE_STRUCTURE:
            self.structure_hits += count
        elif source == SOURCE_NEAREST:
            self.nearest_hits += count
        elif source == SOURCE_FALLBACK:
            self.fallback_hits += count
        else:
            raise ValueError(f"unknown placement source {source!r}")

    def snapshot(self) -> "ServiceStats":
        """An independent copy of the current counters."""
        copy = ServiceStats()
        for name in self.INT_FIELDS + self.FLOAT_FIELDS:
            # Copy into the private registry directly: a snapshot is a
            # read, so it must not mirror into the global metrics again.
            copy._metrics.counter(self.METRIC_PREFIX + name).set(
                self._metrics.counter(self.METRIC_PREFIX + name).value
            )
        return copy

    #: Counter fields that merge additively across workers (derived rates
    #: and per-request tallies the parent already counts are excluded).
    WORKER_MERGE_FIELDS = (
        "memo_hits",
        "structures_loaded",
        "structures_generated",
        "cache_hits",
        "cache_misses",
        "batch_evals",
        "batch_candidates",
        "vector_fallbacks",
    )

    def merge_worker_counters(self, counters: Mapping[str, float]) -> None:
        """Fold a worker's ``ServiceStats.as_dict`` delta into these counters.

        Only infrastructure counters merge: the parent service counts
        queries, batches, tier hits and latency itself (from the results
        it hands back), so merging those again would double-count.  What
        the parent *cannot* see — which worker loaded or generated a
        structure, hit its LRU, or answered from its memo table — flows in
        here.
        """
        for name in self.WORKER_MERGE_FIELDS:
            value = counters.get(name)
            if isinstance(value, (int, float)) and value:
                setattr(self, name, getattr(self, name) + int(value))

    def as_dict(self) -> Dict[str, float]:
        """Plain-data form for reports and benchmark output."""
        return {
            "queries": self.queries,
            "batches": self.batches,
            "structure_hits": self.structure_hits,
            "nearest_hits": self.nearest_hits,
            "fallback_hits": self.fallback_hits,
            "memo_hits": self.memo_hits,
            "dedup_hits": self.dedup_hits,
            "structures_loaded": self.structures_loaded,
            "structures_generated": self.structures_generated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "total_seconds": self.total_seconds,
            "structure_hit_rate": self.structure_hit_rate,
            "mean_latency_seconds": self.mean_latency_seconds,
            "route_queries": self.route_queries,
            "route_cache_hits": self.route_cache_hits,
            "route_seconds": self.route_seconds,
            "batch_evals": self.batch_evals,
            "batch_candidates": self.batch_candidates,
            "vector_fallbacks": self.vector_fallbacks,
        }

    def merge_vector_delta(
        self, before: Mapping[str, int], after: Mapping[str, int]
    ) -> None:
        """Fold an instantiator's ``vector_stats()`` before/after delta in."""
        for name in ("batch_evals", "batch_candidates", "vector_fallbacks"):
            delta = int(after.get(name, 0)) - int(before.get(name, 0))
            if delta:
                setattr(self, name, getattr(self, name) + delta)


class PlacementService:
    """Serve placements for any circuit from one long-lived object.

    Parameters
    ----------
    registry:
        Optional on-disk structure library.  Without one the service still
        works, generating structures in memory (and losing them when the
        instantiator cache evicts them).
    default_config:
        Generation configuration used when a call does not pass its own.
    cache_capacity:
        Number of (structure, instantiator) pairs kept loaded.
    memo_capacity:
        Per-structure bound on memoized dimension-vector queries.
    fallback_mode:
        Passed through to every :class:`PlacementInstantiator`.
    max_workers:
        Default worker count for :meth:`instantiate_batch`.
    route_cache_capacity:
        Number of routed layouts kept alongside the placements; routes
        are keyed by the structure fingerprint plus the placed rects, so
        re-routing the same floorplan is a cache hit.
    default_router:
        Router configuration used when a routing call does not pass its
        own.
    """

    def __init__(
        self,
        registry: Optional[StructureRegistry] = None,
        default_config: Optional[GeneratorConfig] = None,
        cache_capacity: int = 8,
        memo_capacity: int = 4096,
        fallback_mode: str = FALLBACK_BEST_STORED,
        max_workers: Optional[int] = None,
        route_cache_capacity: int = 256,
        default_router: Optional[RouterConfig] = None,
    ) -> None:
        self._registry = registry
        self._default_config = default_config
        self._cache_capacity = cache_capacity
        self._memo_capacity = memo_capacity
        self._fallback_mode = fallback_mode
        self._max_workers = max_workers
        self._instantiators: LRUCache[str, MemoizingInstantiator] = LRUCache(cache_capacity)
        self._routes: LRUCache[Tuple[str, RectsKey, Optional[RouterConfig]], RoutedLayout] = (
            LRUCache(route_cache_capacity)
        )
        self._default_router = default_router
        self._stats = ServiceStats()
        self._lock = threading.RLock()
        # Process pools for the workers=N fan-out, keyed by worker count
        # and reused across batches (workers cache their placers, so a
        # warm pool answers from loaded structures).
        self._pools: Dict[int, "WorkerPool"] = {}

    @property
    def registry(self) -> Optional[StructureRegistry]:
        """The backing structure library, if any."""
        return self._registry

    @property
    def default_config(self) -> Optional[GeneratorConfig]:
        """The generation config used when a call passes none."""
        return self._default_config

    @property
    def stats(self) -> ServiceStats:
        """Live counters (use :meth:`ServiceStats.snapshot` to freeze them)."""
        return self._stats

    def snapshot(self) -> ServiceStats:
        """A *consistent* frozen copy of the counters.

        Every counter update in this service happens under the service
        lock in one atomic group (a query bumps ``queries``, its tier
        counter and ``total_seconds`` together); ``snapshot`` takes the
        same lock, so a reader never observes a torn state — e.g. a query
        counted whose tier hit is missing.  This is the read path the
        serving layer's ``/metrics`` endpoint and the batcher use while
        requests are in flight; reading :attr:`stats` fields directly is
        only safe when nothing is concurrently serving.
        """
        with self._lock:
            return self._stats.snapshot()

    def reset_stats(self) -> ServiceStats:
        """Replace the counters with zeros and return the old ones."""
        with self._lock:
            old = self._stats
            self._stats = ServiceStats()
            return old

    # ------------------------------------------------------------------ #
    # Structure provisioning
    # ------------------------------------------------------------------ #
    def warm(
        self, circuit: Circuit, config: Optional[GeneratorConfig] = None
    ) -> MultiPlacementStructure:
        """Ensure the structure for (``circuit``, ``config``) is loaded and return it."""
        return self.instantiator_for(circuit, config).structure

    def adopt(
        self, structure: MultiPlacementStructure, config: Optional[GeneratorConfig] = None
    ) -> None:
        """Seed the service with an already-generated ``structure``.

        Queries for the structure's circuit under ``config`` (default: the
        service's default config) are then served from it directly — the
        generation cost is never paid again, even without a registry.
        When the service *has* a registry, the structure is persisted into
        it too, so the ``workers=N`` process fan-out (whose workers answer
        from the registry) and future services see the adopted structure
        instead of regenerating a default one.
        """
        config = config if config is not None else self._default_config
        key = structure_key(structure.circuit, config)
        if self._registry is not None:
            self._registry.put(structure, config)
        with self._lock:
            memoizing = MemoizingInstantiator(
                PlacementInstantiator(structure, fallback_mode=self._fallback_mode),
                capacity=self._memo_capacity,
            )
            self._instantiators.put(key, memoizing)

    def instantiator_for(
        self, circuit: Circuit, config: Optional[GeneratorConfig] = None
    ) -> MemoizingInstantiator:
        """The memoizing instantiator serving (``circuit``, ``config``).

        Resolution order: in-memory LRU, then the registry (which itself
        generates on a miss), then a direct in-memory generation run when
        the service has no registry.
        """
        config = config if config is not None else self._default_config
        key = structure_key(circuit, config)
        with self._lock:
            cached = self._instantiators.get(key)
            if cached is not None:
                self._stats.cache_hits += 1
                return cached
            self._stats.cache_misses += 1
            if self._registry is not None:
                structure, generated = self._registry.fetch(circuit, config)
                if generated:
                    self._stats.structures_generated += 1
                else:
                    self._stats.structures_loaded += 1
            else:
                generator = MultiPlacementGenerator(circuit, config or GeneratorConfig())
                structure = generator.generate()
                self._stats.structures_generated += 1
            memoizing = MemoizingInstantiator(
                PlacementInstantiator(structure, fallback_mode=self._fallback_mode),
                capacity=self._memo_capacity,
            )
            self._instantiators.put(key, memoizing)
            return memoizing

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def instantiate(
        self,
        circuit: Circuit,
        dims: Sequence[Dims],
        config: Optional[GeneratorConfig] = None,
    ) -> Placement:
        """Serve one placement for ``dims`` (given in ``circuit`` block order)."""
        with span("service.instantiate", circuit=circuit.name) as obs_span:
            with Timer() as timer:
                instantiator = self.instantiator_for(circuit, config)
                mapped = _map_dims(circuit, instantiator.structure.circuit, dims)
                vector_before = instantiator.vector_stats()
                result, from_memo = instantiator.instantiate_with_info(mapped)
                vector_after = instantiator.vector_stats()
            obs_span.set(source=result.source, memo_hit=from_memo)
        with self._lock:
            stats = self._stats
            stats.queries += 1
            stats.record_source(result.source)
            if from_memo:
                stats.memo_hits += 1
            stats.total_seconds += timer.elapsed
            stats.merge_vector_delta(vector_before, vector_after)
        if _obs_enabled():
            _obs_metrics().observe("service.query_seconds", timer.elapsed)
        return result

    def instantiate_batch(
        self,
        circuit: Circuit,
        dims_batch: Sequence[Sequence[Dims]],
        config: Optional[GeneratorConfig] = None,
        max_workers: Optional[int] = None,
        workers: Optional[int] = None,
        pin_slot: Optional[int] = None,
    ) -> BatchResult:
        """Serve a whole batch of queries with deduplication and fan-out.

        ``max_workers`` sizes the historical in-process *thread* pool;
        ``workers`` asks for a real *process* pool instead — the batch is
        deduplicated, sharded into picklable jobs, and each worker rebuilds
        a service over this service's registry (so the structure loads once
        per worker and the per-worker :class:`ServiceStats` deltas merge
        back into these counters).  Needs a registry; without one the call
        degrades to the thread path.  ``pin_slot`` (with ``workers``)
        routes the whole batch to one dedicated worker process — the
        shard-affine path, where the owner of the circuit's registry shard
        answers from warm caches instead of fanning out.
        """
        with span(
            "service.instantiate_batch",
            circuit=circuit.name,
            queries=len(dims_batch),
            workers=workers or 0,
        ) as obs_span:
            if workers is not None and workers > 1 and self._registry is not None:
                batch = self._instantiate_batch_processes(
                    circuit, dims_batch, config, workers, pin_slot=pin_slot
                )
                obs_span.set(
                    unique=batch.unique_queries, dedup=batch.duplicate_queries
                )
                return batch
            with Timer() as timer:
                instantiator = self.instantiator_for(circuit, config)
                structure_circuit = instantiator.structure.circuit
                if circuit.block_names() == structure_circuit.block_names():
                    mapped_batch = dims_batch
                else:
                    mapped_batch = [
                        _map_dims(circuit, structure_circuit, dims) for dims in dims_batch
                    ]
                memo_hits_before = instantiator.memo_stats.hits
                vector_before = instantiator.vector_stats()
                batch = instantiate_batch(
                    instantiator,
                    mapped_batch,
                    max_workers=max_workers if max_workers is not None else self._max_workers,
                )
                memo_delta = instantiator.memo_stats.hits - memo_hits_before
                vector_after = instantiator.vector_stats()
            obs_span.set(unique=batch.unique_queries, dedup=batch.duplicate_queries)
        with self._lock:
            stats = self._stats
            stats.batches += 1
            stats.queries += batch.total_queries
            stats.dedup_hits += batch.duplicate_queries
            stats.memo_hits += memo_delta
            for source, count in batch.source_counts.items():
                stats.record_source(source, count)
            stats.total_seconds += timer.elapsed
            stats.merge_vector_delta(vector_before, vector_after)
        if _obs_enabled():
            _obs_metrics().observe("service.batch_seconds", timer.elapsed)
        return batch

    # ------------------------------------------------------------------ #
    # Process fan-out
    # ------------------------------------------------------------------ #
    def _pool_for(self, workers: int) -> "WorkerPool":
        from repro.parallel.pool import WorkerPool

        with self._lock:
            pool = self._pools.get(workers)
            if pool is None:
                pool = WorkerPool(workers=workers)
                self._pools[workers] = pool
            return pool

    def prestart_pool(
        self, workers: Optional[int], pin_slots: Sequence[int] = ()
    ) -> None:
        """Fork the fan-out pool for ``workers`` now (see WorkerPool.prestart).

        Servers call this at startup so every worker process — including
        the shard-pinned slots — forks before request threads exist;
        forking mid-traffic risks inheriting a sibling thread's held
        import lock into the child, deadlocking it.  A no-op without a
        registry or with ``workers <= 1`` (those paths never fork).
        """
        if workers is None or workers <= 1 or self._registry is None:
            return
        self._pool_for(workers).prestart(pin_slots)

    def _worker_spec(self, config: Optional[GeneratorConfig]) -> Dict[str, object]:
        """The declarative spec a worker rebuilds this service from.

        Ships the *resolved* generation config (never the ``scale`` name),
        so the worker's registry keys match the parent's exactly.
        """
        assert self._registry is not None
        config = config if config is not None else self._default_config
        return {
            "kind": "service",
            "registry": str(self._registry.root),
            "config": config if config is not None else GeneratorConfig(),
            "cache": self._cache_capacity,
            "memo": self._memo_capacity,
            "fallback": self._fallback_mode,
        }

    def _instantiate_batch_processes(
        self,
        circuit: Circuit,
        dims_batch: Sequence[Sequence[Dims]],
        config: Optional[GeneratorConfig],
        workers: int,
        pin_slot: Optional[int] = None,
    ) -> BatchResult:
        from repro.core.serialization import circuit_to_dict

        with Timer() as timer:
            pool = self._pool_for(workers)
            results, merged = pool.place_batch(
                circuit_to_dict(circuit),
                self._worker_spec(config),
                dims_batch,
                pin_slot=pin_slot,
            )
        source_counts: Dict[str, int] = {}
        for result in results:
            source_counts[result.source] = source_counts.get(result.source, 0) + 1
        duplicates = int(merged.get("pool_dedup_hits", 0))
        with self._lock:
            stats = self._stats
            stats.batches += 1
            stats.queries += len(results)
            stats.dedup_hits += duplicates
            for source, count in source_counts.items():
                stats.record_source(source, count)
            stats.total_seconds += timer.elapsed
            stats.merge_worker_counters(merged)
        return BatchResult(
            results=list(results),
            unique_queries=int(merged.get("pool_unique_queries", len(results))),
            duplicate_queries=duplicates,
            elapsed_seconds=timer.elapsed,
            source_counts=source_counts,
            pool_stats=merged,
        )

    def close(self) -> None:
        """Shut down any process pools the fan-out paths started."""
        with self._lock:
            pools, self._pools = self._pools, {}
        for pool in pools.values():
            pool.close()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(
        self,
        circuit: Circuit,
        dims: Sequence[Dims],
        config: Optional[GeneratorConfig] = None,
        router: Optional[RouterConfig] = None,
    ) -> Tuple[Placement, RoutedLayout]:
        """Serve one placement for ``dims`` *with* its routed layout.

        The returned placement carries the routing statistics in
        ``metadata["routing"]``; the full :class:`RoutedLayout` rides
        alongside for consumers that need per-net paths.
        """
        placement = self.instantiate(circuit, dims, config)
        layout = self.route_rects(circuit, placement.rects, config=config, router=router)
        return placement.with_routing(layout), layout

    def route_rects(
        self,
        circuit: Circuit,
        rects: Mapping[str, Rect],
        config: Optional[GeneratorConfig] = None,
        router: Optional[RouterConfig] = None,
    ) -> RoutedLayout:
        """Route an already-placed floorplan, through the route cache.

        Routes are cached next to the placements, keyed by the structure
        fingerprint of (``circuit``, ``config``) plus the placed rects and
        the router configuration — identical floorplans of the same
        topology route once.
        """
        router = router if router is not None else self._default_router
        config = config if config is not None else self._default_config
        with span("service.route", circuit=circuit.name) as obs_span:
            with Timer() as timer:
                key = (structure_key(circuit, config), rects_key(rects), router)
                layout = self._routes.get(key)
                cached = layout is not None
                if layout is None:
                    layout = route_placement(circuit, rects, config=router)
                    self._routes.put(key, layout)
            obs_span.set(cache_hit=cached)
        with self._lock:
            self._stats.route_queries += 1
            if cached:
                self._stats.route_cache_hits += 1
            self._stats.route_seconds += timer.elapsed
        if _obs_enabled():
            _obs_metrics().observe("service.route_seconds", timer.elapsed)
        return layout

    def route_batch(
        self,
        circuit: Circuit,
        dims_batch: Sequence[Sequence[Dims]],
        config: Optional[GeneratorConfig] = None,
        router: Optional[RouterConfig] = None,
        workers: Optional[int] = None,
    ) -> List[Tuple[Placement, RoutedLayout]]:
        """Serve a batch of placements *with* routed layouts.

        Placements come from :meth:`instantiate_batch` (``workers`` fans
        both stages across the same process pool); distinct floorplans are
        then routed once each — first through the route cache, the cache
        misses across the pool — and every duplicate shares the layout.
        """
        with span(
            "service.route_batch",
            circuit=circuit.name,
            queries=len(dims_batch),
            workers=workers or 0,
        ) as obs_span:
            return self._route_batch_inner(
                circuit, dims_batch, config, router, workers, obs_span
            )

    def _route_batch_inner(
        self,
        circuit: Circuit,
        dims_batch: Sequence[Sequence[Dims]],
        config: Optional[GeneratorConfig],
        router: Optional[RouterConfig],
        workers: Optional[int],
        obs_span,
    ) -> List[Tuple[Placement, RoutedLayout]]:
        batch = self.instantiate_batch(circuit, dims_batch, config, workers=workers)
        router_config = router if router is not None else self._default_router
        skey = structure_key(
            circuit, config if config is not None else self._default_config
        )
        with Timer() as timer:
            # One routing job per distinct floorplan; cache hits never route.
            order: List[RectsKey] = []
            rects_by_key: Dict[RectsKey, Mapping[str, Rect]] = {}
            for placement in batch.results:
                key = rects_key(placement.rects)
                if key not in rects_by_key:
                    rects_by_key[key] = placement.rects
                    order.append(key)
            layouts: Dict[RectsKey, RoutedLayout] = {}
            misses: List[RectsKey] = []
            cache_hits = 0
            for key in order:
                cached = self._routes.get((skey, key, router_config))
                if cached is not None:
                    layouts[key] = cached
                    cache_hits += 1
                else:
                    misses.append(key)
            if misses:
                if workers is not None and workers > 1 and len(misses) > 1:
                    from repro.core.serialization import circuit_to_dict

                    routed, _ = self._pool_for(workers).route_batch(
                        circuit_to_dict(circuit),
                        [
                            {
                                name: (rect.x, rect.y, rect.w, rect.h)
                                for name, rect in rects_by_key[key].items()
                            }
                            for key in misses
                        ],
                        router_config,
                    )
                else:
                    routed = [
                        route_placement(
                            circuit, rects_by_key[key], config=router_config
                        )
                        for key in misses
                    ]
                for key, layout in zip(misses, routed):
                    layouts[key] = layout
                    self._routes.put((skey, key, router_config), layout)
        obs_span.set(unique_floorplans=len(order), route_cache_hits=cache_hits)
        with self._lock:
            self._stats.route_queries += len(batch.results)
            self._stats.route_cache_hits += cache_hits
            self._stats.route_seconds += timer.elapsed
        if _obs_enabled():
            _obs_metrics().observe("service.route_seconds", timer.elapsed)
        return [
            (placement.with_routing(layouts[rects_key(placement.rects)]),
             layouts[rects_key(placement.rects)])
            for placement in batch.results
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        registry = "none" if self._registry is None else str(self._registry.root)
        return (
            f"PlacementService(registry={registry!r}, "
            f"cached={len(self._instantiators)}, queries={self._stats.queries})"
        )


def _map_dims(
    caller: Circuit, served: Circuit, dims: Sequence[Dims]
) -> Tuple[Dims, ...]:
    """Reorder ``dims`` from the caller's block order to the served circuit's.

    Fingerprints are order-insensitive, so a registry structure may have
    been generated from a permutation of the caller's block list; block
    names identify the mapping.
    """
    if len(dims) != caller.num_blocks:
        raise ValueError(
            f"dimension vector must have {caller.num_blocks} entries, got {len(dims)}"
        )
    caller_names = caller.block_names()
    served_names = served.block_names()
    if caller_names == served_names:
        return tuple((int(w), int(h)) for w, h in dims)
    return tuple(
        (int(dims[caller.block_index(name)][0]), int(dims[caller.block_index(name)][1]))
        for name in served_names
    )
