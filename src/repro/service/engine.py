"""The placement service facade.

:class:`PlacementService` is the front door of the subsystem: callers hand
it a circuit and dimension vectors and get placements back, while the
service transparently

* keys the circuit by topology fingerprint,
* serves the structure from its in-memory LRU, the on-disk registry, or a
  fresh generation run (in that order),
* memoizes repeated queries and deduplicates batches, and
* tracks per-tier hit counters (``structure`` / ``nearest`` / ``fallback``)
  plus cache and latency statistics, so the offline/online split of the
  paper becomes observable in production.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.api.placement import (
    Placement,
    SOURCE_FALLBACK,
    SOURCE_NEAREST,
    SOURCE_STRUCTURE,
)
from repro.core.instantiator import FALLBACK_BEST_STORED, PlacementInstantiator
from repro.core.placement_entry import Dims
from repro.core.structure import MultiPlacementStructure
from repro.geometry.rect import Rect
from repro.route.batch import RectsKey, rects_key
from repro.route.result import RoutedLayout
from repro.route.router import RouterConfig, route_placement
from repro.service.batch import BatchResult, instantiate_batch
from repro.service.cache import LRUCache, MemoizingInstantiator
from repro.service.fingerprint import structure_key
from repro.service.registry import StructureRegistry
from repro.utils.timer import Timer


@dataclass
class ServiceStats:
    """Counters describing everything a :class:`PlacementService` served.

    Tier counters follow the instantiator's three-tier lookup: a
    ``structure`` hit is the strict Equation 4/5 containment lookup, a
    ``nearest`` hit reuses the best legal stored placement outside every
    box, and ``fallback`` is the template placement of last resort.
    """

    queries: int = 0
    batches: int = 0
    structure_hits: int = 0
    nearest_hits: int = 0
    fallback_hits: int = 0
    #: Queries answered from a per-structure memo table.
    memo_hits: int = 0
    #: Batch queries answered by deduplication against the same batch.
    dedup_hits: int = 0
    #: Structures served from the on-disk registry.
    structures_loaded: int = 0
    #: Structures generated because no tier had them.
    structures_generated: int = 0
    #: Instantiators served from the in-memory LRU.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall-clock seconds spent answering queries (includes structure setup).
    total_seconds: float = 0.0
    #: Routing queries served (placements turned into routed layouts).
    route_queries: int = 0
    #: Routing queries answered from the route cache.
    route_cache_hits: int = 0
    #: Wall-clock seconds spent routing (cache hits included).
    route_seconds: float = 0.0

    @property
    def tier_counts(self) -> Dict[str, int]:
        """Per-tier hit counters keyed by the instantiator's source tags."""
        return {
            SOURCE_STRUCTURE: self.structure_hits,
            SOURCE_NEAREST: self.nearest_hits,
            SOURCE_FALLBACK: self.fallback_hits,
        }

    @property
    def structure_hit_rate(self) -> float:
        """Fraction of queries answered by strict containment."""
        if self.queries == 0:
            return 0.0
        return self.structure_hits / self.queries

    @property
    def mean_latency_seconds(self) -> float:
        """Average wall-clock seconds per query."""
        if self.queries == 0:
            return 0.0
        return self.total_seconds / self.queries

    def record_source(self, source: str, count: int = 1) -> None:
        """Add ``count`` hits to the tier identified by ``source``."""
        if source == SOURCE_STRUCTURE:
            self.structure_hits += count
        elif source == SOURCE_NEAREST:
            self.nearest_hits += count
        elif source == SOURCE_FALLBACK:
            self.fallback_hits += count
        else:
            raise ValueError(f"unknown placement source {source!r}")

    def snapshot(self) -> "ServiceStats":
        """An independent copy of the current counters."""
        return replace(self)

    def as_dict(self) -> Dict[str, float]:
        """Plain-data form for reports and benchmark output."""
        return {
            "queries": self.queries,
            "batches": self.batches,
            "structure_hits": self.structure_hits,
            "nearest_hits": self.nearest_hits,
            "fallback_hits": self.fallback_hits,
            "memo_hits": self.memo_hits,
            "dedup_hits": self.dedup_hits,
            "structures_loaded": self.structures_loaded,
            "structures_generated": self.structures_generated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "total_seconds": self.total_seconds,
            "structure_hit_rate": self.structure_hit_rate,
            "mean_latency_seconds": self.mean_latency_seconds,
            "route_queries": self.route_queries,
            "route_cache_hits": self.route_cache_hits,
            "route_seconds": self.route_seconds,
        }


class PlacementService:
    """Serve placements for any circuit from one long-lived object.

    Parameters
    ----------
    registry:
        Optional on-disk structure library.  Without one the service still
        works, generating structures in memory (and losing them when the
        instantiator cache evicts them).
    default_config:
        Generation configuration used when a call does not pass its own.
    cache_capacity:
        Number of (structure, instantiator) pairs kept loaded.
    memo_capacity:
        Per-structure bound on memoized dimension-vector queries.
    fallback_mode:
        Passed through to every :class:`PlacementInstantiator`.
    max_workers:
        Default worker count for :meth:`instantiate_batch`.
    route_cache_capacity:
        Number of routed layouts kept alongside the placements; routes
        are keyed by the structure fingerprint plus the placed rects, so
        re-routing the same floorplan is a cache hit.
    default_router:
        Router configuration used when a routing call does not pass its
        own.
    """

    def __init__(
        self,
        registry: Optional[StructureRegistry] = None,
        default_config: Optional[GeneratorConfig] = None,
        cache_capacity: int = 8,
        memo_capacity: int = 4096,
        fallback_mode: str = FALLBACK_BEST_STORED,
        max_workers: Optional[int] = None,
        route_cache_capacity: int = 256,
        default_router: Optional[RouterConfig] = None,
    ) -> None:
        self._registry = registry
        self._default_config = default_config
        self._memo_capacity = memo_capacity
        self._fallback_mode = fallback_mode
        self._max_workers = max_workers
        self._instantiators: LRUCache[str, MemoizingInstantiator] = LRUCache(cache_capacity)
        self._routes: LRUCache[Tuple[str, RectsKey, Optional[RouterConfig]], RoutedLayout] = (
            LRUCache(route_cache_capacity)
        )
        self._default_router = default_router
        self._stats = ServiceStats()
        self._lock = threading.RLock()

    @property
    def registry(self) -> Optional[StructureRegistry]:
        """The backing structure library, if any."""
        return self._registry

    @property
    def stats(self) -> ServiceStats:
        """Live counters (use :meth:`ServiceStats.snapshot` to freeze them)."""
        return self._stats

    def reset_stats(self) -> ServiceStats:
        """Replace the counters with zeros and return the old ones."""
        with self._lock:
            old = self._stats
            self._stats = ServiceStats()
            return old

    # ------------------------------------------------------------------ #
    # Structure provisioning
    # ------------------------------------------------------------------ #
    def warm(
        self, circuit: Circuit, config: Optional[GeneratorConfig] = None
    ) -> MultiPlacementStructure:
        """Ensure the structure for (``circuit``, ``config``) is loaded and return it."""
        return self.instantiator_for(circuit, config).structure

    def adopt(
        self, structure: MultiPlacementStructure, config: Optional[GeneratorConfig] = None
    ) -> None:
        """Seed the service with an already-generated ``structure``.

        Queries for the structure's circuit under ``config`` (default: the
        service's default config) are then served from it directly — the
        generation cost is never paid again, even without a registry.
        """
        config = config if config is not None else self._default_config
        key = structure_key(structure.circuit, config)
        with self._lock:
            memoizing = MemoizingInstantiator(
                PlacementInstantiator(structure, fallback_mode=self._fallback_mode),
                capacity=self._memo_capacity,
            )
            self._instantiators.put(key, memoizing)

    def instantiator_for(
        self, circuit: Circuit, config: Optional[GeneratorConfig] = None
    ) -> MemoizingInstantiator:
        """The memoizing instantiator serving (``circuit``, ``config``).

        Resolution order: in-memory LRU, then the registry (which itself
        generates on a miss), then a direct in-memory generation run when
        the service has no registry.
        """
        config = config if config is not None else self._default_config
        key = structure_key(circuit, config)
        with self._lock:
            cached = self._instantiators.get(key)
            if cached is not None:
                self._stats.cache_hits += 1
                return cached
            self._stats.cache_misses += 1
            if self._registry is not None:
                structure, generated = self._registry.fetch(circuit, config)
                if generated:
                    self._stats.structures_generated += 1
                else:
                    self._stats.structures_loaded += 1
            else:
                generator = MultiPlacementGenerator(circuit, config or GeneratorConfig())
                structure = generator.generate()
                self._stats.structures_generated += 1
            memoizing = MemoizingInstantiator(
                PlacementInstantiator(structure, fallback_mode=self._fallback_mode),
                capacity=self._memo_capacity,
            )
            self._instantiators.put(key, memoizing)
            return memoizing

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def instantiate(
        self,
        circuit: Circuit,
        dims: Sequence[Dims],
        config: Optional[GeneratorConfig] = None,
    ) -> Placement:
        """Serve one placement for ``dims`` (given in ``circuit`` block order)."""
        with Timer() as timer:
            instantiator = self.instantiator_for(circuit, config)
            mapped = _map_dims(circuit, instantiator.structure.circuit, dims)
            result, from_memo = instantiator.instantiate_with_info(mapped)
        with self._lock:
            stats = self._stats
            stats.queries += 1
            stats.record_source(result.source)
            if from_memo:
                stats.memo_hits += 1
            stats.total_seconds += timer.elapsed
        return result

    def instantiate_batch(
        self,
        circuit: Circuit,
        dims_batch: Sequence[Sequence[Dims]],
        config: Optional[GeneratorConfig] = None,
        max_workers: Optional[int] = None,
    ) -> BatchResult:
        """Serve a whole batch of queries with deduplication and fan-out."""
        with Timer() as timer:
            instantiator = self.instantiator_for(circuit, config)
            structure_circuit = instantiator.structure.circuit
            if circuit.block_names() == structure_circuit.block_names():
                mapped_batch = dims_batch
            else:
                mapped_batch = [
                    _map_dims(circuit, structure_circuit, dims) for dims in dims_batch
                ]
            memo_hits_before = instantiator.memo_stats.hits
            batch = instantiate_batch(
                instantiator,
                mapped_batch,
                max_workers=max_workers if max_workers is not None else self._max_workers,
            )
            memo_delta = instantiator.memo_stats.hits - memo_hits_before
        with self._lock:
            stats = self._stats
            stats.batches += 1
            stats.queries += batch.total_queries
            stats.dedup_hits += batch.duplicate_queries
            stats.memo_hits += memo_delta
            for source, count in batch.source_counts.items():
                stats.record_source(source, count)
            stats.total_seconds += timer.elapsed
        return batch

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(
        self,
        circuit: Circuit,
        dims: Sequence[Dims],
        config: Optional[GeneratorConfig] = None,
        router: Optional[RouterConfig] = None,
    ) -> Tuple[Placement, RoutedLayout]:
        """Serve one placement for ``dims`` *with* its routed layout.

        The returned placement carries the routing statistics in
        ``metadata["routing"]``; the full :class:`RoutedLayout` rides
        alongside for consumers that need per-net paths.
        """
        placement = self.instantiate(circuit, dims, config)
        layout = self.route_rects(circuit, placement.rects, config=config, router=router)
        return placement.with_routing(layout), layout

    def route_rects(
        self,
        circuit: Circuit,
        rects: Mapping[str, Rect],
        config: Optional[GeneratorConfig] = None,
        router: Optional[RouterConfig] = None,
    ) -> RoutedLayout:
        """Route an already-placed floorplan, through the route cache.

        Routes are cached next to the placements, keyed by the structure
        fingerprint of (``circuit``, ``config``) plus the placed rects and
        the router configuration — identical floorplans of the same
        topology route once.
        """
        router = router if router is not None else self._default_router
        config = config if config is not None else self._default_config
        with Timer() as timer:
            key = (structure_key(circuit, config), rects_key(rects), router)
            layout = self._routes.get(key)
            cached = layout is not None
            if layout is None:
                layout = route_placement(circuit, rects, config=router)
                self._routes.put(key, layout)
        with self._lock:
            self._stats.route_queries += 1
            if cached:
                self._stats.route_cache_hits += 1
            self._stats.route_seconds += timer.elapsed
        return layout

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        registry = "none" if self._registry is None else str(self._registry.root)
        return (
            f"PlacementService(registry={registry!r}, "
            f"cached={len(self._instantiators)}, queries={self._stats.queries})"
        )


def _map_dims(
    caller: Circuit, served: Circuit, dims: Sequence[Dims]
) -> Tuple[Dims, ...]:
    """Reorder ``dims`` from the caller's block order to the served circuit's.

    Fingerprints are order-insensitive, so a registry structure may have
    been generated from a permutation of the caller's block list; block
    names identify the mapping.
    """
    if len(dims) != caller.num_blocks:
        raise ValueError(
            f"dimension vector must have {caller.num_blocks} entries, got {len(dims)}"
        )
    caller_names = caller.block_names()
    served_names = served.block_names()
    if caller_names == served_names:
        return tuple((int(w), int(h)) for w, h in dims)
    return tuple(
        (int(dims[caller.block_index(name)][0]), int(dims[caller.block_index(name)][1]))
        for name in served_names
    )
