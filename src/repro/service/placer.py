"""The placement service as a unified-API engine.

:class:`ServicePlacer` pins one circuit (and optionally one generation
config) onto a long-lived :class:`~repro.service.engine.PlacementService`
and exposes it through the :class:`repro.api.Placer` protocol.  Queries go
through the service's registry, caches and statistics, so a synthesis loop
keeps hitting the same warm structure and several loops can share one
service instance.

Its :meth:`ServicePlacer.place_batch` overrides the protocol's default
loop with the service's deduplicating, fan-out batch path — any caller of
the unified API gets batching for free.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.api.placement import Dims, Placement
from repro.api.placer import Placer
from repro.circuit.netlist import Circuit
from repro.core.generator import GeneratorConfig
from repro.service.engine import PlacementService


class ServicePlacer(Placer):
    """Placement served by a :class:`~repro.service.engine.PlacementService`."""

    name = "service"

    def __init__(
        self,
        service: PlacementService,
        circuit: Circuit,
        config: Optional[GeneratorConfig] = None,
    ) -> None:
        self._service = service
        self._circuit = circuit
        self._config = config

    @property
    def service(self) -> PlacementService:
        """The placement service answering this placer's queries."""
        return self._service

    @property
    def circuit(self) -> Circuit:
        """The circuit this placer is pinned to."""
        return self._circuit

    def place(self, dims: Sequence[Dims]) -> Placement:
        result = self._service.instantiate(self._circuit, dims, config=self._config)
        # The caller asked the *service* engine; the tier provenance stays
        # on ``source`` while ``placer`` names what served the query.
        return replace(result, placer=self.name)

    def place_batch(self, queries: Sequence[Sequence[Dims]]) -> List[Placement]:
        """The service's deduplicating, memoizing, fanned-out batch path."""
        batch = self._service.instantiate_batch(self._circuit, queries, config=self._config)
        return [replace(result, placer=self.name) for result in batch.results]

    def stats(self) -> Dict[str, float]:
        """A frozen snapshot of the service's counters, as plain data."""
        return self._service.stats.snapshot().as_dict()
