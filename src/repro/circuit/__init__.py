"""Circuit substrate: blocks, pins, nets, netlists and symmetry constraints."""

from repro.circuit.block import Block
from repro.circuit.builder import CircuitBuilder
from repro.circuit.devices import DeviceType
from repro.circuit.net import Net, Terminal
from repro.circuit.netlist import Circuit
from repro.circuit.pin import Pin
from repro.circuit.symmetry import SymmetryGroup
from repro.circuit.validation import CircuitValidationError, validate_circuit

__all__ = [
    "Block",
    "CircuitBuilder",
    "DeviceType",
    "Net",
    "Terminal",
    "Circuit",
    "Pin",
    "SymmetryGroup",
    "CircuitValidationError",
    "validate_circuit",
]
