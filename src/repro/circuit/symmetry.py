"""Symmetry constraints for analog placement.

Analog layouts pair matched devices (differential pairs, current mirrors)
across a common axis to reject gradient mismatch.  The DATE'05 paper folds
such concerns into its "customizable" cost function; this module provides
the constraint description and the geometric mismatch measure used by
:mod:`repro.cost.penalties`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.geometry.rect import Rect


@dataclass(frozen=True)
class SymmetryGroup:
    """A vertical-axis symmetry group.

    ``pairs`` lists blocks that must mirror each other across the group's
    (free) vertical axis; ``self_symmetric`` lists blocks whose center must
    lie on the axis.
    """

    name: str
    pairs: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)
    self_symmetric: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("symmetry group name must be non-empty")
        if not isinstance(self.pairs, tuple):
            object.__setattr__(self, "pairs", tuple(tuple(p) for p in self.pairs))
        if not isinstance(self.self_symmetric, tuple):
            object.__setattr__(self, "self_symmetric", tuple(self.self_symmetric))
        if not self.pairs and not self.self_symmetric:
            raise ValueError(f"symmetry group {self.name}: must constrain at least one block")

    def blocks(self) -> List[str]:
        """All block names constrained by the group."""
        names: List[str] = []
        for left, right in self.pairs:
            names.extend((left, right))
        names.extend(self.self_symmetric)
        return names

    def best_axis(self, rects: Dict[str, Rect]) -> float:
        """The axis position minimising squared mismatch for the given layout.

        The optimal shared vertical axis is the mean of the pair midpoints
        and self-symmetric centers.
        """
        candidates: List[float] = []
        for left, right in self.pairs:
            if left in rects and right in rects:
                candidates.append((rects[left].center[0] + rects[right].center[0]) / 2.0)
        for name in self.self_symmetric:
            if name in rects:
                candidates.append(rects[name].center[0])
        if not candidates:
            return 0.0
        return sum(candidates) / len(candidates)

    def mismatch(self, rects: Dict[str, Rect]) -> float:
        """Total axis-distance mismatch of the layout for this group.

        For each pair the mismatch is the distance between the pair midpoint
        and the group axis plus the vertical misalignment of the two blocks;
        for self-symmetric blocks it is the distance of their center from the
        axis.  A perfectly mirrored layout has zero mismatch.
        """
        axis = self.best_axis(rects)
        total = 0.0
        for left, right in self.pairs:
            if left not in rects or right not in rects:
                continue
            lc = rects[left].center
            rc = rects[right].center
            midpoint = (lc[0] + rc[0]) / 2.0
            total += abs(midpoint - axis)
            total += abs(lc[1] - rc[1])
        for name in self.self_symmetric:
            if name in rects:
                total += abs(rects[name].center[0] - axis)
        return total
