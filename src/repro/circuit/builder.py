"""Fluent builder for circuits.

The benchmark library (:mod:`repro.benchcircuits`) constructs the paper's
Table 1 circuits through this builder, and example scripts use it to define
custom topologies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.circuit.block import Block
from repro.circuit.devices import DeviceType
from repro.circuit.net import Net, Terminal
from repro.circuit.netlist import Circuit
from repro.circuit.pin import Pin
from repro.circuit.symmetry import SymmetryGroup
from repro.circuit.validation import validate_circuit


class CircuitBuilder:
    """Incrementally assemble a :class:`~repro.circuit.netlist.Circuit`.

    >>> builder = CircuitBuilder("demo")
    >>> _ = builder.block("m1", 4, 12, 4, 12, device_type=DeviceType.NMOS)
    >>> _ = builder.block("m2", 4, 12, 4, 12, device_type=DeviceType.PMOS)
    >>> _ = builder.net("out", ("m1", "c"), ("m2", "c"))
    >>> circuit = builder.build()
    >>> circuit.num_blocks, circuit.num_nets, circuit.num_terminals
    (2, 1, 2)
    """

    def __init__(self, name: str) -> None:
        self._circuit = Circuit(name)

    def block(
        self,
        name: str,
        min_w: int,
        max_w: int,
        min_h: int,
        max_h: int,
        device_type: DeviceType = DeviceType.GENERIC,
        generator: Optional[str] = None,
        symmetry_group: Optional[str] = None,
        pins: Optional[Dict[str, Tuple[float, float]]] = None,
    ) -> "CircuitBuilder":
        """Add a block; ``pins`` maps pin names to fractional offsets."""
        pin_objs = {}
        if pins:
            pin_objs = {pin_name: Pin(pin_name, fx, fy) for pin_name, (fx, fy) in pins.items()}
        self._circuit.add_block(
            Block(
                name=name,
                min_w=min_w,
                max_w=max_w,
                min_h=min_h,
                max_h=max_h,
                device_type=device_type,
                generator=generator,
                symmetry_group=symmetry_group,
                pins=pin_objs,
            )
        )
        return self

    def net(
        self,
        name: str,
        *attachments: Tuple[str, str],
        weight: float = 1.0,
        external: bool = False,
        io_position: Tuple[float, float] = (0.0, 0.5),
    ) -> "CircuitBuilder":
        """Add a net connecting ``(block, pin)`` attachments."""
        terminals = tuple(Terminal(block, pin) for block, pin in attachments)
        self._circuit.add_net(
            Net(
                name,
                terminals,
                weight=weight,
                external=external,
                io_position=io_position,
            )
        )
        return self

    def simple_net(
        self, name: str, blocks: Sequence[str], weight: float = 1.0, external: bool = False
    ) -> "CircuitBuilder":
        """Add a net attached to the center pin of each block in ``blocks``."""
        return self.net(
            name,
            *[(block, "c") for block in blocks],
            weight=weight,
            external=external,
        )

    def symmetry(
        self,
        name: str,
        pairs: Iterable[Tuple[str, str]] = (),
        self_symmetric: Iterable[str] = (),
    ) -> "CircuitBuilder":
        """Add a vertical-axis symmetry group."""
        self._circuit.add_symmetry_group(
            SymmetryGroup(name, tuple(tuple(p) for p in pairs), tuple(self_symmetric))
        )
        return self

    def build(self, validate: bool = True) -> Circuit:
        """Finish and (by default) validate the circuit."""
        if validate:
            validate_circuit(self._circuit)
        return self._circuit
