"""Nets and terminals.

A terminal attaches a net to a specific pin of a specific block.  Nets with
fewer than two block terminals may additionally be marked *external*: they
also connect to an I/O location on the floorplan boundary so their
wirelength contribution is still meaningful (several benchmark circuits in
Table 1 report more nets than terminals, which only makes sense with
external connections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Terminal:
    """A (block, pin) attachment point of a net."""

    block: str
    pin: str = "c"

    def __post_init__(self) -> None:
        if not self.block:
            raise ValueError("terminal block name must be non-empty")
        if not self.pin:
            raise ValueError("terminal pin name must be non-empty")


@dataclass(frozen=True)
class Net:
    """A named electrical net connecting block terminals.

    Parameters
    ----------
    name:
        Unique net identifier within its circuit.
    terminals:
        The block terminals the net connects.
    weight:
        Relative criticality used by the wirelength cost (default 1.0).
    external:
        When true the net also connects to an external I/O pin at
        ``io_position`` expressed as fractions of the floorplan bounds.
    io_position:
        Fractional floorplan position of the external connection.
    """

    name: str
    terminals: Tuple[Terminal, ...] = field(default_factory=tuple)
    weight: float = 1.0
    external: bool = False
    io_position: Tuple[float, float] = (0.0, 0.5)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("net name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"net {self.name}: weight must be positive")
        if not isinstance(self.terminals, tuple):
            object.__setattr__(self, "terminals", tuple(self.terminals))
        if not self.terminals and not self.external:
            raise ValueError(f"net {self.name}: must have terminals or be external")
        fx, fy = self.io_position
        if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
            raise ValueError(f"net {self.name}: io_position must lie in [0, 1]^2")

    @property
    def num_terminals(self) -> int:
        """Number of block terminals on the net."""
        return len(self.terminals)

    @property
    def degree(self) -> int:
        """Number of distinct connection points (terminals plus external pin)."""
        return self.num_terminals + (1 if self.external else 0)

    def blocks(self) -> Tuple[str, ...]:
        """Names of the blocks touched by this net (with repetition removed)."""
        seen = []
        for terminal in self.terminals:
            if terminal.block not in seen:
                seen.append(terminal.block)
        return tuple(seen)

    def with_weight(self, weight: float) -> "Net":
        """Return a copy of the net with a different weight."""
        return Net(self.name, self.terminals, weight, self.external, self.io_position)


def make_net(name: str, *attachments: Tuple[str, str], weight: float = 1.0,
             external: bool = False, io_position: Optional[Tuple[float, float]] = None) -> Net:
    """Convenience constructor: ``make_net("n1", ("m1", "d"), ("m2", "g"))``."""
    terminals = tuple(Terminal(block, pin) for block, pin in attachments)
    kwargs = {"weight": weight, "external": external}
    if io_position is not None:
        kwargs["io_position"] = io_position
    return Net(name, terminals, **kwargs)
