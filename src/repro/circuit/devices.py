"""Device categories for the blocks of an analog circuit.

A block is "any module defined by its module generator functions" (Section
2.1); the device type records which analog primitive the module implements
so module generators and performance models can be bound automatically.
"""

from __future__ import annotations

from enum import Enum


class DeviceType(Enum):
    """Analog module categories used by the benchmark circuits."""

    NMOS = "nmos"
    PMOS = "pmos"
    DIFF_PAIR = "diff_pair"
    CURRENT_MIRROR = "current_mirror"
    CASCODE_PAIR = "cascode_pair"
    CAPACITOR = "capacitor"
    RESISTOR = "resistor"
    BIAS = "bias"
    GENERIC = "generic"

    @property
    def is_transistor_based(self) -> bool:
        """True for modules built out of MOS devices."""
        return self in (
            DeviceType.NMOS,
            DeviceType.PMOS,
            DeviceType.DIFF_PAIR,
            DeviceType.CURRENT_MIRROR,
            DeviceType.CASCODE_PAIR,
            DeviceType.BIAS,
        )

    @property
    def is_passive(self) -> bool:
        """True for passive modules (capacitors and resistors)."""
        return self in (DeviceType.CAPACITOR, DeviceType.RESISTOR)
