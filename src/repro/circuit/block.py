"""Circuit blocks (modules) with designer-specified dimension bounds.

Section 2.1 of the paper: a block ``i`` has variable width ``w_i`` and
height ``h_i`` bounded by designer-set constants ``w^m_i <= w_i <= w^M_i``
and ``h^m_i <= h_i <= h^M_i``.  Those bounds define the axis ranges of the
multi-placement structure's interval rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.circuit.devices import DeviceType
from repro.circuit.pin import CENTER_PIN, Pin


@dataclass
class Block:
    """A layout module with bounded, variable dimensions.

    Parameters
    ----------
    name:
        Unique block identifier within its circuit.
    min_w, max_w, min_h, max_h:
        Designer-set dimension bounds in grid units (inclusive).
    device_type:
        The analog primitive the block implements.
    generator:
        Optional name of the module generator that produces this block's
        footprint from device sizes (see :mod:`repro.modgen`).
    symmetry_group:
        Optional name of the symmetry group the block belongs to.
    pins:
        Named pins; a center pin ``"c"`` is always available.
    """

    name: str
    min_w: int
    max_w: int
    min_h: int
    max_h: int
    device_type: DeviceType = DeviceType.GENERIC
    generator: Optional[str] = None
    symmetry_group: Optional[str] = None
    pins: Dict[str, Pin] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("block name must be non-empty")
        if self.min_w <= 0 or self.min_h <= 0:
            raise ValueError(f"block {self.name}: minimum dimensions must be positive")
        if self.max_w < self.min_w or self.max_h < self.min_h:
            raise ValueError(
                f"block {self.name}: maximum dimensions must be >= minimum dimensions"
            )
        if CENTER_PIN.name not in self.pins:
            self.pins = {CENTER_PIN.name: CENTER_PIN, **self.pins}

    @property
    def min_dims(self) -> Tuple[int, int]:
        """``(min_w, min_h)``."""
        return (self.min_w, self.min_h)

    @property
    def max_dims(self) -> Tuple[int, int]:
        """``(max_w, max_h)``."""
        return (self.max_w, self.max_h)

    @property
    def width_span(self) -> int:
        """Number of admissible integer widths."""
        return self.max_w - self.min_w + 1

    @property
    def height_span(self) -> int:
        """Number of admissible integer heights."""
        return self.max_h - self.min_h + 1

    @property
    def max_area(self) -> int:
        """Area at maximum dimensions."""
        return self.max_w * self.max_h

    def clamp_dims(self, w: int, h: int) -> Tuple[int, int]:
        """Clamp a dimension pair into the block's admissible range."""
        return (
            min(max(w, self.min_w), self.max_w),
            min(max(h, self.min_h), self.max_h),
        )

    def admits(self, w: int, h: int) -> bool:
        """True when ``(w, h)`` lies inside the designer bounds."""
        return self.min_w <= w <= self.max_w and self.min_h <= h <= self.max_h

    def pin(self, name: str) -> Pin:
        """Look up a pin by name."""
        try:
            return self.pins[name]
        except KeyError as exc:
            raise KeyError(f"block {self.name} has no pin named {name!r}") from exc

    def add_pin(self, pin: Pin) -> None:
        """Register an additional pin on the block."""
        if pin.name in self.pins:
            raise ValueError(f"block {self.name} already has a pin named {pin.name!r}")
        self.pins[pin.name] = pin
