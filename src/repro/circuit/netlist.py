"""The :class:`Circuit` netlist container.

A circuit is "a set of N blocks" plus the nets connecting them (Section
2.1).  Blocks keep a stable index order because the multi-placement
structure stores one interval row per block per dimension, addressed by
block index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.circuit.block import Block
from repro.circuit.net import Net
from repro.circuit.symmetry import SymmetryGroup


@dataclass
class Circuit:
    """An analog circuit topology: named blocks, nets and symmetry groups."""

    name: str
    blocks: List[Block] = field(default_factory=list)
    nets: List[Net] = field(default_factory=list)
    symmetry_groups: List[SymmetryGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("circuit name must be non-empty")
        self._index: Dict[str, int] = {}
        self._reindex()

    def _reindex(self) -> None:
        self._index = {block.name: i for i, block in enumerate(self.blocks)}
        if len(self._index) != len(self.blocks):
            raise ValueError(f"circuit {self.name}: duplicate block names")

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    @property
    def num_blocks(self) -> int:
        """Number of blocks (the paper's N)."""
        return len(self.blocks)

    @property
    def num_nets(self) -> int:
        """Number of nets."""
        return len(self.nets)

    @property
    def num_terminals(self) -> int:
        """Total number of block terminals across all nets (Table 1's Terminals)."""
        return sum(net.num_terminals for net in self.nets)

    def block_names(self) -> List[str]:
        """Block names in index order."""
        return [block.name for block in self.blocks]

    def block_index(self, name: str) -> int:
        """Index of the block called ``name``."""
        try:
            return self._index[name]
        except KeyError as exc:
            raise KeyError(f"circuit {self.name} has no block named {name!r}") from exc

    def block(self, name: str) -> Block:
        """The block called ``name``."""
        return self.blocks[self.block_index(name)]

    def has_block(self, name: str) -> bool:
        """True when a block called ``name`` exists."""
        return name in self._index

    def net(self, name: str) -> Net:
        """The net called ``name``."""
        for net in self.nets:
            if net.name == name:
                return net
        raise KeyError(f"circuit {self.name} has no net named {name!r}")

    def min_dims(self) -> List[Tuple[int, int]]:
        """Per-block minimum dimensions in index order."""
        return [block.min_dims for block in self.blocks]

    def max_dims(self) -> List[Tuple[int, int]]:
        """Per-block maximum dimensions in index order."""
        return [block.max_dims for block in self.blocks]

    def dims_in_bounds(self, dims: Sequence[Tuple[int, int]]) -> bool:
        """True when every ``(w, h)`` in ``dims`` respects its block's bounds."""
        if len(dims) != self.num_blocks:
            return False
        return all(block.admits(w, h) for block, (w, h) in zip(self.blocks, dims))

    def nets_on_block(self, name: str) -> List[Net]:
        """All nets with at least one terminal on block ``name``."""
        return [net for net in self.nets if name in net.blocks()]

    # ------------------------------------------------------------------ #
    # Mutation (used by CircuitBuilder)
    # ------------------------------------------------------------------ #
    def add_block(self, block: Block) -> None:
        """Append a block, keeping the name index consistent."""
        if block.name in self._index:
            raise ValueError(f"circuit {self.name}: duplicate block {block.name!r}")
        self.blocks.append(block)
        self._index[block.name] = len(self.blocks) - 1

    def add_net(self, net: Net) -> None:
        """Append a net after checking its terminals reference known blocks."""
        for terminal in net.terminals:
            if terminal.block not in self._index:
                raise ValueError(
                    f"circuit {self.name}: net {net.name} references unknown block "
                    f"{terminal.block!r}"
                )
            self.block(terminal.block).pin(terminal.pin)
        if any(existing.name == net.name for existing in self.nets):
            raise ValueError(f"circuit {self.name}: duplicate net {net.name!r}")
        self.nets.append(net)

    def add_symmetry_group(self, group: SymmetryGroup) -> None:
        """Register a symmetry constraint group."""
        for left, right in group.pairs:
            if left not in self._index or right not in self._index:
                raise ValueError(
                    f"circuit {self.name}: symmetry group {group.name} references "
                    f"unknown blocks"
                )
        for name in group.self_symmetric:
            if name not in self._index:
                raise ValueError(
                    f"circuit {self.name}: symmetry group {group.name} references "
                    f"unknown block {name!r}"
                )
        self.symmetry_groups.append(group)

    # ------------------------------------------------------------------ #
    # Graph views
    # ------------------------------------------------------------------ #
    def connectivity_graph(self) -> "nx.Graph":
        """Weighted block connectivity graph (edge weight = shared net weight sum).

        Template placers and net-aware perturbation use this view.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.block_names())
        for net in self.nets:
            blocks = net.blocks()
            for i in range(len(blocks)):
                for j in range(i + 1, len(blocks)):
                    u, v = blocks[i], blocks[j]
                    if graph.has_edge(u, v):
                        graph[u][v]["weight"] += net.weight
                    else:
                        graph.add_edge(u, v, weight=net.weight)
        return graph

    def summary(self) -> Dict[str, int]:
        """Table 1-style statistics for the circuit."""
        return {
            "blocks": self.num_blocks,
            "nets": self.num_nets,
            "terminals": self.num_terminals,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Circuit({self.name!r}, blocks={self.num_blocks}, nets={self.num_nets}, "
            f"terminals={self.num_terminals})"
        )
