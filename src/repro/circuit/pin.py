"""Block pins.

Pins are located by fractional offsets inside their block footprint so the
same pin definition remains valid for every width/height the module
generator can produce — exactly the property the multi-placement structure
relies on when it reuses one placement across a range of block dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Pin:
    """A named connection point at a fractional position inside a block."""

    name: str
    fx: float = 0.5
    fy: float = 0.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pin name must be non-empty")
        if not (0.0 <= self.fx <= 1.0 and 0.0 <= self.fy <= 1.0):
            raise ValueError(
                f"pin fractional offsets must lie in [0, 1], got ({self.fx}, {self.fy})"
            )

    def position(self, rect: Rect) -> Tuple[float, float]:
        """Absolute pin position when the block occupies ``rect``."""
        return rect.terminal_position(self.fx, self.fy)


CENTER_PIN = Pin("c", 0.5, 0.5)
