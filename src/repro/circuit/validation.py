"""Structural validation of circuits before structure generation."""

from __future__ import annotations

from typing import List

from repro.circuit.netlist import Circuit


class CircuitValidationError(ValueError):
    """Raised when a circuit fails structural validation."""

    def __init__(self, circuit_name: str, problems: List[str]) -> None:
        self.circuit_name = circuit_name
        self.problems = list(problems)
        details = "; ".join(problems)
        super().__init__(f"circuit {circuit_name!r} failed validation: {details}")


def collect_problems(circuit: Circuit) -> List[str]:
    """Return a list of structural problems (empty when the circuit is valid)."""
    problems: List[str] = []
    if circuit.num_blocks == 0:
        problems.append("circuit has no blocks")
    seen_nets = set()
    for net in circuit.nets:
        if net.name in seen_nets:
            problems.append(f"duplicate net name {net.name!r}")
        seen_nets.add(net.name)
        for terminal in net.terminals:
            if not circuit.has_block(terminal.block):
                problems.append(
                    f"net {net.name!r} references unknown block {terminal.block!r}"
                )
                continue
            block = circuit.block(terminal.block)
            if terminal.pin not in block.pins:
                problems.append(
                    f"net {net.name!r} references unknown pin {terminal.pin!r} on block "
                    f"{terminal.block!r}"
                )
        if net.num_terminals < 2 and not net.external:
            problems.append(
                f"net {net.name!r} has fewer than two terminals and is not external"
            )
    for group in circuit.symmetry_groups:
        for name in group.blocks():
            if not circuit.has_block(name):
                problems.append(
                    f"symmetry group {group.name!r} references unknown block {name!r}"
                )
    return problems


def validate_circuit(circuit: Circuit) -> None:
    """Raise :class:`CircuitValidationError` when the circuit is malformed."""
    problems = collect_problems(circuit)
    if problems:
        raise CircuitValidationError(circuit.name, problems)
