"""Run every experiment and produce a plain-text report.

``python -m repro.experiments.runner --scale smoke`` regenerates every
table and figure at the chosen scale and prints the report used to fill in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
from typing import List

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.synthesis_compare import run_synthesis_comparison
from repro.experiments.table1 import table1_rows
from repro.experiments.table2 import run_table2
from repro.viz.series import format_table


def build_report(scale: ExperimentScale, seed: int = 0, include_synthesis: bool = True) -> str:
    """Run all experiments at ``scale`` and return the formatted report."""
    sections: List[str] = [f"# Experiment report (scale: {scale.name})", ""]

    sections.append("## Table 1 - benchmark circuits")
    sections.append(format_table(table1_rows()))
    sections.append("")

    sections.append("## Table 2 - structure generation and instantiation")
    table2 = run_table2(scale=scale, seed=seed)
    sections.append(format_table([row.as_dict() for row in table2]))
    sections.append("")

    sections.append("## Figure 5 - size-dependent floorplans vs a template")
    figure5 = run_figure5(scale=scale, seed=seed)
    sections.append(
        format_table(
            [
                {
                    "instantiation": "sizes A",
                    "source": figure5.instantiation_a.source,
                    "cost": round(figure5.instantiation_a.total_cost, 2),
                    "template_cost": round(figure5.template_cost_a, 2),
                },
                {
                    "instantiation": "sizes B",
                    "source": figure5.instantiation_b.source,
                    "cost": round(figure5.instantiation_b.total_cost, 2),
                    "template_cost": round(figure5.template_cost_b, 2),
                },
            ]
        )
    )
    sections.append(f"arrangements differ: {figure5.arrangements_differ}")
    sections.append(
        "structure <= template cost: "
        f"{figure5.structure_beats_or_matches_template}"
    )
    sections.append("")

    sections.append("## Figure 6 - lowest-cost selection along a 1-D sweep")
    figure6 = run_figure6(scale=scale, seed=seed)
    sections.append(
        f"sweep of block {figure6.sweep_block!r} over {len(figure6.sweep_values)} points; "
        f"mean envelope gap {figure6.envelope_gap:.3f}; "
        f"tracks lower envelope: {figure6.tracks_lower_envelope}"
    )
    sections.append("")

    sections.append("## Figure 7 - tso-cascode instantiation")
    figure7 = run_figure7(scale=scale, seed=seed)
    sections.append(
        format_table(
            [
                {
                    "circuit": figure7.circuit,
                    "blocks": figure7.num_blocks,
                    "placements": figure7.placements,
                    "generation_s": round(figure7.generation_seconds, 2),
                    "instantiation_ms": round(figure7.instantiation_seconds * 1000, 3),
                    "legal": figure7.is_legal,
                }
            ]
        )
    )
    sections.append("")

    if include_synthesis:
        sections.append("## Synthesis-loop backend comparison")
        comparison = run_synthesis_comparison(scale=scale, seed=seed)
        sections.append(format_table(comparison.rows()))
        sections.append(
            f"MPS placement faster than per-instance annealing: "
            f"{comparison.mps_faster_than_annealing}"
        )
        sections.append("")

    return "\n".join(sections)


def main(argv=None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", help="smoke, medium or full")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-synthesis", action="store_true", help="skip the synthesis-loop comparison"
    )
    args = parser.parse_args(argv)
    report = build_report(
        get_scale(args.scale), seed=args.seed, include_synthesis=not args.skip_synthesis
    )
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
