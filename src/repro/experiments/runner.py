"""Run every experiment and produce a plain-text report.

``python -m repro.experiments.runner --scale smoke`` regenerates every
table and figure at the chosen scale and prints the report used to fill in
``EXPERIMENTS.md``.  Sections can be selected individually::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner --only table2 --only figure5
    python -m repro.experiments.runner --only synthesis --backends mps,template --seed 7

The synthesis section's backends are named by their placer-registry kind
(any kind ``repro.api.make_placer`` accepts), so new engines are runnable
from the command line without touching this file.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.routing_compare import run_routing_comparison
from repro.experiments.synthesis_compare import run_synthesis_comparison
from repro.experiments.table1 import table1_rows
from repro.experiments.table2 import run_table2
from repro.viz.series import format_table


def _section_table1(scale: ExperimentScale, seed: int, backends) -> List[str]:
    return ["## Table 1 - benchmark circuits", format_table(table1_rows()), ""]


def _section_table2(scale: ExperimentScale, seed: int, backends) -> List[str]:
    table2 = run_table2(scale=scale, seed=seed)
    return [
        "## Table 2 - structure generation and instantiation",
        format_table([row.as_dict() for row in table2]),
        "",
    ]


def _section_figure5(scale: ExperimentScale, seed: int, backends) -> List[str]:
    figure5 = run_figure5(scale=scale, seed=seed)
    return [
        "## Figure 5 - size-dependent floorplans vs a template",
        format_table(
            [
                {
                    "instantiation": "sizes A",
                    "source": figure5.instantiation_a.source,
                    "cost": round(figure5.instantiation_a.total_cost, 2),
                    "template_cost": round(figure5.template_cost_a, 2),
                },
                {
                    "instantiation": "sizes B",
                    "source": figure5.instantiation_b.source,
                    "cost": round(figure5.instantiation_b.total_cost, 2),
                    "template_cost": round(figure5.template_cost_b, 2),
                },
            ]
        ),
        f"arrangements differ: {figure5.arrangements_differ}",
        "structure <= template cost: "
        f"{figure5.structure_beats_or_matches_template}",
        "",
    ]


def _section_figure6(scale: ExperimentScale, seed: int, backends) -> List[str]:
    figure6 = run_figure6(scale=scale, seed=seed)
    return [
        "## Figure 6 - lowest-cost selection along a 1-D sweep",
        f"sweep of block {figure6.sweep_block!r} over {len(figure6.sweep_values)} points; "
        f"mean envelope gap {figure6.envelope_gap:.3f}; "
        f"tracks lower envelope: {figure6.tracks_lower_envelope}",
        "",
    ]


def _section_figure7(scale: ExperimentScale, seed: int, backends) -> List[str]:
    figure7 = run_figure7(scale=scale, seed=seed)
    return [
        "## Figure 7 - tso-cascode instantiation",
        format_table(
            [
                {
                    "circuit": figure7.circuit,
                    "blocks": figure7.num_blocks,
                    "placements": figure7.placements,
                    "generation_s": round(figure7.generation_seconds, 2),
                    "instantiation_ms": round(figure7.instantiation_seconds * 1000, 3),
                    "legal": figure7.is_legal,
                }
            ]
        ),
        "",
    ]


def _section_synthesis(scale: ExperimentScale, seed: int, backends) -> List[str]:
    comparison = run_synthesis_comparison(scale=scale, backends=backends, seed=seed)
    return [
        "## Synthesis-loop backend comparison",
        format_table(comparison.rows()),
        f"MPS placement faster than per-instance annealing: "
        f"{comparison.mps_faster_than_annealing}",
        "",
    ]


def _section_routing(scale: ExperimentScale, seed: int, backends) -> List[str]:
    comparison = run_routing_comparison(scale=scale, seed=seed)
    return [
        "## Routing - routed vs HPWL wirelength",
        format_table(comparison.rows()),
        f"all circuits routable (zero overflow): {comparison.all_routable}",
        f"mean detour factor (routed / HPWL): {comparison.mean_detour_factor:.3f}",
        "",
    ]


#: Report sections in print order; each runs independently under ``--only``.
SECTIONS: Dict[str, Callable[..., List[str]]] = {
    "table1": _section_table1,
    "table2": _section_table2,
    "figure5": _section_figure5,
    "figure6": _section_figure6,
    "figure7": _section_figure7,
    "routing": _section_routing,
    "synthesis": _section_synthesis,
}


def build_report(
    scale: ExperimentScale,
    seed: int = 0,
    include_synthesis: bool = True,
    only: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
) -> str:
    """Run the selected experiments at ``scale`` and return the formatted report.

    ``only`` limits the report to the named sections (see :data:`SECTIONS`);
    ``backends`` selects the synthesis section's placement engines by
    registry kind.
    """
    selected = _validate_sections(only)
    if not include_synthesis:
        selected = [name for name in selected if name != "synthesis"]
    lines: List[str] = [f"# Experiment report (scale: {scale.name})", ""]
    for name in selected:
        lines.extend(SECTIONS[name](scale, seed, backends))
    return "\n".join(lines)


def _validate_sections(only: Optional[Sequence[str]]) -> List[str]:
    if not only:
        return list(SECTIONS)
    unknown = sorted(set(only) - set(SECTIONS))
    if unknown:
        raise KeyError(f"unknown section(s) {unknown}; available: {list(SECTIONS)}")
    # Preserve the canonical report order regardless of flag order.
    requested = set(only)
    return [name for name in SECTIONS if name in requested]


def main(argv=None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", help="smoke, medium or full")
    parser.add_argument("--seed", type=int, default=0, help="seed for every section")
    parser.add_argument(
        "--only",
        action="append",
        metavar="SECTION",
        help="run only this section (repeatable); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the report sections and exit"
    )
    parser.add_argument(
        "--backends",
        help="comma-separated placer kinds for the synthesis section "
        "(e.g. mps,template,annealing,service)",
    )
    parser.add_argument(
        "--skip-synthesis", action="store_true", help="skip the synthesis-loop comparison"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="enable span tracing and write a Chrome trace-event JSON "
        "(load it in chrome://tracing or Perfetto) covering the whole run",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable metrics collection and append a Prometheus-style "
        "metrics dump to the report",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in SECTIONS:
            print(name)
        return 0
    backends = [kind.strip() for kind in args.backends.split(",")] if args.backends else None
    # Validate the CLI selections up front so a KeyError escaping from an
    # experiment's internals is never mistaken for a usage error.
    try:
        scale = get_scale(args.scale)
        _validate_sections(args.only)
    except KeyError as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))
    observing = bool(args.trace) or args.metrics
    if observing:
        from repro import obs

        obs.configure(enabled=True)

    def _run() -> str:
        return build_report(
            scale,
            seed=args.seed,
            include_synthesis=not args.skip_synthesis,
            only=args.only,
            backends=backends,
        )

    if observing:
        with obs.span("experiments.report", scale=args.scale, seed=args.seed):
            report = _run()
        if args.trace:
            obs.export_chrome_trace(args.trace)
        if args.metrics:
            report = "\n".join(
                [report, "", "## Metrics", obs.metrics().to_prometheus()]
            )
    else:
        report = _run()
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
