"""Figure 6 — lowest-cost selection across the size space.

One block dimension is swept across its admissible range while the other
dimensions stay fixed.  The top plot of the paper's figure shows the cost
of *each* stored placement along that sweep; the bottom plot shows the cost
the multi-placement structure actually delivers, which tracks the lower
envelope because the structure returns the placement best suited to the
query point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.benchcircuits.library import get_benchmark
from repro.core.generator import MultiPlacementGenerator
from repro.core.instantiator import PlacementInstantiator
from repro.cost.cost_function import PlacementCostFunction
from repro.experiments.config import SMOKE, ExperimentScale
from repro.geometry.rect import Rect

Dims = Tuple[int, int]


@dataclass
class Figure6Result:
    """Per-placement cost curves and the structure-selected cost curve."""

    circuit: str
    sweep_block: str
    sweep_values: List[int]
    #: Cost of each stored placement along the sweep (None where infeasible).
    placement_curves: Dict[int, List[float]]
    #: Cost delivered by the structure along the sweep.
    selected_costs: List[float]
    #: Index of the placement the structure used at each sweep point (None = fallback).
    selected_indices: List[object]

    @property
    def envelope_gap(self) -> float:
        """Mean gap between the structure's cost and the per-point minimum stored cost.

        A small gap is the figure's qualitative claim: the structure picks
        (close to) the lowest-cost placement available at every point.
        """
        gaps = []
        for i, selected in enumerate(self.selected_costs):
            feasible = [
                curve[i]
                for curve in self.placement_curves.values()
                if curve[i] is not None
            ]
            if not feasible:
                continue
            gaps.append(selected - min(feasible))
        if not gaps:
            return 0.0
        return sum(gaps) / len(gaps)

    @property
    def tracks_lower_envelope(self) -> bool:
        """True when the mean envelope gap is within 5 % of the mean selected cost."""
        if not self.selected_costs:
            return False
        mean_cost = sum(self.selected_costs) / len(self.selected_costs)
        return self.envelope_gap <= 0.05 * mean_cost + 1e-9


def run_figure6(
    circuit_name: str = "two_stage_opamp",
    scale: ExperimentScale = SMOKE,
    seed: int = 0,
    sweep_block_index: int = 0,
    sweep_points: int = 15,
) -> Figure6Result:
    """Regenerate the Figure 6 sweep for ``circuit_name``."""
    circuit = get_benchmark(circuit_name)
    config = scale.generator_config(circuit, seed=seed)
    generator = MultiPlacementGenerator(circuit, config)
    structure = generator.generate()
    instantiator = PlacementInstantiator(structure)
    cost_function = generator.cost_function

    sweep_block = circuit.blocks[sweep_block_index]
    base_dims = [
        ((block.min_w + block.max_w) // 2, (block.min_h + block.max_h) // 2)
        for block in circuit.blocks
    ]
    span = sweep_block.max_w - sweep_block.min_w
    step = max(1, span // max(1, sweep_points - 1))
    sweep_values = list(range(sweep_block.min_w, sweep_block.max_w + 1, step))

    placement_curves: Dict[int, List[float]] = {p.index: [] for p in structure}
    selected_costs: List[float] = []
    selected_indices: List[object] = []

    for value in sweep_values:
        dims = list(base_dims)
        dims[sweep_block_index] = (value, base_dims[sweep_block_index][1])
        for placement in structure:
            placement_curves[placement.index].append(
                _placement_cost(cost_function, placement.anchors, dims, structure.bounds)
            )
        instantiated = instantiator.instantiate(dims)
        selected_costs.append(instantiated.total_cost)
        selected_indices.append(instantiated.placement_index)

    return Figure6Result(
        circuit=circuit.name,
        sweep_block=sweep_block.name,
        sweep_values=sweep_values,
        placement_curves=placement_curves,
        selected_costs=selected_costs,
        selected_indices=selected_indices,
    )


def _placement_cost(cost_function: PlacementCostFunction, anchors, dims, bounds):
    """Cost of using one fixed placement for ``dims`` (None when illegal)."""
    rects = cost_function.rects_from(anchors, dims)
    rect_list = list(rects.values())
    for rect in rect_list:
        if not bounds.contains(rect):
            return None
    for i in range(len(rect_list)):
        for j in range(i + 1, len(rect_list)):
            if rect_list[i].intersects(rect_list[j]):
                return None
    return cost_function.evaluate(rects).total
