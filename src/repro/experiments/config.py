"""Experiment scaling.

The paper generated its structures with hours of C++ SA on a 2005
workstation; re-running that verbatim in Python is neither possible nor
useful for verification.  Each experiment therefore accepts an
:class:`ExperimentScale` selecting the SA budgets:

* ``SMOKE`` — seconds per circuit; used by the test suite and the default
  pytest-benchmark runs.
* ``MEDIUM`` — tens of seconds per circuit; the example scripts default.
* ``FULL``  — minutes per circuit; closest to the paper's budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.core.bdio import BDIOConfig
from repro.core.explorer import ExplorerConfig
from repro.core.generator import GeneratorConfig


@dataclass(frozen=True)
class ExperimentScale:
    """SA budgets used when generating structures for an experiment."""

    name: str
    explorer_iterations: int
    bdio_iterations: int
    coverage_target: float
    #: Number of random dimension vectors used to time instantiation.
    instantiation_samples: int
    #: Iterations given to the sizing loop in the synthesis comparison.
    synthesis_iterations: int
    #: Iterations given to the per-instance annealing baseline.
    annealing_iterations: int
    #: Canvas whitespace factor (larger canvases let expansions reach block maxima).
    whitespace_factor: float = 2.0
    #: Coverage metric for the explorer's stopping test.  The experiments use
    #: the volumetric metric with an unreachable target so the iteration
    #: budget governs, reproducing the paper's placement counts (tens to
    #: around a hundred placements that grow with the budget).
    coverage_metric: str = "volume"

    def generator_config(self, circuit: Circuit, seed: int = 0) -> GeneratorConfig:
        """Generator configuration for ``circuit`` under this scale.

        The explorer budget grows mildly with the block count, mirroring the
        growth of the paper's generation times from circ01 to benchmark24.
        """
        size_factor = 0.8 + circuit.num_blocks / 25.0
        return GeneratorConfig(
            explorer=ExplorerConfig(
                max_iterations=max(2, int(self.explorer_iterations * size_factor)),
                coverage_target=self.coverage_target,
                coverage_metric=self.coverage_metric,
                coverage_samples=200,
                initial_placement="packed",
                perturb_step_fraction=0.3,
            ),
            bdio=BDIOConfig(max_iterations=self.bdio_iterations),
            whitespace_factor=self.whitespace_factor,
            seed=seed,
        )


SMOKE = ExperimentScale(
    name="smoke",
    explorer_iterations=6,
    bdio_iterations=50,
    coverage_target=0.9,
    instantiation_samples=50,
    synthesis_iterations=20,
    annealing_iterations=300,
)

MEDIUM = ExperimentScale(
    name="medium",
    explorer_iterations=40,
    bdio_iterations=200,
    coverage_target=0.9,
    instantiation_samples=200,
    synthesis_iterations=60,
    annealing_iterations=1500,
)

FULL = ExperimentScale(
    name="full",
    explorer_iterations=130,
    bdio_iterations=800,
    coverage_target=0.95,
    instantiation_samples=500,
    synthesis_iterations=150,
    annealing_iterations=4000,
)

SCALES = {scale.name: scale for scale in (SMOKE, MEDIUM, FULL)}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale by name (``smoke``, ``medium`` or ``full``)."""
    try:
        return SCALES[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown experiment scale {name!r}; choose from {sorted(SCALES)}") from exc
