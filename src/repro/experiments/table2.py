"""Table 2 — generation effort and instantiation speed of the structures.

For every benchmark circuit the experiment generates a multi-placement
structure (with the selected scale's SA budget), counts the stored
placements and measures the mean time to instantiate a placement for a
random dimension vector — the three columns of the paper's Table 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.benchcircuits.library import all_benchmarks, get_benchmark
from repro.core.generator import MultiPlacementGenerator
from repro.core.instantiator import PlacementInstantiator
from repro.experiments.config import SMOKE, ExperimentScale
from repro.utils.rng import make_rng
from repro.utils.timer import format_duration


@dataclass
class Table2Row:
    """One circuit's row of Table 2."""

    circuit: str
    blocks: int
    generation_seconds: float
    placements: int
    instantiation_seconds: float
    coverage: float
    structure_hit_fraction: float

    def as_dict(self) -> Dict[str, object]:
        """Row formatted the way the paper prints it."""
        return {
            "circuit": self.circuit,
            "blocks": self.blocks,
            "generation_time": format_duration(self.generation_seconds),
            "placements": self.placements,
            "instantiation": f"{self.instantiation_seconds * 1000:.2f}ms",
            "coverage": round(self.coverage, 3),
            "stored_hit_fraction": round(self.structure_hit_fraction, 3),
        }


def run_table2(
    circuits: Optional[Sequence[str]] = None,
    scale: ExperimentScale = SMOKE,
    seed: int = 0,
) -> List[Table2Row]:
    """Regenerate Table 2 for the selected circuits (default: all of Table 1)."""
    names = list(circuits) if circuits else list(all_benchmarks().keys())
    rows: List[Table2Row] = []
    for index, name in enumerate(names):
        circuit = get_benchmark(name)
        config = scale.generator_config(circuit, seed=seed + index)
        generator = MultiPlacementGenerator(circuit, config)
        result = generator.generate_with_stats()
        structure = result.structure
        instantiation_seconds, hit_fraction = _time_instantiation(
            structure, scale.instantiation_samples, seed=seed + index
        )
        rows.append(
            Table2Row(
                circuit=name,
                blocks=circuit.num_blocks,
                generation_seconds=result.elapsed_seconds,
                placements=structure.num_placements,
                instantiation_seconds=instantiation_seconds,
                coverage=structure.marginal_coverage(),
                structure_hit_fraction=hit_fraction,
            )
        )
    return rows


def _time_instantiation(structure, samples: int, seed: int = 0):
    """Mean per-query instantiation time and stored-placement hit fraction."""
    rng = make_rng(seed)
    instantiator = PlacementInstantiator(structure)
    circuit = structure.circuit
    dims_list = [
        [
            (rng.randint(block.min_w, block.max_w), rng.randint(block.min_h, block.max_h))
            for block in circuit.blocks
        ]
        for _ in range(samples)
    ]
    hits = 0
    start = time.perf_counter()
    for dims in dims_list:
        placement = instantiator.instantiate(dims)
        if placement.used_stored_placement:
            hits += 1
    elapsed = time.perf_counter() - start
    return (elapsed / max(1, samples), hits / max(1, samples))
