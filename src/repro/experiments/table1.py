"""Table 1 — the benchmark circuit statistics."""

from __future__ import annotations

from typing import Dict, List

from repro.benchcircuits.library import TABLE1, all_benchmarks


def table1_rows() -> List[Dict[str, object]]:
    """Rebuild every benchmark and compare its statistics with the published table."""
    rows: List[Dict[str, object]] = []
    circuits = all_benchmarks()
    for name, expected in TABLE1.items():
        summary = circuits[name].summary()
        rows.append(
            {
                "circuit": name,
                "blocks": summary["blocks"],
                "nets": summary["nets"],
                "terminals": summary["terminals"],
                "paper_blocks": expected["blocks"],
                "paper_nets": expected["nets"],
                "paper_terminals": expected["terminals"],
                "matches_paper": summary == expected,
            }
        )
    return rows
