"""Figure 7 — an optimized floorplan instantiation for the 21-module tso-cascode.

The experiment demonstrates the method at the upper end of its target
complexity ("analog blocks of sizes ranging up to 25 modules"): generate a
structure for the 21-block cascode benchmark, instantiate it and check the
result is a legal floorplan delivered in milliseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Tuple

from repro.benchcircuits.library import get_benchmark
from repro.core.generator import MultiPlacementGenerator
from repro.api import Placement
from repro.core.instantiator import PlacementInstantiator
from repro.experiments.config import SMOKE, ExperimentScale
from repro.utils.rng import make_rng
from repro.viz.ascii_art import render_ascii


@dataclass
class Figure7Result:
    """The instantiated cascode floorplan and its statistics."""

    circuit: str
    num_blocks: int
    placements: int
    generation_seconds: float
    instantiation: Placement
    instantiation_seconds: float
    ascii_floorplan: str

    @property
    def is_legal(self) -> bool:
        """True when the instantiated floorplan has no overlaps."""
        rects = list(self.instantiation.rects.values())
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                if rects[i].intersects(rects[j]):
                    return False
        return True


def run_figure7(
    circuit_name: str = "tso_cascode",
    scale: ExperimentScale = SMOKE,
    seed: int = 0,
) -> Figure7Result:
    """Regenerate the Figure 7 instantiation for the cascode benchmark."""
    circuit = get_benchmark(circuit_name)
    config = scale.generator_config(circuit, seed=seed)
    generator = MultiPlacementGenerator(circuit, config)
    result = generator.generate_with_stats()
    structure = result.structure
    instantiator = PlacementInstantiator(structure)

    rng = make_rng(seed)
    dims = [
        (rng.randint(block.min_w, block.max_w), rng.randint(block.min_h, block.max_h))
        for block in circuit.blocks
    ]
    start = time.perf_counter()
    instantiation = instantiator.instantiate(dims)
    elapsed = time.perf_counter() - start

    return Figure7Result(
        circuit=circuit.name,
        num_blocks=circuit.num_blocks,
        placements=structure.num_placements,
        generation_seconds=result.elapsed_seconds,
        instantiation=instantiation,
        instantiation_seconds=elapsed,
        ascii_floorplan=render_ascii(instantiation.rects, generator.bounds),
    )
