"""Synthesis-loop comparison (the motivation behind Figure 1.b).

The paper argues that a multi-placement structure gives layout-inclusive
synthesis (a) the speed of templates and (b) placement diversity close to
optimization-based placement.  This experiment runs the same sizing loop on
the two-stage opamp with each placement backend and reports wall time,
per-evaluation placement time and the achieved objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.annealing_placer import AnnealingPlacer, AnnealingPlacerConfig
from repro.baselines.template import TemplatePlacer
from repro.core.generator import MultiPlacementGenerator
from repro.experiments.config import SMOKE, ExperimentScale
from repro.synthesis.backends import AnnealingBackend, MPSBackend, TemplateBackend
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig, SynthesisResult
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizerConfig


@dataclass
class SynthesisComparison:
    """Results of the same sizing loop under different placement backends."""

    results: Dict[str, SynthesisResult]

    def row(self, backend: str) -> Dict[str, object]:
        """Summary row for one backend."""
        result = self.results[backend]
        return {
            "backend": backend,
            "wall_seconds": round(result.elapsed_seconds, 3),
            "placement_seconds": round(result.placement_seconds, 3),
            "placement_ms_per_eval": round(
                1000.0 * result.placement_seconds / max(1, result.evaluations), 3
            ),
            "evaluations": result.evaluations,
            "best_objective": round(result.best.objective, 3),
            "spec_penalty": round(result.best.spec_penalty, 4),
        }

    def rows(self) -> List[Dict[str, object]]:
        """Summary rows for every backend, fastest placement first."""
        return [self.row(name) for name in sorted(self.results)]

    @property
    def mps_faster_than_annealing(self) -> bool:
        """True when the MPS-backed loop spends less time in placement than the annealing one."""
        if "mps" not in self.results or "annealing" not in self.results:
            return True
        return (
            self.results["mps"].placement_seconds
            < self.results["annealing"].placement_seconds
        )


def run_synthesis_comparison(
    scale: ExperimentScale = SMOKE,
    backends: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> SynthesisComparison:
    """Run the two-stage opamp sizing loop with each requested backend."""
    backends = list(backends) if backends else ["mps", "template", "annealing"]
    design = two_stage_opamp_design()
    circuit = design.circuit

    generator = MultiPlacementGenerator(circuit, scale.generator_config(circuit, seed=seed))
    structure = generator.generate()
    bounds = generator.bounds

    backend_objects = {}
    if "mps" in backends:
        backend_objects["mps"] = MPSBackend(structure, generator.cost_function)
    if "template" in backends:
        backend_objects["template"] = TemplateBackend(TemplatePlacer(circuit, bounds, seed=seed))
    if "annealing" in backends:
        placer = AnnealingPlacer(
            circuit,
            bounds,
            config=AnnealingPlacerConfig(max_iterations=scale.annealing_iterations),
            seed=seed,
        )
        backend_objects["annealing"] = AnnealingBackend(placer)

    config = SynthesisConfig(
        optimizer=SizingOptimizerConfig(max_iterations=scale.synthesis_iterations)
    )
    results: Dict[str, SynthesisResult] = {}
    for name, backend in backend_objects.items():
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            backend,
            config=config,
            seed=seed,
        )
        results[name] = loop.run()
    return SynthesisComparison(results=results)
