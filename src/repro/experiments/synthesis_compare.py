"""Synthesis-loop comparison (the motivation behind Figure 1.b).

The paper argues that a multi-placement structure gives layout-inclusive
synthesis (a) the speed of templates and (b) placement diversity close to
optimization-based placement.  This experiment runs the same sizing loop on
the two-stage opamp with each placement backend and reports wall time,
per-evaluation placement time and the achieved objective.

Backends are selected declaratively: each entry is a ``make_placer`` spec
dict (or just a registry kind name), so configs and the CLI runner can name
engines — ``{"kind": "annealing", "iterations": 2000}`` — without importing
them.  The structure-backed specs share one pre-generated structure so the
offline Figure 1.a cost is paid once, not per backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.api import make_placer, normalize_spec
from repro.core.generator import MultiPlacementGenerator
from repro.experiments.config import SMOKE, ExperimentScale
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig, SynthesisResult
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizerConfig

BackendSelection = Union[str, Mapping[str, object]]

DEFAULT_BACKENDS: Sequence[str] = ("mps", "template", "annealing")


@dataclass
class SynthesisComparison:
    """Results of the same sizing loop under different placement backends."""

    results: Dict[str, SynthesisResult]

    def row(self, backend: str) -> Dict[str, object]:
        """Summary row for one backend."""
        result = self.results[backend]
        return {
            "backend": backend,
            "wall_seconds": round(result.elapsed_seconds, 3),
            "placement_seconds": round(result.placement_seconds, 3),
            "placement_ms_per_eval": round(
                1000.0 * result.placement_seconds / max(1, result.evaluations), 3
            ),
            "evaluations": result.evaluations,
            "best_objective": round(result.best.objective, 3),
            "spec_penalty": round(result.best.spec_penalty, 4),
        }

    def rows(self) -> List[Dict[str, object]]:
        """Summary rows for every backend, fastest placement first."""
        return [self.row(name) for name in sorted(self.results)]

    @property
    def mps_faster_than_annealing(self) -> bool:
        """True when the MPS-backed loop spends less time in placement than the annealing one."""
        if "mps" not in self.results or "annealing" not in self.results:
            return True
        return (
            self.results["mps"].placement_seconds
            < self.results["annealing"].placement_seconds
        )


def backend_specs(
    scale: ExperimentScale, seed: int = 0, structure=None, cost_function=None
) -> Dict[str, Dict[str, object]]:
    """Canonical spec dicts of the comparison's stock backends at ``scale``."""
    mps_spec: Dict[str, object] = {"kind": "mps"}
    service_spec: Dict[str, object] = {"kind": "service", "scale": scale.name, "seed": seed}
    if structure is not None:
        mps_spec["structure"] = structure
        service_spec["structure"] = structure
    else:
        mps_spec.update(scale=scale.name, seed=seed)
    if cost_function is not None:
        mps_spec["cost_function"] = cost_function
    return {
        "mps": mps_spec,
        "service": service_spec,
        "template": {"kind": "template", "seed": seed},
        "annealing": {
            "kind": "annealing",
            "iterations": scale.annealing_iterations,
            "seed": seed,
        },
        "genetic": {"kind": "genetic", "seed": seed},
        "random": {"kind": "random", "seed": seed},
    }


def run_synthesis_comparison(
    scale: ExperimentScale = SMOKE,
    backends: Optional[Sequence[BackendSelection]] = None,
    seed: int = 0,
) -> SynthesisComparison:
    """Run the two-stage opamp sizing loop with each requested backend.

    ``backends`` entries are registry kind names (``"mps"``, ``"template"``,
    …) or full ``make_placer`` spec dicts; the default triple reproduces the
    paper's comparison.
    """
    selections = list(backends) if backends else list(DEFAULT_BACKENDS)
    design = two_stage_opamp_design()
    circuit = design.circuit

    generator = MultiPlacementGenerator(circuit, scale.generator_config(circuit, seed=seed))
    structure = generator.generate()
    bounds = generator.bounds

    stock = backend_specs(
        scale, seed=seed, structure=structure, cost_function=generator.cost_function
    )
    config = SynthesisConfig(
        optimizer=SizingOptimizerConfig(max_iterations=scale.synthesis_iterations)
    )
    results: Dict[str, SynthesisResult] = {}
    for selection in selections:
        spec = normalize_spec(selection)
        if len(spec) == 1 and spec["kind"] in stock:
            spec = stock[spec["kind"]]
        label = str(selection) if isinstance(selection, str) else spec["kind"]
        backend = make_placer(spec, circuit, bounds=bounds)
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            backend,
            config=config,
            seed=seed,
        )
        results[label] = loop.run()
    return SynthesisComparison(results=results)
