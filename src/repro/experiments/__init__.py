"""Experiment harnesses regenerating every table and figure of the paper."""

from repro.experiments.config import ExperimentScale, FULL, MEDIUM, SMOKE
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.routing_compare import (
    RoutingComparison,
    RoutingComparisonRow,
    run_routing_comparison,
)
from repro.experiments.synthesis_compare import SynthesisComparison, run_synthesis_comparison
from repro.experiments.table1 import table1_rows
from repro.experiments.table2 import Table2Row, run_table2

__all__ = [
    "ExperimentScale",
    "FULL",
    "MEDIUM",
    "SMOKE",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "Figure7Result",
    "run_figure7",
    "RoutingComparison",
    "RoutingComparisonRow",
    "run_routing_comparison",
    "SynthesisComparison",
    "run_synthesis_comparison",
    "table1_rows",
    "Table2Row",
    "run_table2",
]
