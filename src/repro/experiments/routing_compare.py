"""Routed vs HPWL wirelength across the benchmark library.

The paper's cost calculator scores candidates "based on the wire-lengths
and area" — with HPWL standing in for the wires the router would actually
draw.  This experiment quantifies that gap: every benchmark circuit is
placed (template placement at minimum dimensions), routed by the global
router, and compared net by net.  The *detour factor* (routed / HPWL) is
the honest correction the routed-parasitics synthesis mode applies, and
the overflow column shows whether the layout was routable at all at the
default grid resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.template import TemplatePlacer
from repro.benchcircuits.library import benchmark_names, get_benchmark
from repro.cost.wirelength import per_net_wirelength
from repro.experiments.config import SMOKE, ExperimentScale
from repro.route import RouterConfig, derive_bounds, route_placement


@dataclass
class RoutingComparisonRow:
    """One circuit's routed-vs-HPWL comparison."""

    circuit: str
    nets: int
    hpwl: float
    routed_wirelength: float
    overflow: int
    max_congestion: int
    mirrored_nets: int
    routing_ms: float

    @property
    def detour_factor(self) -> float:
        """Routed wirelength over HPWL (>= 1 by construction)."""
        if self.hpwl <= 0:
            return 1.0
        return self.routed_wirelength / self.hpwl

    def as_dict(self) -> Dict[str, object]:
        """Plain-data row for the report table."""
        return {
            "circuit": self.circuit,
            "nets": self.nets,
            "hpwl": round(self.hpwl, 1),
            "routed": round(self.routed_wirelength, 1),
            "detour": round(self.detour_factor, 3),
            "overflow": self.overflow,
            "congestion": self.max_congestion,
            "mirrored": self.mirrored_nets,
            "route_ms": round(self.routing_ms, 1),
        }


@dataclass
class RoutingComparison:
    """The routed-vs-HPWL comparison over the benchmark library."""

    rows_by_circuit: List[RoutingComparisonRow] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        """Report-table rows."""
        return [row.as_dict() for row in self.rows_by_circuit]

    @property
    def all_routable(self) -> bool:
        """True when every circuit routed with zero overflow."""
        return all(row.overflow == 0 for row in self.rows_by_circuit)

    @property
    def mean_detour_factor(self) -> float:
        """Average routed/HPWL ratio over the library."""
        if not self.rows_by_circuit:
            return 1.0
        return sum(row.detour_factor for row in self.rows_by_circuit) / len(
            self.rows_by_circuit
        )


def run_routing_comparison(
    scale: ExperimentScale = SMOKE,
    seed: int = 0,
    circuits: Optional[Sequence[str]] = None,
    router: Optional[RouterConfig] = None,
) -> RoutingComparison:
    """Place, route and compare every benchmark circuit (or ``circuits``).

    ``scale`` and ``seed`` are accepted for harness uniformity; template
    placement is deterministic, so only ``seed`` reaches the placer.
    """
    comparison = RoutingComparison()
    for name in circuits if circuits is not None else benchmark_names():
        circuit = get_benchmark(name)
        placement = TemplatePlacer(circuit, seed=seed).place(circuit.min_dims())
        bounds = derive_bounds(placement.rects)
        layout = route_placement(circuit, placement, bounds=bounds, config=router)
        hpwl = per_net_wirelength(circuit, dict(placement.rects), bounds)
        comparison.rows_by_circuit.append(
            RoutingComparisonRow(
                circuit=name,
                nets=len(layout.nets),
                hpwl=sum(hpwl.values()),
                routed_wirelength=layout.total_wirelength,
                overflow=layout.overflow,
                max_congestion=layout.max_congestion,
                mirrored_nets=len(layout.mirrored_nets),
                routing_ms=layout.elapsed_seconds * 1000.0,
            )
        )
    return comparison
