"""Figure 5 — different sizes yield different floorplans; templates do not.

The experiment generates a multi-placement structure for the two-stage
opamp, instantiates it for two different dimension vectors (Figures 5.a and
5.b) and instantiates the template placer for the same vectors (Figure 5.c).
The qualitative claims checked are:

* the two structure instantiations use *different* block arrangements, and
* each structure instantiation costs no more than the template instantiation
  for the same dimensions (the structure can always fall back to a
  template, so it never does worse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.template import TemplatePlacer
from repro.benchcircuits.library import get_benchmark
from repro.core.generator import MultiPlacementGenerator
from repro.api import Placement
from repro.core.instantiator import PlacementInstantiator
from repro.experiments.config import SMOKE, ExperimentScale
from repro.geometry.rect import Rect
from repro.viz.ascii_art import render_ascii

Dims = Tuple[int, int]


@dataclass
class Figure5Result:
    """The two structure instantiations and the template comparison."""

    circuit: str
    structure: "object"
    dims_a: Tuple[Dims, ...]
    dims_b: Tuple[Dims, ...]
    instantiation_a: Placement
    instantiation_b: Placement
    template_cost_a: float
    template_cost_b: float
    template_rects_a: Dict[str, Rect]
    arrangements_differ: bool
    ascii_a: str
    ascii_b: str
    ascii_template: str

    @property
    def structure_beats_or_matches_template(self) -> bool:
        """True when both instantiations cost no more than the template's."""
        return (
            self.instantiation_a.total_cost <= self.template_cost_a * 1.001
            and self.instantiation_b.total_cost <= self.template_cost_b * 1.001
        )


def _size_vectors(circuit, structure) -> Tuple[Tuple[Dims, ...], Tuple[Dims, ...]]:
    """Two dimension vectors for which the structure holds different placements.

    The paper's Figure 5 instantiates the structure for two size sets the
    synthesis loop could plausibly propose; the most informative choices are
    the optimal dimension vectors of two stored placements with *different*
    block arrangements, ordered by quality.
    """
    stored = sorted(structure.placements(), key=lambda sp: sp.best_cost)
    if len(stored) >= 2:
        # Query at each placement's range midpoints so the structure returns
        # exactly that placement; prefer a pair with different arrangements.
        def midpoint_dims(sp) -> Tuple[Dims, ...]:
            return tuple(
                (rng.width.midpoint(), rng.height.midpoint()) for rng in sp.ranges
            )

        first = stored[0]
        second = next(
            (sp for sp in stored[1:] if sp.anchors != first.anchors), stored[1]
        )
        return midpoint_dims(first), midpoint_dims(second)
    # Degenerate structure (e.g. a single stored placement): fall back to
    # quarter- and three-quarter-point dimension vectors.
    small = []
    large = []
    for index, block in enumerate(circuit.blocks):
        quarter_w = block.min_w + max(1, (block.max_w - block.min_w) // 4)
        threequarter_w = block.min_w + 3 * (block.max_w - block.min_w) // 4
        quarter_h = block.min_h + max(1, (block.max_h - block.min_h) // 4)
        threequarter_h = block.min_h + 3 * (block.max_h - block.min_h) // 4
        if index % 2 == 0:
            small.append((quarter_w, quarter_h))
            large.append((threequarter_w, threequarter_h))
        else:
            small.append((threequarter_w, threequarter_h))
            large.append((quarter_w, quarter_h))
    return tuple(small), tuple(large)


def run_figure5(
    circuit_name: str = "two_stage_opamp",
    scale: ExperimentScale = SMOKE,
    seed: int = 0,
    dims_a: Optional[Sequence[Dims]] = None,
    dims_b: Optional[Sequence[Dims]] = None,
) -> Figure5Result:
    """Regenerate the Figure 5 comparison for ``circuit_name``."""
    circuit = get_benchmark(circuit_name)
    config = scale.generator_config(circuit, seed=seed)
    generator = MultiPlacementGenerator(circuit, config)
    structure = generator.generate()
    instantiator = PlacementInstantiator(structure)

    default_a, default_b = _size_vectors(circuit, structure)
    dims_a = tuple(dims_a) if dims_a is not None else default_a
    dims_b = tuple(dims_b) if dims_b is not None else default_b

    instantiation_a = instantiator.instantiate(dims_a)
    instantiation_b = instantiator.instantiate(dims_b)

    template = TemplatePlacer(circuit, generator.bounds, seed=seed)
    template_a = template.place(dims_a)
    template_b = template.place(dims_b)

    anchors_a = {name: (rect.x, rect.y) for name, rect in instantiation_a.rects.items()}
    anchors_b = {name: (rect.x, rect.y) for name, rect in instantiation_b.rects.items()}

    return Figure5Result(
        circuit=circuit.name,
        structure=structure,
        dims_a=dims_a,
        dims_b=dims_b,
        instantiation_a=instantiation_a,
        instantiation_b=instantiation_b,
        template_cost_a=template_a.total_cost,
        template_cost_b=template_b.total_cost,
        template_rects_a=template_a.rects,
        arrangements_differ=anchors_a != anchors_b,
        ascii_a=render_ascii(instantiation_a.rects, generator.bounds),
        ascii_b=render_ascii(instantiation_b.rects, generator.bounds),
        ascii_template=render_ascii(template_a.rects, generator.bounds),
    )
