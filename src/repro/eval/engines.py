"""The shared delta engine driving annealers over an IncrementalEvaluator.

The anchor loop (per-instance placer), the dimension loop (BDIO) and the
benchmarks all anneal the same shape of state — a per-block tuple — with
the same transaction discipline; :class:`PerturbDeltaEngine` implements
that discipline once.  What varies is only the perturbation rule and
which update slot (anchor or dims) a changed tuple entry fills.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence, Tuple, TypeVar

from repro.eval.incremental import BlockUpdate, IncrementalEvaluator

Entry = TypeVar("Entry")
State = Tuple[Entry, ...]

#: Builds one :data:`BlockUpdate` from ``(block_index, new_entry)``.
MakeUpdate = Callable[[int, Entry], BlockUpdate]


def anchor_update(index: int, anchor) -> BlockUpdate:
    """A move: the tuple entry is the block's new anchor."""
    return (index, anchor, None)


def dims_update(index: int, dims) -> BlockUpdate:
    """A resize: the tuple entry is the block's new dimensions."""
    return (index, None, dims)


class PerturbDeltaEngine:
    """A :class:`~repro.annealing.DeltaEngine` over per-block tuple states.

    Proposals call ``perturb(state, rng)`` — the optimizer's existing move
    rule, so the RNG draws match the pure path exactly — then hand only
    the changed entries to the evaluator, mapped through ``make_update``
    (:func:`anchor_update` or :func:`dims_update`).
    """

    def __init__(
        self,
        evaluator: IncrementalEvaluator,
        state: Sequence[Entry],
        perturb: Callable[[State, random.Random], State],
        make_update: MakeUpdate,
    ) -> None:
        self._evaluator = evaluator
        self._state: State = tuple(state)
        self._perturb = perturb
        self._make_update = make_update
        self._candidate: Optional[State] = None

    @property
    def evaluator(self) -> IncrementalEvaluator:
        """The evaluator pricing this engine's moves."""
        return self._evaluator

    def current_cost(self) -> float:
        return self._evaluator.total

    def snapshot(self) -> State:
        return self._state

    def propose(self, rng: random.Random) -> float:
        candidate = self._perturb(self._state, rng)
        updates = [
            self._make_update(index, candidate[index])
            for index in range(len(candidate))
            if candidate[index] != self._state[index]
        ]
        self._candidate = candidate
        return self._evaluator.propose(updates)

    def commit(self) -> None:
        self._evaluator.commit()
        assert self._candidate is not None
        self._state = self._candidate
        self._candidate = None

    def revert(self) -> None:
        self._evaluator.revert()
        self._candidate = None
