"""Incremental layout evaluation — one mutable state, exact cost deltas.

The from-scratch cost path rebuilds every rectangle and rescans every net
and block pair for each proposed move; this package restructures that
computation around a mutable :class:`LayoutState` with per-net, per-block
and per-group caches and an :class:`IncrementalEvaluator` that prices a
move by refreshing only what it touched.  Same numbers (bitwise, except
the resync-bounded routability bins), a fraction of the work — the delta
evaluation classic SA placers get their throughput from.

Optimizers obtain an evaluator from the cost function itself::

    evaluator = cost_function.bind(anchors, dims)
    total = evaluator.propose([(3, (10, 12), None)])   # move block 3
    evaluator.commit()                                  # or .revert()

so the cost weights remain the single source of truth.
"""

from repro.eval.engines import PerturbDeltaEngine, anchor_update, dims_update
from repro.eval.incremental import (
    DEFAULT_RESYNC_INTERVAL,
    BlockUpdate,
    IncrementalEvaluator,
)
from repro.eval.state import LayoutState

__all__ = [
    "BlockUpdate",
    "DEFAULT_RESYNC_INTERVAL",
    "IncrementalEvaluator",
    "LayoutState",
    "PerturbDeltaEngine",
    "anchor_update",
    "dims_update",
]
