"""Incremental and batch layout evaluation.

The from-scratch cost path rebuilds every rectangle and rescans every net
and block pair for each proposed move; this package restructures that
computation two ways.  :class:`IncrementalEvaluator` prices *single-move
deltas* against a mutable :class:`LayoutState` with per-net, per-block and
per-group caches.  :class:`BatchEvaluator` scores *many whole layouts at
once* on stacked ``(n_candidates, n_blocks, 4)`` numpy rect tensors.
Same numbers either way — bitwise identical to the scalar oracle (the
incremental path excepting resync-bounded routability) — at a fraction of
the work.

Optimizers obtain either evaluator from the cost function itself::

    evaluator = cost_function.bind(anchors, dims)       # delta pricing
    total = evaluator.propose([(3, (10, 12), None)])    # move block 3
    evaluator.commit()                                  # or .revert()

    batch = cost_function.batch()                       # array pricing
    totals = batch.totals(batch.stack(population, dims))

so the cost weights remain the single source of truth.  Batch consumers
should prefer :func:`batch_evaluator_for`, which returns ``None`` (fall
back to the scalar loop) for overriding cost subclasses, sequential
wirelength models, a missing numpy, or ``REPRO_VECTORIZE=0``.
"""

from repro.eval.batch import (
    ENV_VECTORIZE,
    batch_eval_stats,
    batch_evaluator_for,
    record_batch,
    record_fallback,
    reset_batch_eval_stats,
    score_breakdowns,
    score_totals,
    vectorize_enabled,
)
from repro.eval.engines import PerturbDeltaEngine, anchor_update, dims_update
from repro.eval.incremental import (
    DEFAULT_RESYNC_INTERVAL,
    BlockUpdate,
    IncrementalEvaluator,
)
from repro.eval.state import LayoutState
from repro.eval.vector import (
    NUMPY_HINT,
    VECTORIZABLE_MODELS,
    BatchBreakdown,
    BatchEvaluator,
    numpy_available,
)

__all__ = [
    "BatchBreakdown",
    "BatchEvaluator",
    "BlockUpdate",
    "DEFAULT_RESYNC_INTERVAL",
    "ENV_VECTORIZE",
    "IncrementalEvaluator",
    "LayoutState",
    "NUMPY_HINT",
    "PerturbDeltaEngine",
    "VECTORIZABLE_MODELS",
    "anchor_update",
    "batch_eval_stats",
    "batch_evaluator_for",
    "numpy_available",
    "record_batch",
    "record_fallback",
    "reset_batch_eval_stats",
    "score_breakdowns",
    "score_totals",
    "vectorize_enabled",
]
