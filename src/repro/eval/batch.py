"""Batch-scoring orchestration: path selection, env gate and counters.

This module decides, per cost function, whether a batch of candidate
layouts scores on the vectorized :class:`~repro.eval.vector.BatchEvaluator`
or on the scalar oracle loop, and keeps process-wide counters of how much
traffic went each way:

* ``batch_evals`` — vectorized sweeps run,
* ``batch_candidates`` — candidate layouts scored vectorized,
* ``vector_fallbacks`` — batches that fell back to the scalar loop
  (numpy missing, ``REPRO_VECTORIZE=0``, an overriding cost subclass or
  a non-vectorizable wirelength model).

The counters mirror into the global observability metrics registry (as
``eval.batch_evals`` etc.) while tracing is enabled, so the serving
``/metrics`` endpoint shows vectorized vs scalar traffic alongside the
per-service counters.

Setting the environment variable ``REPRO_VECTORIZE=0`` (or ``false`` /
``no`` / ``off``) forces every consumer onto the scalar oracle path —
CI runs the eval suite both ways.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cost.cost_function import CostBreakdown, PlacementCostFunction
from repro.eval.vector import BatchEvaluator, VECTORIZABLE_MODELS, numpy_available
from repro.obs.spans import is_enabled as _obs_enabled, metrics as _obs_metrics

#: Environment variable gating the vectorized path (default: enabled).
ENV_VECTORIZE = "REPRO_VECTORIZE"

_FALSE_VALUES = frozenset({"0", "false", "no", "off"})

#: Namespace the counters occupy in the global metrics registry.
METRIC_PREFIX = "eval."

_COUNTER_KEYS = ("batch_evals", "batch_candidates", "vector_fallbacks")

_lock = threading.Lock()
_counters: Dict[str, int] = {key: 0 for key in _COUNTER_KEYS}

#: One BatchEvaluator per cost function — the static circuit arrays are
#: the expensive part, and cost functions are long-lived and immutable.
_evaluators: "weakref.WeakKeyDictionary[PlacementCostFunction, BatchEvaluator]"
_evaluators = weakref.WeakKeyDictionary()


def vectorize_enabled() -> bool:
    """True unless ``REPRO_VECTORIZE`` disables the vector path."""
    return os.environ.get(ENV_VECTORIZE, "1").strip().lower() not in _FALSE_VALUES


def batch_evaluator_for(
    cost_function: PlacementCostFunction,
) -> Optional[BatchEvaluator]:
    """The cached :class:`BatchEvaluator` for ``cost_function``, or ``None``.

    ``None`` means "use the scalar loop": numpy is unavailable, the env
    gate is off, the cost subclass overrides evaluation
    (``supports_vectorized`` is False) or the wirelength model is
    inherently sequential.  Callers need no further checks.
    """
    if not vectorize_enabled() or not numpy_available():
        return None
    if not cost_function.supports_vectorized:
        return None
    if cost_function.wirelength_model not in VECTORIZABLE_MODELS:
        return None
    with _lock:
        evaluator = _evaluators.get(cost_function)
        if evaluator is None:
            evaluator = BatchEvaluator(cost_function)
            _evaluators[cost_function] = evaluator
        return evaluator


# ---------------------------------------------------------------------- #
# Counters
# ---------------------------------------------------------------------- #
def record_batch(candidates: int, sweeps: int = 1) -> None:
    """Count one (or more) vectorized sweeps over ``candidates`` layouts."""
    with _lock:
        _counters["batch_evals"] += sweeps
        _counters["batch_candidates"] += candidates
    if _obs_enabled():
        registry = _obs_metrics()
        registry.counter(METRIC_PREFIX + "batch_evals").inc(sweeps)
        registry.counter(METRIC_PREFIX + "batch_candidates").inc(candidates)


def record_fallback(batches: int = 1) -> None:
    """Count batches that scored on the scalar loop instead."""
    with _lock:
        _counters["vector_fallbacks"] += batches
    if _obs_enabled():
        _obs_metrics().counter(METRIC_PREFIX + "vector_fallbacks").inc(batches)


def batch_eval_stats() -> Dict[str, int]:
    """Snapshot of the process-wide batch-evaluation counters."""
    with _lock:
        return dict(_counters)


def reset_batch_eval_stats() -> None:
    """Zero the process-wide counters (tests and benchmarks)."""
    with _lock:
        for key in _COUNTER_KEYS:
            _counters[key] = 0


# ---------------------------------------------------------------------- #
# Scoring entry points
# ---------------------------------------------------------------------- #
def score_totals(
    cost_function: PlacementCostFunction,
    anchors_batch: Sequence[Sequence[Tuple[int, int]]],
    dims: Sequence[Tuple[int, int]],
) -> Tuple[List[float], bool]:
    """``(totals, used_vector)`` for a batch of anchor vectors at ``dims``.

    Totals are bitwise identical either way; the flag reports which path
    ran (and the corresponding process-wide counter was bumped).
    """
    evaluator = batch_evaluator_for(cost_function)
    if evaluator is None:
        record_fallback()
        return (
            [cost_function.evaluate_layout(anchors, dims).total for anchors in anchors_batch],
            False,
        )
    totals = evaluator.totals(evaluator.stack(anchors_batch, dims))
    record_batch(len(totals))
    return totals.tolist(), True


def score_breakdowns(
    cost_function: PlacementCostFunction,
    anchors_batch: Sequence[Sequence[Tuple[int, int]]],
    dims: Sequence[Tuple[int, int]],
) -> Tuple[List[CostBreakdown], bool]:
    """``(breakdowns, used_vector)`` — like :func:`score_totals`, per term."""
    evaluator = batch_evaluator_for(cost_function)
    if evaluator is None:
        record_fallback()
        return (
            [cost_function.evaluate_layout(anchors, dims) for anchors in anchors_batch],
            False,
        )
    breakdowns = evaluator.breakdowns(evaluator.stack(anchors_batch, dims))
    record_batch(len(breakdowns))
    return breakdowns, True
