"""Vectorized batch layout scoring on stacked rect tensors.

Annealing proposal batches, genetic populations and ``instantiate_batch``
candidate ranking all score dozens-to-thousands of layouts of the *same*
circuit.  :class:`BatchEvaluator` stacks those candidates into one numpy
rect tensor of shape ``(n_candidates, n_blocks, 4)`` (``[x, y, w, h]`` per
block, circuit block-index order) and evaluates every cost term across the
whole batch in a handful of fused array sweeps:

* HPWL / star wirelength via per-net terminal gathers + masked axis
  min/max reductions,
* pairwise overlap over the upper-triangle block-pair index arrays,
* out-of-bounds clamping against the canvas,
* symmetry-group mismatch through index-paired coordinate algebra,
* RUDY congestion as per-net vectorized bin spreads.

The scalar :meth:`~repro.cost.cost_function.PlacementCostFunction.evaluate`
path stays the bit-exact oracle.  Every kernel here replicates the scalar
arithmetic operation for operation — reductions that the scalar code runs
as sequential Python sums are accumulated in the same order over the
net/pair/bin axis (vectorized over candidates only), the 2-pin star
shortcut is special-cased, and integer terms are computed in int64 — so a
``BatchEvaluator`` total is *bitwise identical* to ``evaluate_layout`` for
the vectorizable wirelength models.  That guarantee is what lets the
optimizers swap in batch scoring without disturbing fixed-seed
trajectories.

The ``"mst"`` wirelength model (sequential Prim) and cost subclasses that
override evaluation (see
:attr:`~repro.cost.cost_function.PlacementCostFunction.supports_vectorized`)
cannot be array-evaluated; :mod:`repro.eval.batch` falls back to the
scalar loop for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cost.cost_function import CostBreakdown, PlacementCostFunction
from repro.cost.penalties import DEFAULT_TRACK_CAPACITY

try:  # pragma: no cover - exercised by uninstalling numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Message raised when vectorized evaluation is requested without numpy.
NUMPY_HINT = (
    "numpy is required for vectorized batch evaluation; install it "
    "(python -m pip install numpy) or stay on the scalar oracle path — "
    "PlacementCostFunction.evaluate_layout, which repro.eval.batch falls "
    "back to automatically (and which REPRO_VECTORIZE=0 forces)."
)

#: Wirelength models the batch kernels can express.  ``"mst"`` is an
#: inherently sequential Prim pass and keeps the scalar loop.
VECTORIZABLE_MODELS = frozenset({"hpwl", "star"})

#: Number of RUDY bins per axis (matches ``routability_penalty``'s default).
_RUDY_BINS = 8

#: Rough cap on elements of the largest per-chunk intermediate array;
#: larger batches are scored in candidate slices and re-concatenated.
_CHUNK_ELEMENTS = 1 << 22

#: Per-term array fields of :class:`BatchBreakdown`, in compose order.
_BREAKDOWN_FIELDS = (
    "total",
    "wirelength",
    "area",
    "overlap",
    "out_of_bounds",
    "symmetry",
    "aspect_ratio",
    "routability",
)


def numpy_available() -> bool:
    """True when numpy imported and the vector kernels can run."""
    return _np is not None


def require_numpy():
    """The numpy module, or an :class:`ImportError` pointing at the fallback."""
    if _np is None:
        raise ImportError(NUMPY_HINT)
    return _np


@dataclass(frozen=True)
class BatchBreakdown:
    """Per-candidate cost components of one batch evaluation.

    Every field is a float64 array of shape ``(n_candidates,)``; ``total``
    carries the weighted sum and the rest the unweighted components, so
    ``breakdown(i)`` reconstructs the scalar :class:`CostBreakdown` of
    candidate ``i`` bit for bit.
    """

    total: "Sequence[float]"
    wirelength: "Sequence[float]"
    area: "Sequence[float]"
    overlap: "Sequence[float]"
    out_of_bounds: "Sequence[float]"
    symmetry: "Sequence[float]"
    aspect_ratio: "Sequence[float]"
    routability: "Sequence[float]"

    def __len__(self) -> int:
        return len(self.total)

    def breakdown(self, index: int) -> CostBreakdown:
        """The scalar :class:`CostBreakdown` of candidate ``index``."""
        return CostBreakdown(
            total=float(self.total[index]),
            wirelength=float(self.wirelength[index]),
            area=float(self.area[index]),
            overlap=float(self.overlap[index]),
            out_of_bounds=float(self.out_of_bounds[index]),
            symmetry=float(self.symmetry[index]),
            aspect_ratio=float(self.aspect_ratio[index]),
            routability=float(self.routability[index]),
        )

    def breakdowns(self) -> List[CostBreakdown]:
        """Scalar breakdowns of every candidate, in batch order."""
        return [self.breakdown(i) for i in range(len(self))]

    def best_index(self) -> int:
        """Index of the lowest-total candidate."""
        np = require_numpy()
        return int(np.argmin(np.asarray(self.total)))


class _GroupArrays:
    """Index-paired coordinate arrays of one symmetry group."""

    __slots__ = ("left", "right", "selfs", "count")

    def __init__(self, left: List[int], right: List[int], selfs: List[int]) -> None:
        self.left = left
        self.right = right
        self.selfs = selfs
        self.count = len(left) + len(selfs)


class BatchEvaluator:
    """Score stacked candidate layouts of one circuit in fused array sweeps.

    Construct via :meth:`PlacementCostFunction.batch` (mirroring
    :meth:`~repro.cost.cost_function.PlacementCostFunction.bind`) or let
    :func:`repro.eval.batch.batch_evaluator_for` pick the path.  The
    evaluator is stateless between calls and safe to share across threads.

    Raises
    ------
    ImportError
        When numpy is unavailable (:data:`NUMPY_HINT`).
    TypeError
        When the cost subclass overrides evaluation
        (``supports_vectorized`` is False).
    ValueError
        For non-vectorizable wirelength models (``"mst"``).
    """

    def __init__(self, cost_function: PlacementCostFunction) -> None:
        np = require_numpy()
        if not cost_function.supports_vectorized:
            raise TypeError(
                f"{type(cost_function).__name__} overrides evaluate()/evaluate_layout()/"
                "compose(); its custom terms cannot be array-evaluated. Keep the "
                "scalar loop (repro.eval.batch falls back to it automatically)."
            )
        model = cost_function.wirelength_model
        if model not in VECTORIZABLE_MODELS:
            raise ValueError(
                f"wirelength model {model!r} is inherently sequential and cannot be "
                f"vectorized; vectorizable models: {sorted(VECTORIZABLE_MODELS)}"
            )
        self._cost_function = cost_function
        self._model = model
        circuit = cost_function.circuit
        bounds = cost_function.bounds
        self._circuit = circuit
        self._bounds = bounds
        self._weights = cost_function.weights
        self._num_blocks = circuit.num_blocks

        # --- per-net terminal gather arrays (padded dense (N, D) layout) ---
        # Each slot is either a (block_index, fx, fy) pin — position
        # X + fx*W, Y + fy*H, Rect.terminal_position's arithmetic — or the
        # net's constant external I/O point, exactly as LayoutState
        # precomputes them.  Padding slots are masked out of reductions.
        per_net: List[List[Tuple[int, float, float, float, float, bool]]] = []
        max_deg = 1
        for net in circuit.nets:
            slots: List[Tuple[int, float, float, float, float, bool]] = []
            for terminal in net.terminals:
                block = circuit.block(terminal.block)
                pin = block.pin(terminal.pin)
                slots.append(
                    (circuit.block_index(terminal.block), pin.fx, pin.fy, 0.0, 0.0, False)
                )
            if net.external and bounds is not None:
                fx, fy = net.io_position
                slots.append((0, 0.0, 0.0, fx * bounds.width, fy * bounds.height, True))
            per_net.append(slots)
            max_deg = max(max_deg, len(slots))

        num_nets = circuit.num_nets
        self._num_nets = num_nets
        self._term_block = np.zeros((num_nets, max_deg), dtype=np.intp)
        self._term_fx = np.zeros((num_nets, max_deg))
        self._term_fy = np.zeros((num_nets, max_deg))
        self._term_const_x = np.zeros((num_nets, max_deg))
        self._term_const_y = np.zeros((num_nets, max_deg))
        self._term_is_ext = np.zeros((num_nets, max_deg), dtype=bool)
        self._term_mask = np.zeros((num_nets, max_deg), dtype=bool)
        degrees: List[int] = []
        for n, slots in enumerate(per_net):
            degrees.append(len(slots))
            for d, (bi, fx, fy, cx, cy, ext) in enumerate(slots):
                self._term_block[n, d] = bi
                self._term_fx[n, d] = fx
                self._term_fy[n, d] = fy
                self._term_const_x[n, d] = cx
                self._term_const_y[n, d] = cy
                self._term_is_ext[n, d] = ext
                self._term_mask[n, d] = True
        self._net_degrees = degrees
        self._degree_arr = np.asarray(degrees, dtype=np.int64).reshape(1, num_nets)
        self._net_weights = [net.weight for net in circuit.nets]

        # --- block-pair upper-triangle indices for overlap / legality ---
        self._pair_i, self._pair_j = np.triu_indices(self._num_blocks, k=1)

        # --- symmetry-group index pairs ---
        block_index = circuit.block_index
        self._groups: List[_GroupArrays] = []
        for group in circuit.symmetry_groups:
            left = [block_index(a) for a, _ in group.pairs]
            right = [block_index(b) for _, b in group.pairs]
            selfs = [block_index(name) for name in group.self_symmetric]
            self._groups.append(_GroupArrays(left, right, selfs))

        # --- RUDY bin geometry (matches routability_penalty's defaults) ---
        if bounds is not None:
            self._bin_w = bounds.width / _RUDY_BINS
            self._bin_h = bounds.height / _RUDY_BINS
            span = np.arange(_RUDY_BINS + 1)
            self._bin_lo_x = span[:-1] * self._bin_w
            self._bin_hi_x = span[1:] * self._bin_w
            self._bin_lo_y = span[:-1] * self._bin_h
            self._bin_hi_y = span[1:] * self._bin_h

        # Largest per-candidate intermediate (pairs, gathered terminals,
        # RUDY bin grid) bounds how many candidates one chunk may hold.
        per_candidate = max(
            1,
            self._num_blocks * self._num_blocks,  # the overlap matrix
            num_nets * max_deg,
            _RUDY_BINS * _RUDY_BINS,
        )
        self._chunk = max(1, _CHUNK_ELEMENTS // per_candidate)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cost_function(self) -> PlacementCostFunction:
        """The cost function whose weights/bounds/model the kernels mirror."""
        return self._cost_function

    @property
    def num_blocks(self) -> int:
        """Blocks per candidate layout (the tensor's second axis)."""
        return self._num_blocks

    # ------------------------------------------------------------------ #
    # Tensor construction
    # ------------------------------------------------------------------ #
    def stack(self, anchors_batch, dims) -> "object":
        """Stack anchors + dims into the ``(n_candidates, n_blocks, 4)`` tensor.

        ``anchors_batch`` is ``(n_candidates, n_blocks, 2)`` (any nested
        sequence); ``dims`` is either one shared ``(n_blocks, 2)`` vector
        (genetic populations, stored-placement ranking) or a per-candidate
        ``(n_candidates, n_blocks, 2)`` batch.
        """
        np = require_numpy()
        anchors = np.asarray(anchors_batch, dtype=np.int64)
        if anchors.ndim != 3 or anchors.shape[1:] != (self._num_blocks, 2):
            raise ValueError(
                "anchors_batch must have shape (n_candidates, "
                f"{self._num_blocks}, 2), got {anchors.shape}"
            )
        dims_arr = np.asarray(dims, dtype=np.int64)
        count = anchors.shape[0]
        if dims_arr.shape == (self._num_blocks, 2):
            dims_arr = np.broadcast_to(dims_arr, (count, self._num_blocks, 2))
        elif dims_arr.shape != (count, self._num_blocks, 2):
            raise ValueError(
                f"dims must have shape ({self._num_blocks}, 2) or "
                f"({count}, {self._num_blocks}, 2), got {dims_arr.shape}"
            )
        rects = np.empty((count, self._num_blocks, 4), dtype=np.int64)
        rects[:, :, :2] = anchors
        rects[:, :, 2:] = dims_arr
        return rects

    def _validate(self, rects):
        np = _np
        rects = np.asarray(rects)
        if rects.ndim != 3 or rects.shape[1:] != (self._num_blocks, 4):
            raise ValueError(
                "rect tensor must have shape (n_candidates, "
                f"{self._num_blocks}, 4), got {rects.shape}"
            )
        if not np.issubdtype(rects.dtype, np.integer):
            raise TypeError(
                f"rect tensor must be integer-valued grid coordinates, got dtype {rects.dtype}"
            )
        rects = rects.astype(np.int64, copy=False)
        if rects.size and int(rects[:, :, 2:].min()) < 0:
            raise ValueError("rectangle dimensions must be non-negative")
        return rects

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate_batch(self, rects) -> BatchBreakdown:
        """Score every candidate of the rect tensor.

        Returns a :class:`BatchBreakdown` whose per-candidate components
        and totals are bitwise identical to running
        :meth:`PlacementCostFunction.evaluate_layout` per candidate.
        """
        np = require_numpy()
        rects = self._validate(rects)
        count = rects.shape[0]
        if count <= self._chunk:
            return self._evaluate_chunk(rects)
        parts = [
            self._evaluate_chunk(rects[start : start + self._chunk])
            for start in range(0, count, self._chunk)
        ]
        return BatchBreakdown(
            **{
                field: np.concatenate([getattr(part, field) for part in parts])
                for field in _BREAKDOWN_FIELDS
            }
        )

    def totals(self, rects) -> "object":
        """The weighted ``(n_candidates,)`` cost vector alone."""
        return self.evaluate_batch(rects).total

    def breakdowns(self, rects) -> List[CostBreakdown]:
        """Scalar :class:`CostBreakdown` per candidate, in batch order."""
        return self.evaluate_batch(rects).breakdowns()

    def feasible_mask(self, rects) -> "object":
        """Per-candidate legality (in-bounds and overlap-free) booleans.

        Matches the scalar check exactly: every rect satisfies
        ``FloorplanBounds.contains`` and no pair satisfies the strict
        ``Rect.intersects`` (which can fire on zero-area touching rects,
        so this is *not* simply ``overlap == 0``).  Requires bounds.
        """
        np = require_numpy()
        if self._bounds is None:
            raise ValueError("feasible_mask requires floorplan bounds on the cost function")
        rects = self._validate(rects)
        count = rects.shape[0]
        if count == 0:
            return np.zeros(0, dtype=bool)
        chunks = []
        for start in range(0, count, self._chunk):
            chunks.append(self._feasible_chunk(rects[start : start + self._chunk]))
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]

    # ------------------------------------------------------------------ #
    # Kernels (one candidate chunk each)
    # ------------------------------------------------------------------ #
    def _evaluate_chunk(self, rects) -> BatchBreakdown:
        np = _np
        weights = self._weights
        count = rects.shape[0]
        xs = rects[:, :, 0]
        ys = rects[:, :, 1]
        ws = rects[:, :, 2]
        hs = rects[:, :, 3]

        px, py = self._positions(xs, ys, ws, hs)
        wirelength, spans = self._wirelength(px, py, count)
        area, aspect = self._bbox_terms(xs, ys, ws, hs)
        zeros = np.zeros(count)

        overlap = self._overlap(xs, ys, ws, hs) if weights.overlap else zeros
        oob = zeros
        if weights.out_of_bounds and self._bounds is not None:
            oob = self._out_of_bounds(xs, ys, ws, hs)
        symmetry = zeros
        if weights.symmetry and self._groups:
            symmetry = self._symmetry(xs, ys, ws, hs, count)
        if not weights.aspect_ratio:
            aspect = zeros
        routability = zeros
        if weights.routability and self._bounds is not None:
            routability = self._routability(spans, count)

        # The exact expression of PlacementCostFunction.compose, applied
        # elementwise — same left-to-right association, same weights.
        total = (
            weights.wirelength * wirelength
            + weights.area * area
            + weights.overlap * overlap
            + weights.out_of_bounds * oob
            + weights.symmetry * symmetry
            + weights.aspect_ratio * aspect
            + weights.routability * routability
        )
        return BatchBreakdown(
            total=total,
            wirelength=wirelength,
            area=area,
            overlap=overlap,
            out_of_bounds=oob,
            symmetry=symmetry,
            aspect_ratio=aspect,
            routability=routability,
        )

    def _positions(self, xs, ys, ws, hs):
        """Gathered terminal positions, shape ``(count, nets, max_degree)``.

        ``X + fx*W`` / ``Y + fy*H`` per pin slot (Rect.terminal_position's
        arithmetic), constants substituted on external I/O slots.
        """
        np = _np
        if self._num_nets == 0:
            empty = np.zeros((xs.shape[0], 0, 1))
            return empty, empty
        blocks = self._term_block
        px = xs[:, blocks] + self._term_fx * ws[:, blocks]
        py = ys[:, blocks] + self._term_fy * hs[:, blocks]
        if self._term_is_ext.any():
            px = np.where(self._term_is_ext, self._term_const_x, px)
            py = np.where(self._term_is_ext, self._term_const_y, py)
        return px, py

    def _wirelength(self, px, py, count):
        """Weighted total wirelength plus the per-net bbox spans.

        Returns ``(totals, (x_lo, x_hi, y_lo, y_hi))``; the spans feed the
        RUDY kernel, which measures the same terminal bounding boxes.
        """
        np = _np
        if self._num_nets == 0:
            zeros = np.zeros(count)
            return zeros, None
        mask = self._term_mask
        inf = np.inf
        x_lo = np.min(np.where(mask, px, inf), axis=2)
        x_hi = np.max(np.where(mask, px, -inf), axis=2)
        y_lo = np.min(np.where(mask, py, inf), axis=2)
        y_hi = np.max(np.where(mask, py, -inf), axis=2)
        # (max-min)+(max-min) is also bitwise-exact for 2-pin nets, where
        # the scalar shortcut computes abs differences.
        span = (x_hi - x_lo) + (y_hi - y_lo)
        degree = self._degree_arr
        if self._model == "star":
            lengths = np.where(degree == 2, span, self._star_lengths(px, py, count))
        else:
            lengths = span
        lengths = np.where(degree >= 2, lengths, 0.0)

        # Sequential per-net accumulation in net order — the same
        # left-to-right float sum total_wirelength runs.
        totals = np.zeros(count)
        for n, weight in enumerate(self._net_weights):
            totals += weight * lengths[:, n]
        return totals, (x_lo, x_hi, y_lo, y_hi)

    def _star_lengths(self, px, py, count):
        """Star-model per-net lengths (degree > 2), sequential over slots."""
        np = _np
        mask = self._term_mask
        max_deg = mask.shape[1]
        sum_x = np.zeros((count, self._num_nets))
        sum_y = np.zeros((count, self._num_nets))
        for d in range(max_deg):
            slot = mask[:, d]
            sum_x += np.where(slot, px[:, :, d], 0.0)
            sum_y += np.where(slot, py[:, :, d], 0.0)
        degree = np.maximum(self._degree_arr, 1).astype(np.float64)
        cx = sum_x / degree
        cy = sum_y / degree
        deviation = np.zeros((count, self._num_nets))
        for d in range(max_deg):
            slot = mask[:, d]
            term = np.abs(px[:, :, d] - cx) + np.abs(py[:, :, d] - cy)
            deviation += np.where(slot, term, 0.0)
        return deviation

    def _bbox_terms(self, xs, ys, ws, hs):
        """Bounding-box area and aspect-ratio penalty (fused int64 scan)."""
        np = _np
        x_lo = xs.min(axis=1)
        y_lo = ys.min(axis=1)
        x_hi = (xs + ws).max(axis=1)
        y_hi = (ys + hs).max(axis=1)
        bbox_w = x_hi - x_lo
        bbox_h = y_hi - y_lo
        area = (bbox_w * bbox_h).astype(np.float64)
        valid = (bbox_w != 0) & (bbox_h != 0)
        # aspect = w/h, flipped into [1, inf) via 1.0/aspect exactly as
        # aspect_ratio_penalty computes it (not h/w, which rounds apart).
        ratio = bbox_w / np.where(bbox_h == 0, 1, bbox_h)
        ratio = np.where(ratio < 1.0, 1.0 / np.where(ratio > 0.0, ratio, 1.0), ratio)
        aspect = np.where(valid, np.maximum(0.0, ratio - 1.0), 0.0)
        return area, aspect

    def _overlap(self, xs, ys, ws, hs):
        """Total pairwise overlap area per candidate (integer-exact).

        Integer sums are exact under any regrouping, so unlike the float
        terms this kernel is free to change shape: it broadcasts the full
        symmetric ``(candidates, blocks, blocks)`` overlap matrix — much
        cheaper than gathering both ends of every pair by fancy indexing —
        then halves the matrix sum after removing the self-overlap
        diagonal.  Coordinates that fit comfortably in int32 take a
        narrower path for memory bandwidth; pair areas are accumulated in
        int64 either way.
        """
        np = _np
        if self._num_blocks < 2 or xs.shape[0] == 0:
            return np.zeros(xs.shape[0])
        x2 = xs + ws
        y2 = ys + hs
        # Dims are validated non-negative, so x2/y2 bound the coordinates
        # from above and xs/ys from below.
        lo = min(int(xs.min()), int(ys.min()))
        hi = max(int(x2.max()), int(y2.max()))
        if -(1 << 30) < lo and hi < (1 << 30):
            # Differences of values within +/- 2**30 cannot wrap int32.
            x1, y1 = xs.astype(np.int32), ys.astype(np.int32)
            x2, y2 = x2.astype(np.int32), y2.astype(np.int32)
        else:
            x1, y1 = xs, ys
        ow = np.minimum(x2[:, :, None], x2[:, None, :])
        ow -= np.maximum(x1[:, :, None], x1[:, None, :])
        np.maximum(ow, 0, out=ow)
        oh = np.minimum(y2[:, :, None], y2[:, None, :])
        oh -= np.maximum(y1[:, :, None], y1[:, None, :])
        np.maximum(oh, 0, out=oh)
        areas = ow.astype(np.int64, copy=False)
        areas *= oh
        totals = areas.sum(axis=(1, 2))
        totals -= (ws * hs).sum(axis=1)  # drop the self-overlap diagonal
        return (totals >> 1).astype(np.float64)

    def _out_of_bounds(self, xs, ys, ws, hs):
        """Total block area outside the canvas per candidate."""
        np = _np
        bounds = self._bounds
        iw = np.minimum(xs + ws, bounds.width) - np.maximum(xs, 0)
        ih = np.minimum(ys + hs, bounds.height) - np.maximum(ys, 0)
        inside = np.where((iw > 0) & (ih > 0), iw * ih, 0)
        return (ws * hs - inside).sum(axis=1).astype(np.float64)

    def _symmetry(self, xs, ys, ws, hs, count):
        """Total symmetry mismatch, group by group in group order."""
        np = _np
        # Rect.center arithmetic: x + w/2.0 (float divide, then add).
        cx = xs + ws / 2.0
        cy = ys + hs / 2.0
        total = np.zeros(count)
        for group in self._groups:
            acc = np.zeros(count)
            for li, ri in zip(group.left, group.right):
                acc += (cx[:, li] + cx[:, ri]) / 2.0
            for si in group.selfs:
                acc += cx[:, si]
            axis = acc / group.count
            mismatch = np.zeros(count)
            for li, ri in zip(group.left, group.right):
                midpoint = (cx[:, li] + cx[:, ri]) / 2.0
                mismatch += np.abs(midpoint - axis)
                mismatch += np.abs(cy[:, li] - cy[:, ri])
            for si in group.selfs:
                mismatch += np.abs(cx[:, si] - axis)
            total += mismatch
        return total

    def _routability(self, spans, count):
        """RUDY congestion above track capacity, sequential over nets/bins.

        Per net the scalar code spreads ``rudy * bin_overlap_area`` onto
        disjoint bins; accumulating one net's whole (vectorized) spread at
        a time in net order reproduces the scalar density bins bitwise,
        because each bin receives at most one contribution per net.
        """
        np = _np
        density = np.zeros((count, _RUDY_BINS * _RUDY_BINS))
        if spans is not None:
            x_lo, x_hi, y_lo, y_hi = spans
            for n, weight in enumerate(self._net_weights):
                if self._net_degrees[n] < 2:
                    continue
                xl = x_lo[:, n]
                yl = y_lo[:, n]
                # Degenerate (collinear) boxes still occupy one track.
                xh = np.maximum(x_hi[:, n], xl + 1.0)
                yh = np.maximum(y_hi[:, n], yl + 1.0)
                width = xh - xl
                height = yh - yl
                rudy = weight * (width + height) / (width * height)
                ow = np.maximum(
                    np.minimum(xh[:, None], self._bin_hi_x)
                    - np.maximum(xl[:, None], self._bin_lo_x),
                    0.0,
                )
                oh = np.maximum(
                    np.minimum(yh[:, None], self._bin_hi_y)
                    - np.maximum(yl[:, None], self._bin_lo_y),
                    0.0,
                )
                # Bin index j*bins + i: rows are y bins, columns x bins.
                areas = ow[:, None, :] * oh[:, :, None]
                density += (rudy[:, None, None] * areas).reshape(
                    count, _RUDY_BINS * _RUDY_BINS
                )
        threshold = DEFAULT_TRACK_CAPACITY * (self._bin_w * self._bin_h)
        penalty = np.zeros(count)
        for b in range(_RUDY_BINS * _RUDY_BINS):
            column = density[:, b]
            penalty += np.where(column > threshold, column - threshold, 0.0)
        return penalty

    def _feasible_chunk(self, rects):
        np = _np
        bounds = self._bounds
        xs = rects[:, :, 0]
        ys = rects[:, :, 1]
        ws = rects[:, :, 2]
        hs = rects[:, :, 3]
        contained = (
            (xs >= 0) & (ys >= 0) & (xs + ws <= bounds.width) & (ys + hs <= bounds.height)
        ).all(axis=1)
        pair_i, pair_j = self._pair_i, self._pair_j
        if len(pair_i) == 0:
            return contained
        xi, xj = xs[:, pair_i], xs[:, pair_j]
        yi, yj = ys[:, pair_i], ys[:, pair_j]
        # Rect.intersects verbatim (strict inequalities), which differs
        # from "overlap area > 0" on zero-area rects.
        intersects = (
            (xi < xj + ws[:, pair_j])
            & (xj < xi + ws[:, pair_i])
            & (yi < yj + hs[:, pair_j])
            & (yj < yi + hs[:, pair_i])
        )
        return contained & ~intersects.any(axis=1)
