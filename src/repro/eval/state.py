"""The mutable layout state behind incremental cost evaluation.

Every optimizer in the library proposes *small* changes — move one block,
swap two anchors, resize a handful of modules — yet the from-scratch cost
path rebuilds every rectangle and rescans every net and every pair of
blocks per proposal.  :class:`LayoutState` keeps the layout mutable and
caches exactly the quantities whose recomputation dominates that scan:

* per-net unweighted wirelength (only nets touching a moved block are
  re-measured),
* total pairwise overlap area, maintained through a
  :class:`~repro.geometry.overlap.SpatialGrid` so each move only tests
  its local neighbourhood,
* per-block out-of-bounds area,
* per-group symmetry mismatch (only groups containing a moved block are
  re-measured),
* per-net RUDY congestion contributions into the routability bins.

All cached components except routability are *bitwise* identical to the
from-scratch functions in :mod:`repro.cost`: unaffected values are reused
verbatim and totals are re-accumulated in the same iteration order with
the same arithmetic, so an incremental evaluation and
:meth:`repro.cost.cost_function.PlacementCostFunction.evaluate` agree
exactly.  The routability bins accumulate float add/subtract drift, which
:meth:`refresh` (the periodic resync) clears.

Mutations are transactional: :meth:`apply` stages a set of block updates
and journals everything it touches, :meth:`commit` keeps them and
:meth:`rollback` restores the previous state exactly — the shape a
simulated-annealing accept/reject loop needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.cost.penalties import DEFAULT_TRACK_CAPACITY, rudy_net_entries
from repro.cost.wirelength import wirelength_estimator
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.overlap import SpatialGrid, auto_cell_size
from repro.geometry.rect import Rect

Anchor = Tuple[int, int]
Dims = Tuple[int, int]

#: A staged change to one block: ``(block_index, new_rect)``.
RectUpdate = Tuple[int, Rect]


class LayoutState:
    """Mutable placed layout with component caches and transactional updates.

    Parameters
    ----------
    circuit:
        The circuit whose nets and symmetry groups drive the caches.
    bounds:
        Floorplan canvas (``None`` disables out-of-bounds and routability
        tracking and external-net I/O terminals).
    rects:
        Initial block rectangles in circuit block-index order.
    wirelength_model:
        ``"hpwl"``, ``"star"`` or ``"mst"``.
    track_overlap / track_out_of_bounds / track_symmetry / track_routability:
        Which penalty caches to maintain; leave off whatever the cost
        weights do not use so moves stay as cheap as possible.
    """

    def __init__(
        self,
        circuit: Circuit,
        bounds: Optional[FloorplanBounds],
        rects: Sequence[Rect],
        wirelength_model: str = "hpwl",
        track_overlap: bool = False,
        track_out_of_bounds: bool = False,
        track_symmetry: bool = False,
        track_routability: bool = False,
        routability_bins: int = 8,
        track_capacity: float = DEFAULT_TRACK_CAPACITY,
    ) -> None:
        if len(rects) != circuit.num_blocks:
            raise ValueError(
                f"rects must have one entry per block ({circuit.num_blocks}), got {len(rects)}"
            )
        if (track_out_of_bounds or track_routability) and bounds is None:
            raise ValueError("out-of-bounds and routability tracking require floorplan bounds")
        self._circuit = circuit
        self._bounds = bounds
        self._estimator = wirelength_estimator(wirelength_model)
        self._track_overlap = track_overlap
        self._track_oob = track_out_of_bounds
        self._track_symmetry = track_symmetry and bool(circuit.symmetry_groups)
        self._track_routability = track_routability
        self._bins = routability_bins
        self._track_capacity = track_capacity

        self._rects: List[Rect] = list(rects)
        # Name-keyed view in block order; shared with the from-scratch cost
        # helpers so component values match the full evaluation bitwise.
        self._rects_dict: Dict[str, Rect] = {
            block.name: rect for block, rect in zip(circuit.blocks, self._rects)
        }

        # Static adjacency: which nets / symmetry groups each block touches.
        self._block_nets: List[List[int]] = [[] for _ in range(circuit.num_blocks)]
        for net_index, net in enumerate(circuit.nets):
            for name in net.blocks():
                self._block_nets[circuit.block_index(name)].append(net_index)
        # Flattened terminals per net — (block_index, fx, fy) triples plus
        # the constant external I/O position — so re-measuring a net is
        # arithmetic over the rect list instead of name/pin lookups.  The
        # position formula is Rect.terminal_position's, so values match
        # net_terminal_positions bitwise.
        self._net_terminals: List[List[Tuple[int, float, float]]] = []
        self._net_external: List[Optional[Tuple[float, float]]] = []
        for net in circuit.nets:
            terms = []
            for terminal in net.terminals:
                block = circuit.block(terminal.block)
                pin = block.pin(terminal.pin)
                terms.append((circuit.block_index(terminal.block), pin.fx, pin.fy))
            self._net_terminals.append(terms)
            if net.external and bounds is not None:
                fx, fy = net.io_position
                self._net_external.append((fx * bounds.width, fy * bounds.height))
            else:
                self._net_external.append(None)
        self._block_groups: List[List[int]] = [[] for _ in range(circuit.num_blocks)]
        if self._track_symmetry:
            for group_index, group in enumerate(circuit.symmetry_groups):
                for name in group.blocks():
                    block_index = circuit.block_index(name)
                    if group_index not in self._block_groups[block_index]:
                        self._block_groups[block_index].append(group_index)

        self._grid: Optional[SpatialGrid] = None
        self._journal: Optional[dict] = None
        self.refresh()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def circuit(self) -> Circuit:
        """The circuit the state is laid out for."""
        return self._circuit

    @property
    def bounds(self) -> Optional[FloorplanBounds]:
        """The floorplan canvas, if any."""
        return self._bounds

    def rect(self, index: int) -> Rect:
        """The current rectangle of block ``index``."""
        return self._rects[index]

    def rects(self) -> Dict[str, Rect]:
        """Copy of the name -> rectangle mapping (block-index order)."""
        return dict(self._rects_dict)

    def anchors(self) -> Tuple[Anchor, ...]:
        """Current block anchors in index order."""
        return tuple((r.x, r.y) for r in self._rects)

    def dims(self) -> Tuple[Dims, ...]:
        """Current block dimensions in index order."""
        return tuple((r.w, r.h) for r in self._rects)

    @property
    def in_transaction(self) -> bool:
        """True while an :meth:`apply` is awaiting commit/rollback."""
        return self._journal is not None

    # ------------------------------------------------------------------ #
    # Full (re)computation — construction and the periodic resync
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Rebuild every cache from the current rectangles.

        Called at construction and by the evaluator's periodic resync; it
        bounds the float drift the routability bins can accumulate.
        """
        if self._journal is not None:
            raise RuntimeError("cannot refresh with an uncommitted transaction pending")
        circuit = self._circuit
        self._net_lengths: List[float] = [
            self._estimator(self._net_positions(net_index))
            for net_index in range(circuit.num_nets)
        ]

        if self._track_overlap:
            grid = SpatialGrid(cell_size=auto_cell_size(self._rects))
            for index, rect in enumerate(self._rects):
                grid.insert(index, rect)
            self._grid = grid
            total = 0
            for index, rect in enumerate(self._rects):
                total += self._overlap_with_others(index, rect)
            # Every pair was counted twice (once per endpoint).
            self._overlap_total = total // 2

        if self._track_oob:
            assert self._bounds is not None
            canvas = self._bounds.as_rect()
            self._oob: List[int] = []
            for rect in self._rects:
                inside = rect.intersection(canvas)
                self._oob.append(rect.area - (inside.area if inside is not None else 0))
            self._oob_total = sum(self._oob)

        if self._track_symmetry:
            self._group_mismatch: List[float] = [
                group.mismatch(self._rects_dict) for group in circuit.symmetry_groups
            ]

        if self._track_routability:
            assert self._bounds is not None
            self._bin_w = self._bounds.width / self._bins
            self._bin_h = self._bounds.height / self._bins
            self._density: List[float] = [0.0] * (self._bins * self._bins)
            self._net_bins: List[List[Tuple[int, float]]] = []
            for net_index, net in enumerate(circuit.nets):
                positions = self._net_positions(net_index)
                entries = rudy_net_entries(
                    positions, net.weight, self._bins, self._bin_w, self._bin_h
                )
                self._net_bins.append(entries)
                for bin_index, amount in entries:
                    self._density[bin_index] += amount

    def _net_positions(self, net_index: int) -> List[Tuple[float, float]]:
        """All connection-point positions of one net, from the rect list.

        Equivalent to :func:`~repro.cost.wirelength.net_terminal_positions`
        (same order, same arithmetic) without the per-call name, block and
        pin lookups.
        """
        rects = self._rects
        positions = []
        for block_index, fx, fy in self._net_terminals[net_index]:
            rect = rects[block_index]
            positions.append((rect.x + fx * rect.w, rect.y + fy * rect.h))
        external = self._net_external[net_index]
        if external is not None:
            positions.append(external)
        return positions

    # ------------------------------------------------------------------ #
    # Component readouts (match repro.cost bitwise, see module docstring)
    # ------------------------------------------------------------------ #
    def wirelength(self) -> float:
        """Weighted total wirelength from the per-net cache (net order)."""
        total = 0.0
        for net, length in zip(self._circuit.nets, self._net_lengths):
            total += net.weight * length
        return total

    def net_length(self, net_index: int) -> float:
        """Cached unweighted wirelength of net ``net_index``."""
        return self._net_lengths[net_index]

    def _bbox(self) -> Tuple[int, int]:
        """Width and height of the layout bounding box (one fused scan).

        Integer mins/maxes, so the result matches
        :func:`~repro.geometry.rect.bounding_box_of` exactly.
        """
        first = self._rects[0]
        x_lo, y_lo = first.x, first.y
        x_hi, y_hi = first.x + first.w, first.y + first.h
        for rect in self._rects:
            x, y = rect.x, rect.y
            if x < x_lo:
                x_lo = x
            if y < y_lo:
                y_lo = y
            x2, y2 = x + rect.w, y + rect.h
            if x2 > x_hi:
                x_hi = x2
            if y2 > y_hi:
                y_hi = y2
        return (x_hi - x_lo, y_hi - y_lo)

    def bbox_costs(self) -> Tuple[float, float]:
        """Bounding-box area and aspect-ratio penalty from one fused scan.

        Matches :func:`repro.cost.area.area_cost` and
        :func:`repro.cost.area.aspect_ratio_penalty` exactly.
        """
        if not self._rects:
            return (0.0, 0.0)
        width, height = self._bbox()
        area = float(width * height)
        if width == 0 or height == 0:
            return (area, 0.0)
        aspect = width / height
        if aspect < 1.0:
            aspect = 1.0 / aspect
        return (area, max(0.0, aspect - 1.0))

    def area(self) -> float:
        """Bounding-box area of the layout (== :func:`repro.cost.area.area_cost`)."""
        return self.bbox_costs()[0]

    def aspect_ratio(self) -> float:
        """Aspect-ratio penalty (== :func:`repro.cost.area.aspect_ratio_penalty`)."""
        return self.bbox_costs()[1]

    def overlap(self) -> float:
        """Total pairwise overlap area (requires overlap tracking)."""
        return float(self._overlap_total)

    def out_of_bounds(self) -> float:
        """Total block area outside the canvas (requires oob tracking)."""
        return float(self._oob_total)

    def symmetry(self) -> float:
        """Total symmetry mismatch from the per-group cache (group order)."""
        return sum(self._group_mismatch)

    def routability(self) -> float:
        """RUDY congestion above capacity from the maintained bins."""
        bin_area = self._bin_w * self._bin_h
        threshold = self._track_capacity * bin_area
        return sum(d - threshold for d in self._density if d > threshold)

    # ------------------------------------------------------------------ #
    # Transactional mutation
    # ------------------------------------------------------------------ #
    def apply(self, updates: Sequence[RectUpdate]) -> None:
        """Stage block updates, refreshing only the caches they touch.

        Exactly one transaction may be pending; finish it with
        :meth:`commit` or :meth:`rollback`.  Updates whose rectangle equals
        the current one are ignored.
        """
        if self._journal is not None:
            raise RuntimeError("a transaction is already pending; commit or rollback first")
        journal: dict = {"rects": []}
        changed: List[int] = []
        canvas = self._bounds.as_rect() if self._track_oob else None
        if self._track_overlap:
            journal["overlap_total"] = self._overlap_total
        if self._track_oob:
            journal["oob"] = []
            journal["oob_total"] = self._oob_total

        for index, new_rect in updates:
            old_rect = self._rects[index]
            if new_rect == old_rect:
                continue
            changed.append(index)
            journal["rects"].append((index, old_rect))
            if self._track_overlap:
                assert self._grid is not None
                self._overlap_total -= self._overlap_with_others(index, old_rect)
                self._grid.remove(index)
            self._rects[index] = new_rect
            self._rects_dict[self._circuit.blocks[index].name] = new_rect
            if self._track_overlap:
                self._grid.insert(index, new_rect)
                self._overlap_total += self._overlap_with_others(index, new_rect)
            if self._track_oob:
                assert canvas is not None
                inside = new_rect.intersection(canvas)
                outside = new_rect.area - (inside.area if inside is not None else 0)
                journal["oob"].append((index, self._oob[index]))
                self._oob_total += outside - self._oob[index]
                self._oob[index] = outside

        if changed:
            self._refresh_nets(changed, journal)
            self._refresh_groups(changed, journal)
        self._journal = journal

    def _refresh_nets(self, changed: Sequence[int], journal: dict) -> None:
        affected = sorted({net_index for i in changed for net_index in self._block_nets[i]})
        journal["nets"] = [(n, self._net_lengths[n]) for n in affected]
        if self._track_routability:
            journal["net_bins"] = [(n, self._net_bins[n]) for n in affected]
            journal["density"] = list(self._density)
        circuit = self._circuit
        for net_index in affected:
            net = circuit.nets[net_index]
            positions = self._net_positions(net_index)
            self._net_lengths[net_index] = self._estimator(positions)
            if self._track_routability:
                for bin_index, amount in self._net_bins[net_index]:
                    self._density[bin_index] -= amount
                entries = rudy_net_entries(
                    positions, net.weight, self._bins, self._bin_w, self._bin_h
                )
                self._net_bins[net_index] = entries
                for bin_index, amount in entries:
                    self._density[bin_index] += amount

    def _refresh_groups(self, changed: Sequence[int], journal: dict) -> None:
        if not self._track_symmetry:
            return
        affected = sorted({g for i in changed for g in self._block_groups[i]})
        journal["groups"] = [(g, self._group_mismatch[g]) for g in affected]
        for group_index in affected:
            group = self._circuit.symmetry_groups[group_index]
            self._group_mismatch[group_index] = group.mismatch(self._rects_dict)

    def commit(self) -> None:
        """Keep the pending transaction."""
        if self._journal is None:
            raise RuntimeError("no transaction to commit")
        self._journal = None

    def rollback(self) -> None:
        """Undo the pending transaction exactly (caches included)."""
        journal = self._journal
        if journal is None:
            raise RuntimeError("no transaction to roll back")
        for index, old_rect in reversed(journal["rects"]):
            if self._track_overlap:
                assert self._grid is not None
                self._grid.remove(index)
                self._grid.insert(index, old_rect)
            self._rects[index] = old_rect
            self._rects_dict[self._circuit.blocks[index].name] = old_rect
        if self._track_overlap:
            self._overlap_total = journal["overlap_total"]
        if self._track_oob:
            # Reversed like the rect restores: duplicate block indices in one
            # transaction journal several entries and the first must win.
            for index, value in reversed(journal["oob"]):
                self._oob[index] = value
            self._oob_total = journal["oob_total"]
        for net_index, length in journal.get("nets", ()):
            self._net_lengths[net_index] = length
        if self._track_routability and "density" in journal:
            self._density = journal["density"]
            for net_index, entries in journal["net_bins"]:
                self._net_bins[net_index] = entries
        for group_index, mismatch in journal.get("groups", ()):
            self._group_mismatch[group_index] = mismatch
        self._journal = None

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _overlap_with_others(self, index: int, rect: Rect) -> int:
        """Total overlap area between ``rect`` and every other block."""
        assert self._grid is not None
        total = 0
        for other in self._grid.query(rect, exclude=index):
            inter = rect.intersection(self._rects[other])
            if inter is not None:
                total += inter.area
        return total
