"""Exact delta-cost evaluation over a mutable :class:`LayoutState`.

:class:`IncrementalEvaluator` is what every inner optimization loop talks
to: it is bound to one :class:`~repro.cost.cost_function.PlacementCostFunction`
(so cost weights stay the single source of truth), holds the current
layout, and turns a *proposed* set of block updates into the exact new
total cost by refreshing only the affected caches.  The accept/reject
shape of simulated annealing maps onto :meth:`propose` /
:meth:`commit` / :meth:`revert`; population methods that score whole
layouts diff them against the current state with :meth:`rebase`.

Every component except routability matches the from-scratch
:meth:`~repro.cost.cost_function.PlacementCostFunction.evaluate` bitwise
(see :mod:`repro.eval.state`); a periodic full recompute —
``resync_interval`` commits — bounds the float drift of the routability
bins.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.eval.state import Anchor, Dims, LayoutState
from repro.geometry.rect import Rect

#: A proposed change to one block: ``(block_index, new_anchor, new_dims)``
#: where ``None`` keeps the current anchor or dimensions.
BlockUpdate = Tuple[int, Optional[Anchor], Optional[Dims]]

#: Commits between full recomputes of every cache (bounds float drift).
DEFAULT_RESYNC_INTERVAL = 1024


class IncrementalEvaluator:
    """Apply/revert block moves and dimension changes with exact cost deltas.

    Built by :meth:`PlacementCostFunction.bind`; not usually constructed
    directly.

    Parameters
    ----------
    cost_function:
        The bound cost function (weights, bounds, wirelength model).
    anchors / dims:
        The initial layout in circuit block-index order.
    resync_interval:
        Full-recompute period in commits; ``0`` disables resyncing.
    """

    def __init__(
        self,
        cost_function,
        anchors: Sequence[Anchor],
        dims: Sequence[Dims],
        resync_interval: int = DEFAULT_RESYNC_INTERVAL,
    ) -> None:
        if not cost_function.supports_incremental:
            raise TypeError(
                f"{type(cost_function).__name__} overrides evaluate()/evaluate_layout(); "
                "its custom terms cannot be delta-evaluated. Override bind() to supply "
                "a matching IncrementalEvaluator, or keep the from-scratch path."
            )
        if resync_interval < 0:
            raise ValueError("resync_interval must be non-negative")
        self._cost_function = cost_function
        self._resync_interval = resync_interval
        circuit = cost_function.circuit
        bounds = cost_function.bounds
        weights = cost_function.weights
        rects_dict = cost_function.rects_from(anchors, dims)
        rects = [rects_dict[block.name] for block in circuit.blocks]
        # Track exactly the components the weights enable, mirroring the
        # gates of PlacementCostFunction.evaluate().
        self._track_overlap = bool(weights.overlap)
        self._track_oob = bool(weights.out_of_bounds) and bounds is not None
        self._track_symmetry = bool(weights.symmetry) and bool(circuit.symmetry_groups)
        self._track_aspect = bool(weights.aspect_ratio)
        self._track_routability = bool(weights.routability) and bounds is not None
        self._state = LayoutState(
            circuit,
            bounds,
            rects,
            wirelength_model=cost_function.wirelength_model,
            track_overlap=self._track_overlap,
            track_out_of_bounds=self._track_oob,
            track_symmetry=self._track_symmetry,
            track_routability=self._track_routability,
        )
        self._breakdown = self._compose()
        self._pending_breakdown = None
        self._moves = 0
        self._commits = 0
        self._reverts = 0
        self._resyncs = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cost_function(self):
        """The bound cost function."""
        return self._cost_function

    @property
    def state(self) -> LayoutState:
        """The underlying mutable layout state."""
        return self._state

    @property
    def breakdown(self):
        """The committed :class:`CostBreakdown`."""
        return self._breakdown

    @property
    def total(self) -> float:
        """The committed total cost."""
        return self._breakdown.total

    def anchors(self) -> Tuple[Anchor, ...]:
        """Committed (or pending, mid-transaction) anchors in index order."""
        return self._state.anchors()

    def dims(self) -> Tuple[Dims, ...]:
        """Committed (or pending, mid-transaction) dimensions in index order."""
        return self._state.dims()

    def rects(self) -> Dict[str, Rect]:
        """Copy of the current name -> rectangle mapping."""
        return self._state.rects()

    def stats(self) -> Dict[str, int]:
        """Counters: proposed moves, commits, reverts and resyncs."""
        return {
            "moves": self._moves,
            "commits": self._commits,
            "reverts": self._reverts,
            "resyncs": self._resyncs,
        }

    # ------------------------------------------------------------------ #
    # The propose / commit / revert cycle
    # ------------------------------------------------------------------ #
    def propose(self, updates: Sequence[BlockUpdate]) -> float:
        """Stage block updates and return the layout's exact new total cost.

        Exactly one proposal may be pending; resolve it with
        :meth:`commit` or :meth:`revert` before proposing again.
        """
        if self._pending_breakdown is not None:
            raise RuntimeError("a proposed move is already pending; commit or revert first")
        rect_updates = []
        for index, anchor, dims in updates:
            current = self._state.rect(index)
            x, y = anchor if anchor is not None else (current.x, current.y)
            w, h = dims if dims is not None else (current.w, current.h)
            rect_updates.append((index, Rect(int(x), int(y), int(w), int(h))))
        self._state.apply(rect_updates)
        self._pending_breakdown = self._compose()
        self._moves += 1
        return self._pending_breakdown.total

    def commit(self):
        """Accept the pending proposal; returns the new breakdown."""
        if self._pending_breakdown is None:
            raise RuntimeError("no pending move to commit")
        self._state.commit()
        self._breakdown = self._pending_breakdown
        self._pending_breakdown = None
        self._commits += 1
        if self._resync_interval and self._commits % self._resync_interval == 0:
            self.resync()
        return self._breakdown

    def revert(self) -> None:
        """Reject the pending proposal, restoring the committed state exactly."""
        if self._pending_breakdown is None:
            raise RuntimeError("no pending move to revert")
        self._state.rollback()
        self._pending_breakdown = None
        self._reverts += 1

    def rebase(
        self,
        anchors: Optional[Sequence[Anchor]] = None,
        dims: Optional[Sequence[Dims]] = None,
    ) -> float:
        """Score a whole layout by diffing it against the committed state.

        The differing blocks are applied and committed, so consecutive
        calls on similar layouts (a genetic population, a batch of
        candidates) each pay only for what changed.  Returns the new total.
        """
        num_blocks = self._state.circuit.num_blocks
        for label, seq in (("anchors", anchors), ("dims", dims)):
            if seq is not None and len(seq) != num_blocks:
                raise ValueError(f"{label} must have {num_blocks} entries, got {len(seq)}")
        current_anchors = self._state.anchors()
        current_dims = self._state.dims()
        updates: list = []
        for index in range(num_blocks):
            anchor = tuple(anchors[index]) if anchors is not None else None
            new_dims = tuple(dims[index]) if dims is not None else None
            if (anchor is not None and anchor != current_anchors[index]) or (
                new_dims is not None and new_dims != current_dims[index]
            ):
                updates.append((index, anchor, new_dims))
        total = self.propose(updates)
        self.commit()
        return total

    def resync(self):
        """Recompute every cache and the breakdown from scratch.

        Bounds the float drift the routability bins accumulate; all other
        components are exact and unaffected.  Returns the breakdown.
        """
        self._state.refresh()
        self._breakdown = self._compose()
        self._resyncs += 1
        return self._breakdown

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _compose(self):
        state = self._state
        weights = self._cost_function.weights
        area, aspect_ratio = state.bbox_costs()
        return self._cost_function.compose(
            weights,
            wirelength=state.wirelength(),
            area=area,
            overlap=state.overlap() if self._track_overlap else 0.0,
            out_of_bounds=state.out_of_bounds() if self._track_oob else 0.0,
            symmetry=state.symmetry() if self._track_symmetry else 0.0,
            aspect_ratio=aspect_ratio if self._track_aspect else 0.0,
            routability=state.routability() if self._track_routability else 0.0,
        )
