"""The unified placement result every engine returns.

One question — "place these block dimensions" — is answered by several
interchangeable engines (stored multi-placement structures, templates,
per-instance optimization, the placement service).  They all return the
same frozen :class:`Placement`, so callers never care which engine
produced a floorplan:

* ``rects`` — the placed rectangles, as an *immutable* mapping.  The
  placement owns a private copy, so no caller can mutate another
  backend's internal state through a shared dict.
* ``cost`` — the :class:`~repro.cost.cost_function.CostBreakdown`.
* ``placer`` — the engine's registry kind (``"mps"``, ``"template"``,
  ``"annealing"``, ``"service"``, …).
* ``source`` — provenance of the floorplan itself.  For structure-backed
  engines this is the instantiation tier (``structure`` / ``nearest`` /
  ``fallback``); for the direct placers it equals the placer name.
* ``metadata`` — optional per-call details (the clamped dimension
  vector, the stored-placement index, memoization flags, …), also
  frozen.

:class:`Placement` replaces the three historical result types
(``baselines.base.PlacementResult``, ``synthesis.backends.BackendPlacement``
and ``core.instantiator.InstantiatedPlacement``); those names still import
from their old homes as deprecated aliases of this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple

from repro.cost.cost_function import CostBreakdown
from repro.geometry.rect import Rect

#: One block's (width, height) dimensions.
Dims = Tuple[int, int]

#: Source tags of a structure-backed placement (the instantiator's tiers).
SOURCE_STRUCTURE = "structure"
SOURCE_NEAREST = "nearest"
SOURCE_FALLBACK = "fallback"

@dataclass(frozen=True)
class Placement:
    """A placed floorplan, its cost, and where it came from."""

    rects: Mapping[str, Rect]
    cost: CostBreakdown
    placer: str
    #: Defaults to ``placer`` when omitted, which keeps keyword-style
    #: construction of the legacy result types (none of which had it) valid.
    source: str = ""
    elapsed_seconds: float = 0.0
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Own an immutable copy: backends frequently hand over internal
        # dicts (fixed template anchors, memoized results shared between
        # callers), and a mutable view would let one caller corrupt them.
        object.__setattr__(self, "rects", MappingProxyType(dict(self.rects)))
        object.__setattr__(self, "metadata", MappingProxyType(dict(self.metadata)))
        if not self.source:
            object.__setattr__(self, "source", self.placer)

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    # ``MappingProxyType`` cannot be pickled, which would bar placements
    # from crossing process boundaries (the parallel worker pool returns
    # them from placement jobs).  State travels as plain dicts and is
    # re-frozen on arrival.
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["rects"] = dict(self.rects)
        state["metadata"] = dict(self.metadata)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for key, value in state.items():
            if key in ("rects", "metadata"):
                value = MappingProxyType(dict(value))  # type: ignore[arg-type]
            object.__setattr__(self, key, value)

    # ------------------------------------------------------------------ #
    # Cost and provenance
    # ------------------------------------------------------------------ #
    @property
    def total_cost(self) -> float:
        """Weighted total cost of the floorplan."""
        return self.cost.total

    @property
    def from_structure(self) -> bool:
        """True when a stored placement (strict containment hit) was used."""
        return self.source == SOURCE_STRUCTURE

    @property
    def used_stored_placement(self) -> bool:
        """True when any stored placement (strict or nearest) was used."""
        return self.source in (SOURCE_STRUCTURE, SOURCE_NEAREST)

    # ------------------------------------------------------------------ #
    # Metadata accessors
    # ------------------------------------------------------------------ #
    @property
    def dims(self) -> Optional[Tuple[Dims, ...]]:
        """The (clamped) dimension vector this floorplan answers, if recorded."""
        return self.metadata.get("dims")  # type: ignore[return-value]

    @property
    def placement_index(self) -> Optional[int]:
        """Index of the stored placement used, if one was."""
        return self.metadata.get("placement_index")  # type: ignore[return-value]

    @property
    def routing(self) -> Optional[Mapping[str, float]]:
        """Routing statistics of the floorplan, when it has been routed.

        Populated by :meth:`with_routing` (the placement service's routed
        path and the synthesis loop's routed-parasitics mode do this):
        routed wirelength, overflow, max congestion, failed/mirrored net
        counts, negotiation iterations and grid geometry.
        """
        return self.metadata.get("routing")  # type: ignore[return-value]

    @property
    def is_routed(self) -> bool:
        """True when routing statistics are attached."""
        return "routing" in self.metadata

    def anchors(self) -> Tuple[Tuple[int, int], ...]:
        """Lower-left anchors in the order of ``rects`` iteration."""
        return tuple((rect.x, rect.y) for rect in self.rects.values())

    def with_metadata(self, **extra: object) -> "Placement":
        """A copy with ``extra`` merged into the metadata."""
        merged = dict(self.metadata)
        merged.update(extra)
        return replace(self, metadata=merged)

    def with_routing(self, routed: object) -> "Placement":
        """A copy carrying routing statistics in ``metadata["routing"]``.

        Accepts a :class:`repro.route.RoutedLayout` (anything with a
        ``stats()`` method) or a plain stats mapping.  Duck-typed so this
        layer stays independent of the routing subsystem, which imports it.
        The stats are stored as a plain dict, keeping :meth:`as_dict`
        JSON-serializable.
        """
        stats_method = getattr(routed, "stats", None)
        stats = stats_method() if callable(stats_method) else dict(routed)  # type: ignore[call-overload]
        return self.with_metadata(routing=dict(stats))

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form for reports and JSON output."""
        return {
            "placer": self.placer,
            "source": self.source,
            "total_cost": self.total_cost,
            "elapsed_seconds": self.elapsed_seconds,
            "rects": {
                name: (rect.x, rect.y, rect.w, rect.h) for name, rect in self.rects.items()
            },
            "metadata": {
                key: value for key, value in self.metadata.items() if key != "dims"
            },
        }
