"""The batch-first protocol every placement engine implements.

A :class:`Placer` answers dimension-vector queries for one circuit:

* :meth:`Placer.place` — one query, one :class:`~repro.api.placement.Placement`.
* :meth:`Placer.place_batch` — many queries at once.  The default simply
  loops, so every engine supports batching out of the box; engines with a
  real batch path (the placement service's deduplicating fan-out, the
  instantiator's duplicate elimination) override it, and *any* caller —
  experiments, the synthesis loop, benchmarks — gets the speedup without
  code changes.
* :meth:`Placer.stats` — a uniform counters hook.  Engines report whatever
  they track (tier hits, cache hits, latency); engines with nothing to
  report return ``{}``.

Engines built by :func:`repro.api.make_placer` also carry their canonical
construction ``spec``, so a placer can be serialized back into the
config dict that creates it.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Optional, Sequence

from repro.api.placement import Dims, Placement


class Placer(abc.ABC):
    """Common interface of all placement engines."""

    #: Registry kind / report name of the engine (``"mps"``, ``"template"``, …).
    name: str = "placer"

    #: Canonical construction spec, attached by :func:`repro.api.make_placer`.
    _spec: Optional[Mapping[str, object]] = None

    @abc.abstractmethod
    def place(self, dims: Sequence[Dims]) -> Placement:
        """Produce a floorplan for one dimension vector."""

    def place_batch(self, queries: Sequence[Sequence[Dims]]) -> List[Placement]:
        """Produce one floorplan per query, in input order.

        The base implementation loops over :meth:`place`; engines with a
        native batch path (deduplication, fan-out) override it.
        """
        return [self.place(dims) for dims in queries]

    def stats(self) -> Dict[str, float]:
        """Counters describing everything this engine served so far.

        Keys are engine-specific (tier hits for structure-backed engines,
        cache counters for the service, query counts for the direct
        placers); engines with nothing to report return an empty dict.
        """
        return {}

    @property
    def spec(self) -> Dict[str, object]:
        """The canonical spec dict that (re)constructs this placer.

        Placers built by :func:`repro.api.make_placer` return the
        normalized spec they were built from; hand-built placers fall back
        to ``{"kind": self.name}``.
        """
        if self._spec is not None:
            return dict(self._spec)
        return {"kind": self.name}
