"""A declarative, string-keyed registry of placement engines.

Mirrors :mod:`repro.modgen.registry`: engines register a factory under a
``kind`` string, and :func:`make_placer` turns a plain spec — a dict, a
JSON string, or a bare kind name — into a live :class:`~repro.api.Placer`
for a circuit::

    make_placer({"kind": "annealing", "iterations": 2000}, circuit)
    make_placer({"kind": "service", "registry": "structures/", "cache": 64}, circuit)
    make_placer("template", circuit)
    make_placer('{"kind": "mps", "scale": "smoke"}', circuit)

This is what lets experiment configs, the synthesis loop, examples and
future CLI/server layers *name* backends without importing them.  The
built-in kinds (``template``, ``random``, ``genetic``, ``annealing``,
``mps``, ``service``) are loaded lazily on first use so importing
:mod:`repro.api` stays cheap; user code adds its own with
:func:`register_placer`.
"""

from __future__ import annotations

import importlib
import inspect
import json
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.api.placer import Placer

#: A factory takes ``(circuit, bounds=None, **options)`` and returns a Placer.
PlacerFactory = Callable[..., Placer]

#: Accepted spec forms: a kind name, a JSON object string, or a mapping.
Spec = Union[str, Mapping[str, object]]

_REGISTRY: Dict[str, PlacerFactory] = {}

#: Built-in engine kinds, resolved lazily from :mod:`repro.api.engines`.
_BUILTIN_FACTORIES: Dict[str, str] = {
    "template": "make_template",
    "random": "make_random",
    "genetic": "make_genetic",
    "annealing": "make_annealing",
    "mps": "make_mps",
    "service": "make_service",
    "parallel": "make_parallel",
}


def register_placer(
    kind: str, factory: Optional[PlacerFactory] = None, *, replace: bool = False
):
    """Register ``factory`` under ``kind`` (usable as a decorator).

    The factory is called as ``factory(circuit, bounds=None, **options)``
    with the spec's non-``kind`` entries as keyword options.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError("placer kind must be a non-empty string")

    def _register(fn: PlacerFactory) -> PlacerFactory:
        if not replace and (kind in _REGISTRY or kind in _BUILTIN_FACTORIES):
            raise ValueError(f"placer kind {kind!r} is already registered")
        _REGISTRY[kind] = fn
        return fn

    if factory is None:
        return _register
    return _register(factory)


def available_placers() -> List[str]:
    """Names of every registered engine kind."""
    return sorted(set(_REGISTRY) | set(_BUILTIN_FACTORIES))


def normalize_spec(spec: Spec) -> Dict[str, object]:
    """Canonical ``{"kind": ..., **options}`` dict form of any accepted spec."""
    if isinstance(spec, str):
        text = spec.strip()
        if text.startswith("{"):
            try:
                parsed = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"placer spec is not valid JSON: {exc}") from exc
            if not isinstance(parsed, dict):
                raise ValueError(f"placer spec JSON must be an object, got {parsed!r}")
            spec = parsed
        else:
            spec = {"kind": text}
    if not isinstance(spec, Mapping):
        raise ValueError(
            f"placer spec must be a mapping, a kind name or a JSON object, got {spec!r}"
        )
    normalized = dict(spec)
    kind = normalized.get("kind")
    if not kind or not isinstance(kind, str):
        raise ValueError(
            f"placer spec must carry a string 'kind' entry; got {dict(spec)!r} "
            f"(available kinds: {available_placers()})"
        )
    return normalized


def preload_builtin_factories() -> None:
    """Resolve every builtin factory and its lazy imports into this process.

    Called by fork-based pools before they spawn workers, so forked
    children find every worker-side module already in ``sys.modules``
    and never have to acquire an import lock (which a parent thread may
    have held at fork time — permanently, from the child's view).
    """
    for kind in list(_BUILTIN_FACTORIES):
        _resolve_factory(kind)
    engines = importlib.import_module("repro.api.engines")
    engines.preload_engine_modules()


def make_placer(spec: Spec, circuit, bounds=None) -> Placer:
    """Build the placement engine described by ``spec`` for ``circuit``.

    Parameters
    ----------
    spec:
        ``{"kind": <engine>, **options}`` as a dict or JSON string, or a
        bare kind name.  Options are engine-specific (see
        :mod:`repro.api.engines`); a spec with unknown options or an
        unregistered kind raises with the valid choices spelled out.
    circuit:
        The :class:`~repro.circuit.netlist.Circuit` the engine will place.
    bounds:
        Optional :class:`~repro.geometry.floorplan.FloorplanBounds` shared
        across engines (so e.g. a comparison runs every engine on the same
        canvas).  Engines that generate their own structure derive bounds
        from it instead.

    The returned placer carries the normalized spec on ``placer.spec``, so
    ``make_placer(placer.spec, circuit)`` round-trips.
    """
    normalized = normalize_spec(spec)
    kind = normalized["kind"]
    factory = _resolve_factory(kind)
    options = {key: value for key, value in normalized.items() if key != "kind"}
    # "bounds" is reserved across every kind: a spec-carried canvas (from a
    # programmatic caller) overrides the make_placer argument, so engines
    # compared side by side can be pinned to one canvas declaratively.
    spec_bounds = options.pop("bounds", None)
    if spec_bounds is not None:
        bounds = spec_bounds
    _validate_options(kind, factory, options)
    placer = factory(circuit, bounds=bounds, **options)
    placer._spec = dict(normalized)
    return placer


# ---------------------------------------------------------------------- #
# Internals
# ---------------------------------------------------------------------- #
def _resolve_factory(kind: str) -> PlacerFactory:
    factory = _REGISTRY.get(kind)
    if factory is not None:
        return factory
    builtin = _BUILTIN_FACTORIES.get(kind)
    if builtin is not None:
        engines = importlib.import_module("repro.api.engines")
        factory = getattr(engines, builtin)
        _REGISTRY[kind] = factory
        return factory
    raise KeyError(
        f"no placement engine registered under kind {kind!r}; "
        f"available: {available_placers()}"
    )


def _allowed_options(factory: PlacerFactory) -> Optional[Sequence[str]]:
    """Keyword options ``factory`` accepts, or None when it takes ``**kwargs``."""
    signature = inspect.signature(factory)
    allowed: List[str] = []
    for index, parameter in enumerate(signature.parameters.values()):
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            if index == 0 or parameter.name in ("circuit", "bounds"):
                continue
            allowed.append(parameter.name)
    return allowed


def _validate_options(
    kind: str, factory: PlacerFactory, options: Mapping[str, object]
) -> None:
    allowed = _allowed_options(factory)
    if allowed is None:
        return
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise ValueError(
            f"invalid option(s) {unknown} for placer kind {kind!r}; "
            f"allowed options: {sorted(allowed)}"
        )
