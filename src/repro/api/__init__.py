"""The single placement API the rest of the package consumes.

Every engine — the multi-placement structure, the template, the
optimization baselines, the placement service — answers the same question
through the same three pieces:

* :class:`Placement` — the unified, frozen result (immutable rects, cost
  breakdown, provenance, timing, per-call metadata).
* :class:`Placer` — the batch-first protocol: ``place(dims)``,
  ``place_batch(queries)`` (engines with a native batch path override the
  default loop) and a uniform ``stats()`` counters hook.
* :func:`make_placer` — the declarative factory: a dict / JSON spec like
  ``{"kind": "service", "registry": "structures/", "cache": 64}`` or
  ``{"kind": "annealing", "iterations": 2000}`` becomes a live engine,
  via a string-keyed registry (:func:`register_placer`,
  :func:`available_placers`).

Typical usage::

    from repro.api import make_placer

    placer = make_placer({"kind": "mps", "scale": "smoke"}, circuit)
    placement = placer.place(dims)
    batch = placer.place_batch([dims_a, dims_b, dims_a])   # dedup for free
    print(placement.source, placement.total_cost, placer.stats())
"""

from repro.api.placement import (
    Dims,
    Placement,
    SOURCE_FALLBACK,
    SOURCE_NEAREST,
    SOURCE_STRUCTURE,
)
from repro.api.placer import Placer
from repro.api.registry import (
    PlacerFactory,
    available_placers,
    make_placer,
    normalize_spec,
    register_placer,
)

__all__ = [
    "Dims",
    "Placement",
    "SOURCE_STRUCTURE",
    "SOURCE_NEAREST",
    "SOURCE_FALLBACK",
    "Placer",
    "PlacerFactory",
    "available_placers",
    "make_placer",
    "normalize_spec",
    "register_placer",
]
