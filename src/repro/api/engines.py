"""Factories behind the built-in engine kinds of the placer registry.

Each factory turns the options of a declarative spec into a live engine:

==============  ==========================================================
kind            options (all optional)
==============  ==========================================================
``template``    ``mode`` ("fixed" / "adaptive"), ``seed``
``random``      ``seed``, ``attempts``
``genetic``     ``seed``, ``population``, ``generations``
``annealing``   ``seed``, ``iterations``
``mps``         ``scale`` ("smoke"/"medium"/"full"), ``seed``,
                ``fallback`` ("best_stored"/"template"), or a pre-built
                ``structure`` (programmatic specs only)
``service``     ``registry`` (directory path), ``cache``, ``memo``,
                ``scale``, ``seed``, ``workers``, ``fallback``,
                ``sharded`` (fingerprint-sharded registry layout), a full
                ``config`` (GeneratorConfig), or a shared ``service``
                instance (programmatic specs only)
``parallel``    ``inner`` (any spec), ``workers``, ``reseed``
                ("none"/"per_query"), ``start_method``, ``min_batch``
==============  ==========================================================

``mps`` and ``service`` specs built from plain JSON generate their
multi-placement structure on first use (the offline Figure 1.a cost);
programmatic callers that already hold a structure or a long-lived
:class:`~repro.service.engine.PlacementService` pass it straight in the
spec dict so nothing is regenerated.

This module is imported lazily by :mod:`repro.api.registry` on the first
``make_placer`` call, keeping ``import repro.api`` free of the heavier
engine modules.
"""

from __future__ import annotations

from typing import Optional

from repro.api.placer import Placer


def _scaled_config(circuit, scale: str, seed: int):
    from repro.experiments.config import get_scale

    return get_scale(scale).generator_config(circuit, seed=seed)


def _check_structure_matches(structure, circuit) -> None:
    if sorted(structure.circuit.block_names()) != sorted(circuit.block_names()):
        raise ValueError(
            f"structure was generated for circuit {structure.circuit.name!r} "
            f"(blocks {sorted(structure.circuit.block_names())}), which does not "
            f"match {circuit.name!r} (blocks {sorted(circuit.block_names())})"
        )


def make_template(circuit, bounds=None, *, mode: str = "fixed", seed: int = 0) -> Placer:
    """A slicing-tree template placer (``kind: "template"``)."""
    from repro.baselines.template import TemplatePlacer

    return TemplatePlacer(circuit, bounds, seed=seed, mode=mode)


def make_random(circuit, bounds=None, *, seed: int = 0, attempts: int = 200) -> Placer:
    """A legal random placer (``kind: "random"``)."""
    from repro.baselines.random_placer import RandomPlacer

    return RandomPlacer(circuit, bounds, seed=seed, attempts=attempts)


def make_genetic(
    circuit,
    bounds=None,
    *,
    seed: int = 0,
    population: int = 30,
    generations: int = 40,
) -> Placer:
    """A genetic-algorithm placer (``kind: "genetic"``)."""
    from repro.baselines.genetic import GeneticPlacer, GeneticPlacerConfig

    config = GeneticPlacerConfig(population_size=population, generations=generations)
    return GeneticPlacer(circuit, bounds, config=config, seed=seed)


def make_annealing(
    circuit, bounds=None, *, seed: int = 0, iterations: int = 3000
) -> Placer:
    """A per-instance simulated-annealing placer (``kind: "annealing"``)."""
    from repro.baselines.annealing_placer import AnnealingPlacer, AnnealingPlacerConfig

    config = AnnealingPlacerConfig(max_iterations=iterations)
    return AnnealingPlacer(circuit, bounds, config=config, seed=seed)


def make_mps(
    circuit,
    bounds=None,
    *,
    structure=None,
    cost_function=None,
    scale: str = "smoke",
    seed: int = 0,
    fallback: str = "best_stored",
) -> Placer:
    """A multi-placement-structure instantiator (``kind: "mps"``).

    Without a pre-built ``structure`` the factory generates one at the
    requested experiment ``scale`` — the one-time offline cost the paper's
    Figure 1.a describes.  Programmatic specs may also carry the
    ``cost_function`` the structure was generated with, so custom weights
    survive the move to the unified API.
    """
    from repro.core.generator import MultiPlacementGenerator
    from repro.core.instantiator import PlacementInstantiator

    if structure is None:
        generator = MultiPlacementGenerator(circuit, _scaled_config(circuit, scale, seed))
        structure = generator.generate()
        if cost_function is None:
            cost_function = generator.cost_function
    else:
        _check_structure_matches(structure, circuit)
    return PlacementInstantiator(structure, cost_function, fallback_mode=fallback)


def make_service(
    circuit,
    bounds=None,
    *,
    service=None,
    structure=None,
    registry: Optional[str] = None,
    cache: int = 8,
    memo: int = 4096,
    scale: str = "smoke",
    seed: int = 0,
    workers: Optional[int] = None,
    fallback: str = "best_stored",
    sharded: Optional[bool] = None,
    config=None,
) -> Placer:
    """A placement-service-backed placer (``kind: "service"``).

    ``registry`` points the service at an on-disk structure library
    (get-or-generate semantics) — flat or fingerprint-sharded layouts are
    auto-detected, and ``sharded=True`` creates a fresh root sharded (the
    layout that scales to many concurrent processes).  ``cache`` /
    ``memo`` bound the in-memory LRU and per-structure memo table.
    Passing a shared ``service`` instance lets several placers (and
    several circuits) ride one warm service; passing a pre-built
    ``structure`` (programmatic specs only) seeds the service so it never
    regenerates it; passing a full ``config``
    (:class:`~repro.core.generator.GeneratorConfig`) overrides the
    ``scale``/``seed`` shorthand — this is how parallel workers rebuild a
    service identical to the parent's.
    """
    from repro.parallel.sharding import open_registry
    from repro.service.engine import PlacementService
    from repro.service.placer import ServicePlacer

    if service is None:
        structure_registry = (
            open_registry(registry, sharded=sharded) if registry is not None else None
        )
        if config is None:
            config = _scaled_config(circuit, scale, seed)
        service = PlacementService(
            structure_registry,
            default_config=config,
            cache_capacity=cache,
            memo_capacity=memo,
            fallback_mode=fallback,
            max_workers=workers,
        )
    if structure is not None:
        _check_structure_matches(structure, circuit)
        service.adopt(structure)
    return ServicePlacer(service, circuit)


def make_parallel(
    circuit,
    bounds=None,
    *,
    inner="template",
    workers: int = 2,
    reseed: str = "none",
    start_method: Optional[str] = None,
    min_batch: Optional[int] = None,
) -> Placer:
    """A process-pool fan-out around any inner engine (``kind: "parallel"``).

    ``inner`` is itself a placer spec (dict, JSON string or kind name);
    workers reconstruct it from the spec, so it must be declarative —
    programmatic-only options (live ``structure`` / ``service`` objects)
    cannot cross the process boundary.  Prefer a registry-backed
    ``service`` inner spec so workers share one structure library instead
    of each generating their own.  ``reseed="per_query"`` makes stochastic
    inner engines deterministic at any worker count.
    """
    from repro.parallel.placer import ParallelPlacer

    return ParallelPlacer(
        circuit,
        inner,
        workers=workers,
        bounds=bounds,
        reseed=reseed,
        start_method=start_method,
        min_batch=min_batch,
    )


def preload_engine_modules() -> None:
    """Import every module the factories above load lazily.

    Fork-based worker pools call this (through
    :func:`repro.api.registry.preload_builtin_factories`) before spawning
    workers.  A forked child inherits the parent's per-module import
    locks exactly as they were at fork time — a sibling thread caught
    mid-import leaves a lock no thread in the child can ever release.
    With these modules already in ``sys.modules`` the children never
    touch the import machinery at all.
    """
    import repro.baselines.annealing_placer  # noqa: F401
    import repro.baselines.genetic  # noqa: F401
    import repro.baselines.random_placer  # noqa: F401
    import repro.baselines.template  # noqa: F401
    import repro.core.generator  # noqa: F401
    import repro.core.instantiator  # noqa: F401
    import repro.core.serialization  # noqa: F401
    import repro.geometry.rect  # noqa: F401
    import repro.parallel.placer  # noqa: F401
    import repro.parallel.sharding  # noqa: F401
    import repro.route.router  # noqa: F401
    import repro.service.engine  # noqa: F401
    import repro.service.placer  # noqa: F401
