"""Template-based placement (the fast baseline, Figure 5.c).

A template is a fixed arrangement of the blocks, designed once from the
circuit's connectivity (recursive min-cut bipartitioning into a slicing
tree, as an expert would group tightly-connected analog sub-structures).

Two instantiation modes are provided:

* ``"fixed"`` (default, the paper's definition: "the placement is set to a
  fixed set of (x, y) coordinates") — the slicing tree is packed once for
  the blocks' maximum dimensions and those anchors are reused for every
  query, so the arrangement never adapts to the actual sizes.
* ``"adaptive"`` — the slicing tree is re-packed for every queried
  dimension vector.  This is a stronger baseline than the paper's template
  (closer to a procedural module generator) and is used in the ablation
  benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx

from repro.baselines.base import CircuitPlacer, Dims, Placement
from repro.utils.timer import Timer


@dataclass
class _Leaf:
    block_index: int


@dataclass
class _Node:
    left: Union["_Node", _Leaf]
    right: Union["_Node", _Leaf]
    orientation: str  # "h": children side by side, "v": children stacked


_TreeNode = Union[_Node, _Leaf]


#: Instantiation modes of the template placer.
MODE_FIXED = "fixed"
MODE_ADAPTIVE = "adaptive"


class TemplatePlacer(CircuitPlacer):
    """Slicing-tree template placement."""

    name = "template"

    def __init__(
        self, *args, seed: Optional[int] = 0, mode: str = MODE_FIXED, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        if mode not in (MODE_FIXED, MODE_ADAPTIVE):
            raise ValueError(f"mode must be '{MODE_FIXED}' or '{MODE_ADAPTIVE}'")
        self._rng = random.Random(seed)
        self._mode = mode
        self._tree = self._build_tree()
        # Fixed-mode anchors are computed once for the maximum dimensions so
        # the arrangement stays legal for every admissible dimension vector.
        self._fixed_anchors: Optional[List[Tuple[int, int]]] = None
        if mode == MODE_FIXED:
            max_dims = tuple(self._circuit.max_dims())
            anchors = [(0, 0)] * self._circuit.num_blocks
            self._layout(self._tree, max_dims, 0, 0, anchors)
            self._fixed_anchors = anchors

    @property
    def mode(self) -> str:
        """The instantiation mode in use."""
        return self._mode

    # ------------------------------------------------------------------ #
    # Template construction (done once per circuit)
    # ------------------------------------------------------------------ #
    def _build_tree(self) -> _TreeNode:
        graph = self._circuit.connectivity_graph()
        indices = list(range(self._circuit.num_blocks))
        return self._partition(indices, graph, depth=0)

    def _partition(self, indices: List[int], graph: "nx.Graph", depth: int) -> _TreeNode:
        if len(indices) == 1:
            return _Leaf(indices[0])
        left, right = self._bipartition(indices, graph)
        orientation = "h" if depth % 2 == 0 else "v"
        return _Node(
            left=self._partition(left, graph, depth + 1),
            right=self._partition(right, graph, depth + 1),
            orientation=orientation,
        )

    def _bipartition(self, indices: List[int], graph: "nx.Graph") -> Tuple[List[int], List[int]]:
        """Split blocks into two balanced halves cutting few net connections.

        Kernighan–Lin on the induced subgraph; falls back to an area-balanced
        split when the subgraph is disconnected or too small for KL.
        """
        names = [self._circuit.blocks[i].name for i in indices]
        subgraph = graph.subgraph(names).copy()
        if len(indices) > 3 and subgraph.number_of_edges() > 0:
            try:
                part_a, part_b = nx.algorithms.community.kernighan_lin_bisection(
                    subgraph, weight="weight", seed=self._rng.randint(0, 2 ** 31)
                )
                left = [i for i in indices if self._circuit.blocks[i].name in part_a]
                right = [i for i in indices if self._circuit.blocks[i].name in part_b]
                if left and right:
                    return left, right
            except nx.NetworkXError:  # pragma: no cover - degenerate subgraphs
                pass
        ordered = sorted(indices, key=lambda i: -self._circuit.blocks[i].max_area)
        left: List[int] = []
        right: List[int] = []
        area_left = 0
        area_right = 0
        for index in ordered:
            if area_left <= area_right:
                left.append(index)
                area_left += self._circuit.blocks[index].max_area
            else:
                right.append(index)
                area_right += self._circuit.blocks[index].max_area
        return left, right

    # ------------------------------------------------------------------ #
    # Instantiation (done per dimension vector)
    # ------------------------------------------------------------------ #
    def place(self, dims: Sequence[Dims]) -> Placement:
        clamped = self._clamp_dims(dims)
        with Timer() as timer:
            anchors = self.anchors_for(clamped)
        return self._result(anchors, clamped, timer.elapsed)

    def anchors_for(self, dims: Sequence[Dims]) -> List[Tuple[int, int]]:
        """Lower-left anchors of the template instantiated at ``dims``."""
        if self._mode == MODE_FIXED:
            assert self._fixed_anchors is not None
            return list(self._fixed_anchors)
        anchors: List[Tuple[int, int]] = [(0, 0)] * self._circuit.num_blocks
        self._layout(self._tree, dims, 0, 0, anchors)
        return anchors

    def _extent(self, node: _TreeNode, dims: Sequence[Dims]) -> Dims:
        if isinstance(node, _Leaf):
            return dims[node.block_index]
        left_w, left_h = self._extent(node.left, dims)
        right_w, right_h = self._extent(node.right, dims)
        if node.orientation == "h":
            return (left_w + right_w, max(left_h, right_h))
        return (max(left_w, right_w), left_h + right_h)

    def _layout(
        self,
        node: _TreeNode,
        dims: Sequence[Dims],
        x: int,
        y: int,
        anchors: List[Tuple[int, int]],
    ) -> None:
        if isinstance(node, _Leaf):
            anchors[node.block_index] = (x, y)
            return
        left_w, left_h = self._extent(node.left, dims)
        self._layout(node.left, dims, x, y, anchors)
        if node.orientation == "h":
            self._layout(node.right, dims, x + left_w, y, anchors)
        else:
            self._layout(node.right, dims, x, y + left_h, anchors)
