"""Genetic-algorithm placement (the Zhang ISCAS 2002-style baseline).

Chromosomes encode the block anchors directly; selection is tournament
based, crossover mixes parents block-wise, and mutation jitters a subset of
anchors.  Like the annealing placer, legalization penalties are enabled
during evolution so illegal intermediate individuals are driven out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.baselines.base import CircuitPlacer, Dims, Placement
from repro.baselines.random_placer import RandomPlacer
from repro.cost.cost_function import CostWeights
from repro.eval.batch import batch_evaluator_for, record_batch, record_fallback
from repro.eval.incremental import IncrementalEvaluator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.vector import BatchEvaluator
from repro.utils.rng import make_rng
from repro.utils.timer import Timer

Anchor = Tuple[int, int]
Chromosome = Tuple[Anchor, ...]


@dataclass(frozen=True)
class GeneticPlacerConfig:
    """Tuning knobs of the genetic placer."""

    population_size: int = 30
    generations: int = 40
    tournament_size: int = 3
    crossover_rate: float = 0.85
    mutation_rate: float = 0.25
    #: Fraction of blocks jittered per mutation.
    mutation_fraction: float = 0.3
    #: Maximum mutation distance as a fraction of the floorplan side.
    mutation_step_fraction: float = 0.3
    elite_count: int = 2
    #: Score individuals by diffing them against the incremental
    #: evaluator's current layout (mutated children re-price only their
    #: jittered anchors); ``False`` re-scores every individual from scratch.
    incremental: bool = True
    #: Score each generation's whole population in one vectorized
    #: :class:`~repro.eval.BatchEvaluator` sweep (bitwise-identical
    #: fitness, so fixed-seed trajectories are unchanged).  Falls back to
    #: the incremental/scalar path when numpy is unavailable, the cost
    #: subclass overrides evaluation, or ``REPRO_VECTORIZE=0``.
    vectorize: bool = True

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.elite_count >= self.population_size:
            raise ValueError("elite_count must be smaller than population_size")


class GeneticPlacer(CircuitPlacer):
    """Evolve block anchors for a fixed dimension vector."""

    name = "genetic"

    def __init__(
        self,
        *args,
        config: GeneticPlacerConfig = GeneticPlacerConfig(),
        seed: Optional[int] = 0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._config = config
        self._rng = make_rng(seed)
        self._fitness_cost = self._cost_function
        if self._cost_function.weights.overlap == 0.0:
            weights = self._cost_function.weights.with_legalization()
            self._fitness_cost = type(self._cost_function)(
                self._circuit, self._bounds, weights=weights
            )

    @property
    def config(self) -> GeneticPlacerConfig:
        """The configuration in use."""
        return self._config

    def place(self, dims: Sequence[Dims]) -> Placement:
        clamped = self._clamp_dims(dims)
        with Timer() as timer:
            anchors = self._evolve(clamped)
        return self._result(anchors, clamped, timer.elapsed)

    # ------------------------------------------------------------------ #
    # Evolution internals
    # ------------------------------------------------------------------ #
    def _evolve(self, dims: Tuple[Dims, ...]) -> Chromosome:
        config = self._config
        population = [self._random_chromosome(dims) for _ in range(config.population_size)]
        batch: Optional["BatchEvaluator"] = None
        if config.vectorize:
            batch = batch_evaluator_for(self._fitness_cost)
        evaluator: Optional[IncrementalEvaluator] = None
        if batch is None and config.incremental and self._fitness_cost.supports_incremental:
            evaluator = self._fitness_cost.bind(population[0], dims)
        scored = self._score_population(population, dims, evaluator, batch)
        scored.sort(key=lambda pair: pair[0])
        for _ in range(config.generations):
            next_population: List[Chromosome] = [ind for _, ind in scored[: config.elite_count]]
            while len(next_population) < config.population_size:
                parent_a = self._tournament(scored)
                parent_b = self._tournament(scored)
                if self._rng.random() < config.crossover_rate:
                    child = self._crossover(parent_a, parent_b)
                else:
                    child = parent_a
                if self._rng.random() < config.mutation_rate:
                    child = self._mutate(child, dims)
                next_population.append(child)
            scored = self._score_population(next_population, dims, evaluator, batch)
            scored.sort(key=lambda pair: pair[0])
        if evaluator is not None:
            self._accumulate_eval_stats(evaluator)
        return scored[0][1]

    def _score_population(
        self,
        population: List[Chromosome],
        dims: Tuple[Dims, ...],
        evaluator: Optional[IncrementalEvaluator],
        batch: Optional["BatchEvaluator"],
    ) -> List[Tuple[float, Chromosome]]:
        """Fitness-score one generation, batched when vectorization is on.

        The vectorized sweep produces bitwise-identical totals, and the
        subsequent sort is stable on equal keys, so trajectories match the
        scalar/incremental path for any fixed seed.
        """
        if batch is not None:
            totals = batch.totals(batch.stack(population, dims)).tolist()
            record_batch(len(totals))
            self._accumulate_vector_stats(evals=1, candidates=len(totals))
            return list(zip(totals, population))
        if self._config.vectorize:
            record_fallback()
            self._accumulate_vector_stats(fallbacks=1)
        return [(self._fitness(ind, dims, evaluator), ind) for ind in population]

    def _fitness(
        self,
        chromosome: Chromosome,
        dims: Tuple[Dims, ...],
        evaluator: Optional[IncrementalEvaluator] = None,
    ) -> float:
        if evaluator is not None:
            # Diff against the evaluator's current layout: elites and
            # near-duplicate children re-price only the anchors that moved.
            return evaluator.rebase(anchors=chromosome)
        return self._fitness_cost.evaluate_layout(chromosome, dims).total

    def _random_chromosome(self, dims: Tuple[Dims, ...]) -> Chromosome:
        placer = RandomPlacer(
            self._circuit,
            self._bounds,
            weights=CostWeights(),
            seed=self._rng.getrandbits(32),
            attempts=30,
        )
        result = placer.place(dims)
        return tuple(
            (result.rects[block.name].x, result.rects[block.name].y)
            for block in self._circuit.blocks
        )

    def _tournament(self, scored: List[Tuple[float, Chromosome]]) -> Chromosome:
        contenders = self._rng.sample(scored, min(self._config.tournament_size, len(scored)))
        contenders.sort(key=lambda pair: pair[0])
        return contenders[0][1]

    def _crossover(self, parent_a: Chromosome, parent_b: Chromosome) -> Chromosome:
        child = []
        for anchor_a, anchor_b in zip(parent_a, parent_b):
            child.append(anchor_a if self._rng.random() < 0.5 else anchor_b)
        return tuple(child)

    def _mutate(self, chromosome: Chromosome, dims: Tuple[Dims, ...]) -> Chromosome:
        config = self._config
        count = max(1, int(round(len(chromosome) * config.mutation_fraction)))
        max_dx = max(1, int(self._bounds.width * config.mutation_step_fraction))
        max_dy = max(1, int(self._bounds.height * config.mutation_step_fraction))
        mutated = list(chromosome)
        for block_index in self._rng.sample(range(len(chromosome)), min(count, len(chromosome))):
            x, y = mutated[block_index]
            w, h = dims[block_index]
            new_x = x + self._rng.randint(-max_dx, max_dx)
            new_y = y + self._rng.randint(-max_dy, max_dy)
            mutated[block_index] = self._bounds.clamp_anchor(new_x, new_y, w, h)
        return tuple(mutated)
