"""Circuit-bound base class of the baseline placement engines.

:class:`CircuitPlacer` specialises the unified :class:`repro.api.Placer`
protocol for engines that are constructed from a circuit, a floorplan
canvas and a cost function (template, random, genetic, per-instance
annealing).  The multi-placement structure and the placement service
implement the same protocol elsewhere, so every layer of the package can
swap engines freely.

The historical names still import from here: ``Placer`` aliases
:class:`CircuitPlacer`, and ``PlacementResult`` is a deprecated alias of
the unified :class:`repro.api.Placement`.
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, Optional, Sequence, Tuple

from repro.api.placement import Dims, Placement
from repro.api.placer import Placer as _PlacerProtocol
from repro.circuit.netlist import Circuit
from repro.cost.cost_function import CostWeights, PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds


class CircuitPlacer(_PlacerProtocol):
    """Base class of the placement engines bound to one circuit + canvas."""

    #: Registry kind / report name (used in experiment reports).
    name: str = "placer"

    def __init__(
        self,
        circuit: Circuit,
        bounds: Optional[FloorplanBounds] = None,
        weights: CostWeights = CostWeights(),
        wirelength_model: str = "hpwl",
    ) -> None:
        self._circuit = circuit
        self._bounds = bounds or FloorplanBounds.for_blocks(circuit.max_dims())
        self._cost_function = PlacementCostFunction(
            circuit, self._bounds, weights=weights, wirelength_model=wirelength_model
        )
        self._stats_lock = threading.Lock()
        self._queries = 0
        self._total_seconds = 0.0
        self._eval_counters: Dict[str, int] = {}

    @property
    def circuit(self) -> Circuit:
        """The circuit being placed."""
        return self._circuit

    @property
    def bounds(self) -> FloorplanBounds:
        """The floorplan canvas."""
        return self._bounds

    @property
    def cost_function(self) -> PlacementCostFunction:
        """The cost function used for evaluation."""
        return self._cost_function

    def stats(self) -> Dict[str, float]:
        """Uniform query counters (every engine reports through ``stats()``).

        Engines that price moves through :mod:`repro.eval` additionally
        report their accumulated ``delta_*`` counters here.
        """
        with self._stats_lock:
            return {
                "queries": self._queries,
                "total_seconds": self._total_seconds,
                **self._eval_counters,
            }

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _accumulate_eval_stats(self, evaluator) -> None:
        """Fold an :class:`~repro.eval.IncrementalEvaluator`'s counters into
        this placer's ``delta_*`` stats."""
        with self._stats_lock:
            for key, value in evaluator.stats().items():
                key = f"delta_{key}"
                self._eval_counters[key] = self._eval_counters.get(key, 0) + value

    def _accumulate_vector_stats(
        self, evals: int = 0, candidates: int = 0, fallbacks: int = 0
    ) -> None:
        """Fold vectorized batch-scoring counters into this placer's stats.

        The ``batch_evals`` / ``batch_candidates`` / ``vector_fallbacks``
        keys mirror the ``delta_*`` convention and flow through
        ``stats()`` into ``SynthesisResult.vector_eval_stats``.
        """
        with self._stats_lock:
            for key, value in (
                ("batch_evals", evals),
                ("batch_candidates", candidates),
                ("vector_fallbacks", fallbacks),
            ):
                if value:
                    self._eval_counters[key] = self._eval_counters.get(key, 0) + value
    def _clamp_dims(self, dims: Sequence[Dims]) -> Tuple[Dims, ...]:
        if len(dims) != self._circuit.num_blocks:
            raise ValueError(
                f"dims must have {self._circuit.num_blocks} entries, got {len(dims)}"
            )
        return tuple(
            block.clamp_dims(int(w), int(h))
            for block, (w, h) in zip(self._circuit.blocks, dims)
        )

    def _result(
        self,
        anchors: Sequence[Tuple[int, int]],
        dims: Sequence[Dims],
        elapsed: float,
        **metadata: object,
    ) -> Placement:
        rects = self._cost_function.rects_from(anchors, dims)
        with self._stats_lock:
            self._queries += 1
            self._total_seconds += elapsed
        return Placement(
            rects=rects,
            cost=self._cost_function.evaluate(rects),
            placer=self.name,
            source=self.name,
            elapsed_seconds=elapsed,
            metadata={"dims": tuple(dims), **metadata},
        )


#: The historical name of the baselines' base class.
Placer = CircuitPlacer


def __getattr__(name: str):
    if name == "PlacementResult":
        warnings.warn(
            "PlacementResult is deprecated; every engine now returns the "
            "unified repro.api.Placement",
            DeprecationWarning,
            stacklevel=2,
        )
        return Placement
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
