"""Common interface of all placement backends.

A placer receives a circuit, a concrete dimension vector and a floorplan
canvas and returns the placed rectangles plus their cost.  The
multi-placement structure is exposed through the same interface by
:class:`repro.synthesis.backends.MPSBackend` so the synthesis loop can swap
backends freely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.cost.cost_function import CostBreakdown, CostWeights, PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect

Dims = Tuple[int, int]


@dataclass(frozen=True)
class PlacementResult:
    """A placed layout and its cost."""

    rects: Dict[str, Rect]
    cost: CostBreakdown
    placer: str
    elapsed_seconds: float = 0.0

    @property
    def total_cost(self) -> float:
        """Weighted total cost of the layout."""
        return self.cost.total


class Placer(abc.ABC):
    """Base class of the placement backends."""

    #: Human-readable backend name (used in experiment reports).
    name: str = "placer"

    def __init__(
        self,
        circuit: Circuit,
        bounds: Optional[FloorplanBounds] = None,
        weights: CostWeights = CostWeights(),
        wirelength_model: str = "hpwl",
    ) -> None:
        self._circuit = circuit
        self._bounds = bounds or FloorplanBounds.for_blocks(circuit.max_dims())
        self._cost_function = PlacementCostFunction(
            circuit, self._bounds, weights=weights, wirelength_model=wirelength_model
        )

    @property
    def circuit(self) -> Circuit:
        """The circuit being placed."""
        return self._circuit

    @property
    def bounds(self) -> FloorplanBounds:
        """The floorplan canvas."""
        return self._bounds

    @property
    def cost_function(self) -> PlacementCostFunction:
        """The cost function used for evaluation."""
        return self._cost_function

    @abc.abstractmethod
    def place(self, dims: Sequence[Dims]) -> PlacementResult:
        """Place the circuit's blocks at the given dimensions."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _clamp_dims(self, dims: Sequence[Dims]) -> Tuple[Dims, ...]:
        if len(dims) != self._circuit.num_blocks:
            raise ValueError(
                f"dims must have {self._circuit.num_blocks} entries, got {len(dims)}"
            )
        return tuple(
            block.clamp_dims(int(w), int(h))
            for block, (w, h) in zip(self._circuit.blocks, dims)
        )

    def _result(
        self, anchors: Sequence[Tuple[int, int]], dims: Sequence[Dims], elapsed: float
    ) -> PlacementResult:
        rects = self._cost_function.rects_from(anchors, dims)
        return PlacementResult(
            rects=rects,
            cost=self._cost_function.evaluate(rects),
            placer=self.name,
            elapsed_seconds=elapsed,
        )
