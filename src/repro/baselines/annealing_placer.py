"""Per-instance simulated annealing placement (KOAN/ANAGRAM-style baseline).

This is the optimization-based approach whose "major drawback is
convergence time which makes it hard to use in a layout-inclusive sizing
process" — it re-anneals the block coordinates from scratch for every
dimension vector, producing high-quality placements slowly.

The inner loop runs through the incremental evaluation engine
(:mod:`repro.eval`) by default: each proposal is priced by delta over the
nets and neighbourhoods it touches instead of re-scoring the whole
layout, with a bit-identical cost trajectory for a fixed seed.  Set
``AnnealingPlacerConfig(incremental=False)`` to force the historical
from-scratch path (the comparison baseline of
``benchmarks/bench_incremental_eval.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.annealing.annealer import SimulatedAnnealer
from repro.annealing.schedule import AdaptiveSchedule
from repro.baselines.base import CircuitPlacer, Dims, Placement
from repro.baselines.random_placer import RandomPlacer
from repro.cost.cost_function import CostWeights
from repro.eval.engines import PerturbDeltaEngine, anchor_update
from repro.eval.incremental import IncrementalEvaluator
from repro.utils.rng import make_rng
from repro.utils.timer import Timer

Anchor = Tuple[int, int]


@dataclass(frozen=True)
class AnnealingPlacerConfig:
    """Tuning knobs of the per-instance annealing placer."""

    max_iterations: int = 3000
    moves_per_temperature: int = 25
    initial_temperature_fraction: float = 0.4
    alpha: float = 0.92
    #: Fraction of blocks moved per proposal.
    perturb_fraction: float = 0.3
    #: Maximum move distance as a fraction of the floorplan side.
    perturb_step_fraction: float = 0.35
    #: Probability of swapping two blocks' anchors instead of translating.
    swap_probability: float = 0.25
    #: Price proposals by delta through :mod:`repro.eval` (same trajectory,
    #: much faster); ``False`` re-scores every proposal from scratch.
    incremental: bool = True

    def scaled(self, factor: float) -> "AnnealingPlacerConfig":
        """Copy with the iteration budget scaled by ``factor``."""
        return replace(self, max_iterations=max(1, int(self.max_iterations * factor)))


class AnnealingPlacer(CircuitPlacer):
    """Anneal block anchors from scratch for every dimension vector."""

    name = "annealing"

    def __init__(
        self,
        *args,
        config: AnnealingPlacerConfig = AnnealingPlacerConfig(),
        seed: Optional[int] = 0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._config = config
        self._rng = make_rng(seed)
        # Intermediate states may overlap or leave the canvas, so the cost
        # used *during* annealing adds legalization penalties; the returned
        # result is scored with the caller's weights.
        self._anneal_cost = self._cost_function
        if self._cost_function.weights.overlap == 0.0:
            weights = self._cost_function.weights.with_legalization()
            self._anneal_cost = type(self._cost_function)(
                self._circuit, self._bounds, weights=weights
            )

    @property
    def config(self) -> AnnealingPlacerConfig:
        """The configuration in use."""
        return self._config

    def place(self, dims: Sequence[Dims]) -> Placement:
        clamped = self._clamp_dims(dims)
        with Timer() as timer:
            anchors = self._anneal(clamped)
        return self._result(anchors, clamped, timer.elapsed)

    # ------------------------------------------------------------------ #
    # Annealing internals
    # ------------------------------------------------------------------ #
    def _anneal(self, dims: Tuple[Dims, ...]) -> Tuple[Anchor, ...]:
        config = self._config
        initial = self._initial_anchors(dims)
        use_incremental = config.incremental and self._anneal_cost.supports_incremental

        evaluator: Optional[IncrementalEvaluator] = None
        if use_incremental:
            evaluator = self._anneal_cost.bind(initial, dims)
            initial_cost = evaluator.total
        else:
            initial_cost = self._anneal_cost.evaluate_layout(initial, dims).total
        schedule = AdaptiveSchedule(
            reference_cost=max(initial_cost, 1e-9),
            fraction=config.initial_temperature_fraction,
            alpha=config.alpha,
        )
        if evaluator is not None:
            annealer: SimulatedAnnealer = SimulatedAnnealer(
                schedule=schedule,
                moves_per_temperature=config.moves_per_temperature,
                max_iterations=config.max_iterations,
                seed=self._rng,
            )
            engine = PerturbDeltaEngine(
                evaluator,
                initial,
                lambda anchors, rng: self._perturb(anchors, dims, rng),
                anchor_update,
            )
            best = annealer.run_incremental(engine).best_state
            self._accumulate_eval_stats(evaluator)
            return best

        def evaluate(anchors: Tuple[Anchor, ...]) -> float:
            return self._anneal_cost.evaluate_layout(anchors, dims).total

        def propose(anchors: Tuple[Anchor, ...], rng: random.Random) -> Tuple[Anchor, ...]:
            return self._perturb(anchors, dims, rng)

        annealer = SimulatedAnnealer(
            evaluate=evaluate,
            propose=propose,
            schedule=schedule,
            moves_per_temperature=config.moves_per_temperature,
            max_iterations=config.max_iterations,
            seed=self._rng,
        )
        return annealer.run(initial).best_state

    def _initial_anchors(self, dims: Tuple[Dims, ...]) -> Tuple[Anchor, ...]:
        placer = RandomPlacer(
            self._circuit,
            self._bounds,
            weights=CostWeights(),
            seed=self._rng.getrandbits(32),
        )
        result = placer.place(dims)
        return tuple(
            (result.rects[block.name].x, result.rects[block.name].y)
            for block in self._circuit.blocks
        )

    def _perturb(
        self,
        anchors: Tuple[Anchor, ...],
        dims: Tuple[Dims, ...],
        rng: random.Random,
    ) -> Tuple[Anchor, ...]:
        config = self._config
        new_anchors: List[Anchor] = list(anchors)
        if len(anchors) >= 2 and rng.random() < config.swap_probability:
            i, j = rng.sample(range(len(anchors)), 2)
            new_anchors[i], new_anchors[j] = new_anchors[j], new_anchors[i]
            return tuple(new_anchors)
        count = max(1, int(round(len(anchors) * config.perturb_fraction)))
        max_dx = max(1, int(self._bounds.width * config.perturb_step_fraction))
        max_dy = max(1, int(self._bounds.height * config.perturb_step_fraction))
        for block_index in rng.sample(range(len(anchors)), min(count, len(anchors))):
            x, y = new_anchors[block_index]
            w, h = dims[block_index]
            new_x = x + rng.randint(-max_dx, max_dx)
            new_y = y + rng.randint(-max_dy, max_dy)
            new_anchors[block_index] = self._bounds.clamp_anchor(new_x, new_y, w, h)
        return tuple(new_anchors)
