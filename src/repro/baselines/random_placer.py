"""Legal random placement — the sanity-check floor for comparisons."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baselines.base import CircuitPlacer, Dims, Placement
from repro.geometry.packing import shelf_pack
from repro.geometry.rect import Rect
from repro.utils.rng import make_rng
from repro.utils.timer import Timer


class RandomPlacer(CircuitPlacer):
    """Rejection-sample a legal placement; fall back to a shuffled shelf packing."""

    name = "random"

    def __init__(self, *args, seed: Optional[int] = 0, attempts: int = 200, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = make_rng(seed)
        self._attempts = attempts

    def place(self, dims: Sequence[Dims]) -> Placement:
        clamped = self._clamp_dims(dims)
        with Timer() as timer:
            anchors = self._sample_legal(clamped)
        return self._result(anchors, clamped, timer.elapsed)

    def _sample_legal(self, dims: Sequence[Dims]) -> List[Tuple[int, int]]:
        bounds = self._bounds
        for _ in range(self._attempts):
            anchors = [
                (
                    self._rng.randint(0, max(0, bounds.width - w)),
                    self._rng.randint(0, max(0, bounds.height - h)),
                )
                for (w, h) in dims
            ]
            rects = [Rect(x, y, w, h) for (x, y), (w, h) in zip(anchors, dims)]
            legal = True
            for i in range(len(rects)):
                if not bounds.contains(rects[i]):
                    legal = False
                    break
                for j in range(i + 1, len(rects)):
                    if rects[i].intersects(rects[j]):
                        legal = False
                        break
                if not legal:
                    break
            if legal:
                return anchors
        order = list(range(len(dims)))
        self._rng.shuffle(order)
        return shelf_pack(list(dims), max_width=bounds.width, order=order)
