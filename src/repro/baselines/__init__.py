"""Baseline placement approaches the paper positions itself against.

* :class:`TemplatePlacer` — template-based layout generation (BALLISTIC /
  MSL style): one fixed relative arrangement instantiated for any sizes.
* :class:`AnnealingPlacer` — optimization-based, per-instance simulated
  annealing placement (KOAN/ANAGRAM style): high quality, slow.
* :class:`GeneticPlacer` — genetic-algorithm placement (Zhang, ISCAS 2002).
* :class:`RandomPlacer` — legal random placement, the sanity-check floor.

All of them implement the unified :class:`repro.api.Placer` protocol and
return the unified :class:`repro.api.Placement`; construct them directly
or through ``repro.api.make_placer`` specs (kinds ``template`` /
``annealing`` / ``genetic`` / ``random``).
"""

import warnings

from repro.baselines.annealing_placer import AnnealingPlacer, AnnealingPlacerConfig
from repro.baselines.base import CircuitPlacer, Placer
from repro.baselines.genetic import GeneticPlacer, GeneticPlacerConfig
from repro.baselines.random_placer import RandomPlacer
from repro.baselines.template import TemplatePlacer

__all__ = [
    "AnnealingPlacer",
    "AnnealingPlacerConfig",
    "CircuitPlacer",
    "Placer",
    "GeneticPlacer",
    "GeneticPlacerConfig",
    "RandomPlacer",
    "TemplatePlacer",
]


def __getattr__(name: str):
    if name == "PlacementResult":
        warnings.warn(
            "repro.baselines.PlacementResult is deprecated; every engine now "
            "returns the unified repro.api.Placement",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.placement import Placement

        return Placement
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
