"""Baseline placement approaches the paper positions itself against.

* :class:`TemplatePlacer` — template-based layout generation (BALLISTIC /
  MSL style): one fixed relative arrangement instantiated for any sizes.
* :class:`AnnealingPlacer` — optimization-based, per-instance simulated
  annealing placement (KOAN/ANAGRAM style): high quality, slow.
* :class:`GeneticPlacer` — genetic-algorithm placement (Zhang, ISCAS 2002).
* :class:`RandomPlacer` — legal random placement, the sanity-check floor.
"""

from repro.baselines.annealing_placer import AnnealingPlacer, AnnealingPlacerConfig
from repro.baselines.base import PlacementResult, Placer
from repro.baselines.genetic import GeneticPlacer, GeneticPlacerConfig
from repro.baselines.random_placer import RandomPlacer
from repro.baselines.template import TemplatePlacer

__all__ = [
    "AnnealingPlacer",
    "AnnealingPlacerConfig",
    "PlacementResult",
    "Placer",
    "GeneticPlacer",
    "GeneticPlacerConfig",
    "RandomPlacer",
    "TemplatePlacer",
]
