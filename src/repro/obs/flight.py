"""Flight recorder and tail-based trace sampling.

Two bounded-memory retention policies for the serving path:

* :class:`FlightRecorder` — a ring of the last N request records (the
  structured access-log dicts).  The server dumps it to JSONL on SIGTERM
  drain or on an unhandled error, so the minutes *before* an incident are
  always on disk without logging every request forever.
* :class:`TraceBuffer` — tail-based trace sampling.  Head sampling
  decides before a request runs and therefore keeps the wrong traces;
  tail sampling decides *after* the outcome is known: error traces
  (429/5xx/504) are always kept, the slowest percentile is kept, and the
  boring bulk is dropped.  Spans stream in through a
  :func:`repro.obs.add_span_sink` feed (O(1) per span — the buffer never
  scans the global span deque), and the keep/drop decision happens when
  the trace's root record arrives via :func:`repro.obs.add_root_hook`.

Both are deterministic (no RNG — the slow threshold comes from a bucketed
:class:`~repro.obs.metrics.Histogram` quantile, not reservoir sampling)
and lock-guarded for cross-thread use.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict, deque
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.obs.metrics import Histogram

__all__ = ["FlightRecorder", "TraceBuffer"]

PathLike = Union[str, Path]


class FlightRecorder:
    """A bounded ring of the most recent request records.

    Records are plain JSON-ready dicts (the server's access-log entries).
    ``dump`` writes them oldest-first as JSON Lines, atomically enough for
    a crash dump (write then rename is overkill for an append-shaped ring;
    a partial last line is acceptable in a post-mortem artifact).
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    @property
    def capacity(self) -> int:
        """The ring bound."""
        return self._ring.maxlen or 0

    @property
    def recorded(self) -> int:
        """Total records ever recorded (not just the retained window)."""
        return self._recorded

    def record(self, entry: Mapping[str, Any]) -> None:
        """Append one request record (oldest falls off past capacity)."""
        with self._lock:
            self._ring.append(dict(entry))
            self._recorded += 1

    def snapshot(self) -> List[Dict[str, Any]]:
        """A copy of the retained records, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._ring]

    def dump(self, path: PathLike) -> Path:
        """Write the retained records as JSONL; returns the path."""
        records = self.snapshot()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for entry in records:
                handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        return path

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FlightRecorder({len(self)}/{self.capacity})"


def _is_error_status(status: Optional[int]) -> bool:
    """The always-keep statuses: shed (429) and server failure (5xx/504)."""
    return status is not None and (status == 429 or status >= 500)


class TraceBuffer:
    """Tail-sampled retention of complete traces.

    Feed every finished span through :meth:`ingest` (a
    ``repro.obs.add_span_sink`` target) and every finished root record
    through :meth:`seal` (a ``repro.obs.add_root_hook`` target).  On seal
    the buffer decides:

    * **error** — the root carries a 429/5xx status or an ``error``
      attribute: always kept;
    * **slow** — duration at or above the ``slow_quantile`` of all
      durations seen so far (bucketed-histogram estimate, so no sorting
      and no RNG), once ``min_samples`` have been observed;
    * otherwise the trace's spans are dropped.

    Memory is capped three ways: at most ``max_live`` un-sealed traces
    with at most ``max_spans_per_trace`` spans each, and at most
    ``capacity`` kept traces — evicting oldest *slow* traces before
    oldest *error* traces.
    """

    def __init__(
        self,
        capacity: int = 64,
        slow_quantile: float = 0.9,
        min_samples: int = 32,
        max_live: int = 256,
        max_spans_per_trace: int = 512,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not 0.0 < slow_quantile < 1.0:
            raise ValueError("slow_quantile must be in (0, 1)")
        self._capacity = capacity
        self._slow_quantile = slow_quantile
        self._min_samples = max(1, min_samples)
        self._max_live = max(1, max_live)
        self._max_spans = max(1, max_spans_per_trace)
        self._durations = Histogram("tracebuffer.duration")
        self._live: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        self._kept: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._sealed = 0
        self._dropped = 0
        self._evicted = 0
        #: Cached slow threshold, recomputed every 16 seals (the quantile
        #: walk is the one non-O(1) piece of the seal path).
        self._slow_threshold: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Ingestion (span sink + root hook targets)
    # ------------------------------------------------------------------ #
    def ingest(self, record: Mapping[str, Any]) -> None:
        """Index one finished span under its trace (O(1))."""
        trace_id = record.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            bucket = self._live.get(trace_id)
            if bucket is None:
                while len(self._live) >= self._max_live:
                    self._live.popitem(last=False)
                bucket = self._live[trace_id] = []
            if len(bucket) < self._max_spans:
                # The record is the span's own freshly built dict (or a
                # worker-side ingested one); the buffer takes ownership
                # rather than copying on the hot path.
                bucket.append(record)  # type: ignore[arg-type]

    def seal(self, root_record: Mapping[str, Any]) -> Optional[str]:
        """Decide a finished trace's fate; returns the kept category or ``None``."""
        trace_id = root_record.get("trace_id")
        if not trace_id:
            return None
        attrs = root_record.get("attrs", {})
        status = attrs.get("status")
        duration = float(root_record.get("duration", 0.0))
        with self._lock:
            spans = self._live.pop(trace_id, None) or []
            # The sink normally delivered the root before this hook fires;
            # include it explicitly when the buffer was wired up root-only.
            root_id = root_record.get("span_id")
            if not any(record.get("span_id") == root_id for record in spans):
                spans.append(dict(root_record))
            self._sealed += 1
            self._durations.observe(duration)
            if self._durations.count >= self._min_samples and (
                self._slow_threshold is None or self._sealed % 16 == 0
            ):
                self._slow_threshold = self._durations.quantile(self._slow_quantile)
            if _is_error_status(status) or "error" in attrs:
                category = "error"
            elif self._slow_threshold is not None and duration >= self._slow_threshold:
                category = "slow"
            else:
                self._dropped += 1
                return None
            self._kept[trace_id] = {
                "trace_id": trace_id,
                "category": category,
                "name": root_record.get("name"),
                "status": status,
                "request_id": attrs.get("request_id"),
                "start": root_record.get("start"),
                "duration": duration,
                "span_count": len(spans),
                "spans": spans,
            }
            self._kept.move_to_end(trace_id)
            self._evict_locked()
            return category

    def _evict_locked(self) -> None:
        while len(self._kept) > self._capacity:
            victim = None
            for trace_id, entry in self._kept.items():
                if entry["category"] == "slow":
                    victim = trace_id
                    break
            if victim is None:  # all errors: evict the oldest
                victim = next(iter(self._kept))
            del self._kept[victim]
            self._evicted += 1

    # ------------------------------------------------------------------ #
    # Introspection (the /debug/tracez surface)
    # ------------------------------------------------------------------ #
    def summaries(self) -> List[Dict[str, Any]]:
        """Kept traces newest-first, without span payloads."""
        with self._lock:
            entries = [
                {key: value for key, value in entry.items() if key != "spans"}
                for entry in self._kept.values()
            ]
        entries.reverse()
        return entries

    def get(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """The span records of one kept trace, or ``None``."""
        with self._lock:
            entry = self._kept.get(trace_id)
            return [dict(span) for span in entry["spans"]] if entry else None

    def stats(self) -> Dict[str, Any]:
        """Sampler accounting: sealed/kept/dropped/evicted and the threshold."""
        with self._lock:
            slow_threshold = self._slow_threshold
            categories: Dict[str, int] = {}
            for entry in self._kept.values():
                categories[entry["category"]] = categories.get(entry["category"], 0) + 1
            return {
                "sealed": self._sealed,
                "kept": len(self._kept),
                "dropped": self._dropped,
                "evicted": self._evicted,
                "live": len(self._live),
                "capacity": self._capacity,
                "slow_quantile": self._slow_quantile,
                "slow_threshold_seconds": slow_threshold,
                "kept_by_category": categories,
            }

    def clear(self) -> None:
        """Drop every kept and live trace (session teardown)."""
        with self._lock:
            self._live.clear()
            self._kept.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._kept)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TraceBuffer(kept={len(self)}/{self._capacity})"
