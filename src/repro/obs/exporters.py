"""Trace and metrics exporters: Chrome trace events, JSONL, manifests.

Three durable artifact formats come out of the in-memory span buffer and
the metrics registry:

* **Chrome trace-event JSON** (:func:`export_chrome_trace`) — loadable in
  ``chrome://tracing`` and Perfetto.  Spans become complete (``"ph": "X"``)
  events on a per-process/per-thread timeline, so a 4-worker batch shows
  the coordinator lane plus one lane per worker PID.
* **JSONL event logs** (:func:`export_jsonl`) — one span record per line,
  grep- and pandas-friendly.
* **Run manifests** (:func:`write_run_manifest`) — a single JSON document
  tying a run label to its span count, wall-clock window, metrics
  snapshot and sibling artifact paths.

When :func:`repro.obs.configure` is given an ``export_dir``, every *root*
span (one service batch, one routed batch, one synthesis run) triggers
:func:`export_run` automatically on completion.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs import spans as _spans
from repro.obs.spans import add_root_hook, metrics, spans_snapshot

__all__ = [
    "export_chrome_trace",
    "export_jsonl",
    "export_metrics",
    "export_run",
    "spans_to_chrome_events",
    "write_run_manifest",
]

PathLike = Union[str, Path]


def spans_to_chrome_events(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Convert span records to Chrome trace-event dicts.

    Timestamps are microseconds relative to the earliest span in the set
    (Chrome's viewer prefers small offsets over epoch-scale numbers); the
    per-record wall-clock start is preserved under ``args.start_unix_s``.
    """
    if not records:
        return []
    origin = min(record["start"] for record in records)
    events: List[Dict[str, Any]] = []
    seen_lanes = set()
    for record in records:
        pid = int(record.get("pid", 0))
        tid = int(record.get("tid", 0)) % 0x7FFFFFFF
        args = {str(key): value for key, value in record.get("attrs", {}).items()}
        args["trace_id"] = record["trace_id"]
        args["span_id"] = record["span_id"]
        if record.get("parent_id"):
            args["parent_id"] = record["parent_id"]
        args["start_unix_s"] = record["start"]
        events.append(
            {
                "name": record["name"],
                "cat": record["name"].split(".", 1)[0],
                "ph": "X",
                "ts": (record["start"] - origin) * 1e6,
                "dur": record["duration"] * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        if pid not in seen_lanes:
            seen_lanes.add(pid)
            role = "coordinator" if pid == os.getpid() else "worker"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"{role} {pid}"},
                }
            )
    return events


def export_chrome_trace(
    path: PathLike,
    records: Optional[Sequence[Dict[str, Any]]] = None,
    trace_id: Optional[str] = None,
) -> Path:
    """Write a Chrome trace-event JSON file and return its path.

    ``records`` defaults to the buffered spans (optionally filtered to one
    ``trace_id``).
    """
    if records is None:
        records = spans_snapshot(trace_id)
    payload = {
        "traceEvents": spans_to_chrome_events(records),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "span_count": len(records)},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True, default=str), encoding="utf-8")
    return path


def export_jsonl(
    path: PathLike,
    records: Optional[Sequence[Dict[str, Any]]] = None,
    trace_id: Optional[str] = None,
) -> Path:
    """Write span records as JSON Lines and return the file path."""
    if records is None:
        records = spans_snapshot(trace_id)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
    return path


def export_metrics(path: PathLike, fmt: str = "prometheus") -> Path:
    """Write the global metrics snapshot as ``prometheus`` text or ``json``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fmt == "prometheus":
        path.write_text(metrics().to_prometheus(), encoding="utf-8")
    elif fmt == "json":
        path.write_text(
            json.dumps(metrics().snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    else:
        raise ValueError(f"unknown metrics format {fmt!r}; use 'prometheus' or 'json'")
    return path


def write_run_manifest(
    path: PathLike,
    label: str,
    records: Optional[Sequence[Dict[str, Any]]] = None,
    artifacts: Optional[Dict[str, str]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the run manifest tying a labelled run to its artifacts."""
    if records is None:
        records = spans_snapshot()
    starts = [record["start"] for record in records]
    ends = [record["start"] + record["duration"] for record in records]
    manifest: Dict[str, Any] = {
        "label": label,
        "written_at": time.time(),
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "pid": os.getpid(),
        "span_count": len(records),
        "trace_ids": sorted({record["trace_id"] for record in records}),
        "started_at": min(starts) if starts else None,
        "finished_at": max(ends) if ends else None,
        "artifacts": dict(artifacts or {}),
        "metrics": metrics().snapshot(),
    }
    if extra:
        manifest["extra"] = dict(extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def export_run(
    directory: PathLike,
    label: str,
    trace_id: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Path]:
    """Write the full artifact set for one run into ``directory``.

    Produces ``<label>.trace.json`` (Chrome), ``<label>.jsonl`` (event
    log) and ``<label>.manifest.json`` (manifest + metrics snapshot);
    returns the paths keyed by artifact kind.
    """
    directory = Path(directory)
    records = spans_snapshot(trace_id)
    safe = "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in label)
    trace_path = export_chrome_trace(directory / f"{safe}.trace.json", records)
    jsonl_path = export_jsonl(directory / f"{safe}.jsonl", records)
    manifest_path = write_run_manifest(
        directory / f"{safe}.manifest.json",
        label,
        records,
        artifacts={"chrome_trace": str(trace_path), "jsonl": str(jsonl_path)},
        extra=extra,
    )
    return {"chrome_trace": trace_path, "jsonl": jsonl_path, "manifest": manifest_path}


def _auto_export_root(record: Dict[str, Any]) -> None:
    """Root-span hook: export the finished trace when an export dir is set."""
    directory = _spans._CONFIG.export_dir
    if directory is None:
        return
    label = f"{record['name'].replace('.', '_')}-{record['trace_id']}"
    try:
        export_run(directory, label, trace_id=record["trace_id"])
    except OSError:  # pragma: no cover - disk full / permissions
        pass


# Durable: the auto-export built-in survives ``obs.reset()``; only
# session-scoped hooks (e.g. a server's trace sampler) are transient.
add_root_hook(_auto_export_root, durable=True)
