"""Process-local metrics: named counters, gauges and bounded histograms.

One :class:`MetricsRegistry` holds every metric a process reports.  The
three metric kinds mirror the Prometheus data model:

* :class:`Counter` — a monotonically *intended* additive total (the code
  may also set it, which is how the legacy ``ServiceStats`` views stay
  exact).
* :class:`Gauge` — a point-in-time value that moves both ways.
* :class:`Histogram` — a bounded-memory distribution: observations land
  in a fixed exponential bucket ladder, so memory is O(buckets) no matter
  how many samples arrive, and quantiles are interpolated from the bucket
  counts (exact min/max/sum/count are tracked on the side).

Everything is thread-safe under one registry lock; individual increments
on an already-created metric are lock-free attribute updates (the GIL
makes ``+=`` on a float attribute atomic enough for statistics — the
registry lock only guards metric *creation* and whole-registry snapshots).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_time_buckets",
]

MetricValue = Union[float, Dict[str, float]]


def default_time_buckets() -> Tuple[float, ...]:
    """The default histogram ladder: 1µs .. ~100s, 4 buckets per decade."""
    buckets: List[float] = []
    value = 1e-6
    while value < 200.0:
        buckets.append(value)
        value *= math.sqrt(math.sqrt(10.0))  # 4 buckets per decade
    return tuple(buckets)


class Counter:
    """An additive named total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be fractional; e.g. seconds)."""
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite the total (used by the legacy stat views)."""
        self.value = float(value)


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up (or down with a negative ``amount``)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down."""
        self.value -= amount


class Histogram:
    """A bounded-memory distribution with interpolated quantiles.

    Parameters
    ----------
    name:
        Metric name.
    buckets:
        Ascending upper bounds of the bucket ladder.  Observations above
        the last bound land in an implicit overflow bucket.  Defaults to
        :func:`default_time_buckets` (tuned for seconds-valued timings).
    """

    __slots__ = ("name", "_bounds", "_counts", "count", "sum", "minimum", "maximum")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        bounds = tuple(buckets) if buckets is not None else default_time_buckets()
        if list(bounds) != sorted(bounds) or len(bounds) < 1:
            raise ValueError("histogram buckets must be a non-empty ascending sequence")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect_right(self._bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the bucket holding the target rank;
        the estimate is clamped to the exact observed ``[min, max]``, so
        ``quantile(0)``/``quantile(1)`` are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = self._bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self._bounds[index]
                    if index < len(self._bounds)
                    else max(self.maximum, lower)
                )
                fraction = (rank - seen) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.minimum), self.maximum)
            seen += bucket_count
        return self.maximum

    def snapshot(self) -> Dict[str, float]:
        """Summary dict: count / sum / mean / min / max / p50 / p90 / p99."""
        empty = self.count == 0
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": 0.0 if empty else self.minimum,
            "max": 0.0 if empty else self.maximum,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style."""
        cumulative = 0
        pairs: List[Tuple[float, int]] = []
        for bound, bucket_count in zip(self._bounds, self._counts):
            cumulative += bucket_count
            pairs.append((bound, cumulative))
        pairs.append((math.inf, self.count))
        return pairs


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Metric access (get-or-create)
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram named ``name``, created on first use."""
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(name, Histogram(name, buckets))
        return metric

    # Convenience one-liners for instrumentation sites.
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def merge_counters(self, counters: Mapping[str, float], prefix: str = "") -> None:
        """Fold a plain ``{name: value}`` mapping additively into counters.

        Non-numeric values (nested dicts, strings) are skipped, so the
        merged worker stat dicts — which mix counters with structured
        payloads — feed in directly.
        """
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.counter(f"{prefix}{name}").inc(float(value))

    # ------------------------------------------------------------------ #
    # Introspection and export
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        with self._lock:
            return sorted({*self._counters, *self._gauges, *self._histograms})

    def snapshot(self) -> Dict[str, MetricValue]:
        """Plain dict of every metric: scalars for counters/gauges, summary
        dicts for histograms.  Safe to JSON-serialize."""
        with self._lock:
            result: Dict[str, MetricValue] = {}
            for name, counter in self._counters.items():
                value = counter.value
                result[name] = int(value) if float(value).is_integer() else value
            for name, gauge in self._gauges.items():
                result[name] = gauge.value
            for name, histogram in self._histograms.items():
                result[name] = histogram.snapshot()
            return dict(sorted(result.items()))

    def to_prometheus(self) -> str:
        """Prometheus text-exposition rendering of every metric.

        Metric names are sanitized (``.`` and ``-`` become ``_``);
        histograms render the standard ``_bucket``/``_sum``/``_count``
        triplet with cumulative ``le`` labels.
        """
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._counters):
                flat = _sanitize(name)
                lines.append(f"# TYPE {flat} counter")
                lines.append(f"{flat} {_format_value(self._counters[name].value)}")
            for name in sorted(self._gauges):
                flat = _sanitize(name)
                lines.append(f"# TYPE {flat} gauge")
                lines.append(f"{flat} {_format_value(self._gauges[name].value)}")
            for name in sorted(self._histograms):
                histogram = self._histograms[name]
                flat = _sanitize(name)
                lines.append(f"# TYPE {flat} histogram")
                for bound, cumulative in histogram.bucket_counts():
                    label = "+Inf" if math.isinf(bound) else _format_value(bound)
                    lines.append(f'{flat}_bucket{{le="{label}"}} {cumulative}')
                lines.append(f"{flat}_sum {_format_value(histogram.sum)}")
                lines.append(f"{flat}_count {histogram.count}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every metric (used between runs and by tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MetricsRegistry(metrics={len(self)})"


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric name."""
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _format_value(value: float) -> str:
    """Render floats compactly, integers without a trailing ``.0``."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
