"""Service-level objectives: rolling-window compliance and burn rates.

An SLO turns a latency histogram and a status counter into the one number
an operator pages on: *how fast is the error budget burning?*  The model
follows the multi-window burn-rate alerting practice:

* an :class:`SLObjective` names a target (``0.999`` availability, or
  ``p`` of requests under a latency threshold) over a rolling compliance
  window;
* an :class:`SLOTracker` ingests per-request outcomes into time-bucketed
  good/bad counts (O(resolution) memory, no per-request allocation), and
* :meth:`SLOTracker.snapshot` reports compliance plus the burn rate over
  several lookback horizons — a burn rate of 1.0 consumes exactly the
  error budget over the window; 10x means the budget is gone in a tenth
  of the window.

Like the rest of :mod:`repro.obs`, the tracker is deterministic (no RNG,
injectable clock) and cheap: recording one request is a handful of list
writes.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["SLObjective", "SLOTracker"]

Clock = Callable[[], float]

#: Statuses the availability SLI counts as server failures.  429 is a
#: *protective* answer (shed/quota) and 4xx is the caller's fault; 5xx —
#: including 503 draining and 504 deadline — burns the budget.
ERROR_STATUS_FLOOR = 500


@dataclass(frozen=True)
class SLObjective:
    """One objective: a target fraction of good events over a window.

    Parameters
    ----------
    name:
        Label in snapshots (``"availability"``, ``"latency"``).
    target:
        The good fraction to uphold, in ``(0, 1)`` — e.g. ``0.999``.
    kind:
        ``"availability"`` counts every request, good when the status is
        below 500.  ``"latency"`` counts successful requests only, good
        when latency is at or under ``latency_threshold``.
    latency_threshold:
        Seconds bound for the latency SLI (required for that kind).
    window_seconds:
        The rolling compliance window.
    """

    name: str
    target: float
    kind: str = "availability"
    latency_threshold: Optional[float] = None
    window_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"kind must be availability|latency, got {self.kind!r}")
        if self.kind == "latency" and self.latency_threshold is None:
            raise ValueError("latency objectives need a latency_threshold")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")

    @property
    def error_budget(self) -> float:
        """The tolerated bad fraction (``1 - target``)."""
        return 1.0 - self.target


class _WindowCounts:
    """Good/bad counts in a ring of time buckets spanning one window."""

    __slots__ = ("_bucket_seconds", "_size", "_epochs", "_good", "_bad")

    def __init__(self, window_seconds: float, resolution: int) -> None:
        self._size = resolution
        self._bucket_seconds = window_seconds / resolution
        self._epochs = [-1] * resolution
        self._good = [0] * resolution
        self._bad = [0] * resolution

    def record(self, good: bool, now: float) -> None:
        epoch = int(now // self._bucket_seconds)
        index = epoch % self._size
        if self._epochs[index] != epoch:
            # Reclaim a bucket that aged out of the window.
            self._epochs[index] = epoch
            self._good[index] = 0
            self._bad[index] = 0
        if good:
            self._good[index] += 1
        else:
            self._bad[index] += 1

    def totals(self, now: float, horizon: Optional[float] = None) -> Tuple[int, int]:
        """``(good, bad)`` over the trailing ``horizon`` seconds (full window
        when ``None``), bucket-granular."""
        epoch = int(now // self._bucket_seconds)
        if horizon is None:
            reach = self._size
        else:
            reach = max(1, min(self._size, math.ceil(horizon / self._bucket_seconds)))
        floor = epoch - reach + 1
        good = bad = 0
        for index in range(self._size):
            if floor <= self._epochs[index] <= epoch:
                good += self._good[index]
                bad += self._bad[index]
        return good, bad


class SLOTracker:
    """Track several objectives from one per-request outcome stream.

    Parameters
    ----------
    objectives:
        The :class:`SLObjective` set to uphold.
    burn_horizons:
        Lookback horizons (seconds) for the multi-window burn rates.
        Defaults per objective to ``(window/12, window)`` — the classic
        short/long pairing (5 m and 1 h for an hour-long window).
    resolution:
        Time buckets per window; memory and ``snapshot`` cost are
        O(resolution) per objective.
    clock:
        Injectable time source (tests drive time explicitly).
    """

    def __init__(
        self,
        objectives: Sequence[SLObjective],
        burn_horizons: Optional[Sequence[float]] = None,
        resolution: int = 64,
        clock: Clock = time.monotonic,
    ) -> None:
        if resolution < 2:
            raise ValueError("resolution must be at least 2")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"objective names must be unique, got {names}")
        self._objectives: Tuple[SLObjective, ...] = tuple(objectives)
        self._burn_horizons = tuple(burn_horizons) if burn_horizons else None
        self._clock = clock
        self._lock = threading.Lock()
        self._counts: Dict[str, _WindowCounts] = {
            objective.name: _WindowCounts(objective.window_seconds, resolution)
            for objective in self._objectives
        }

    @property
    def objectives(self) -> Tuple[SLObjective, ...]:
        """The tracked objectives."""
        return self._objectives

    def record(self, status: int, latency_seconds: float) -> None:
        """Ingest one request outcome into every objective's window."""
        now = self._clock()
        with self._lock:
            for objective in self._objectives:
                if objective.kind == "availability":
                    self._counts[objective.name].record(
                        status < ERROR_STATUS_FLOOR, now
                    )
                elif status < 400:
                    # The latency SLI is conditioned on success: a shed or
                    # failed request burns availability, not latency.
                    threshold = objective.latency_threshold or 0.0
                    self._counts[objective.name].record(
                        latency_seconds <= threshold, now
                    )

    def _horizons_for(self, objective: SLObjective) -> Tuple[float, ...]:
        if self._burn_horizons is not None:
            return self._burn_horizons
        return (objective.window_seconds / 12.0, objective.window_seconds)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Per-objective compliance and burn rates, JSON-ready.

        ``burn_rate`` (the full-window rate) is the headline number:
        below 1.0 the objective is being met; ``burn_rates`` adds the
        shorter horizons for fast-burn detection.
        """
        now = self._clock()
        report: List[Dict[str, Any]] = []
        with self._lock:
            for objective in self._objectives:
                counts = self._counts[objective.name]
                good, bad = counts.totals(now)
                total = good + bad
                compliance = good / total if total else 1.0
                burn_rates: Dict[str, float] = {}
                for horizon in self._horizons_for(objective):
                    h_good, h_bad = counts.totals(now, horizon)
                    h_total = h_good + h_bad
                    rate = (
                        (h_bad / h_total) / objective.error_budget if h_total else 0.0
                    )
                    burn_rates[f"{horizon:g}s"] = round(rate, 4)
                entry: Dict[str, Any] = {
                    "name": objective.name,
                    "kind": objective.kind,
                    "target": objective.target,
                    "window_seconds": objective.window_seconds,
                    "good": good,
                    "total": total,
                    "compliance": round(compliance, 6),
                    "error_budget": round(objective.error_budget, 6),
                    "burn_rate": (
                        round(((total - good) / total) / objective.error_budget, 4)
                        if total
                        else 0.0
                    ),
                    "burn_rates": burn_rates,
                }
                if objective.latency_threshold is not None:
                    entry["latency_threshold_seconds"] = objective.latency_threshold
                report.append(entry)
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        names = ", ".join(objective.name for objective in self._objectives)
        return f"SLOTracker([{names}])"
