"""Unified observability: metrics registry, span tracing, exporters.

Every subsystem — service, registry, router, evaluator, worker pool,
synthesis loop — reports into this one substrate:

* :func:`metrics` — the process-global :class:`~repro.obs.MetricsRegistry`
  of named counters, gauges and bounded-memory timing histograms
  (``metrics().snapshot()`` → plain dict, ``metrics().to_prometheus()`` →
  text exposition).
* :func:`span` — hierarchical tracing: ``with span("service.instantiate_batch",
  queries=64):`` opens a timed span parented on the thread's current one;
  trace context propagates through :class:`~repro.parallel.pool.WorkerPool`
  job specs so worker-side spans re-parent into the coordinator's trace.
* :mod:`~repro.obs.exporters` — Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto), JSONL event logs, run manifests and
  Prometheus/JSON metrics dumps.

Everything is **off by default**: until :func:`configure` runs, a span is
a single flag check and metrics mirroring is skipped, so fixed-seed
trajectories (and their wall-clock) are untouched.  Enabling tracing never
touches any RNG — identifiers come from a process-local counter — so the
same trajectories stay bit-identical with tracing on.

Quickstart::

    from repro import obs

    obs.configure(enabled=True, export_dir="runs/")   # auto-export each run
    ... run a service batch / synthesis loop ...
    print(obs.metrics().to_prometheus())
    obs.export_chrome_trace("trace.json")             # or rely on export_dir
"""

from repro.obs.exporters import (
    export_chrome_trace,
    export_jsonl,
    export_metrics,
    export_run,
    write_run_manifest,
)
from repro.obs.flight import FlightRecorder, TraceBuffer
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import SLObjective, SLOTracker
from repro.obs.spans import (
    Span,
    add_root_hook,
    add_span_sink,
    anchored,
    clear_spans,
    clock,
    configure,
    current_span,
    current_trace_id,
    ingest_spans,
    is_enabled,
    metrics,
    remote_span_capture,
    remove_root_hook,
    remove_span_sink,
    reset,
    root_span,
    span,
    span_context,
    spans_snapshot,
    trace_context,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLObjective",
    "SLOTracker",
    "Span",
    "TraceBuffer",
    "add_root_hook",
    "add_span_sink",
    "anchored",
    "clear_spans",
    "clock",
    "configure",
    "current_span",
    "current_trace_id",
    "export_chrome_trace",
    "export_jsonl",
    "export_metrics",
    "export_run",
    "ingest_spans",
    "is_enabled",
    "metrics",
    "remote_span_capture",
    "remove_root_hook",
    "remove_span_sink",
    "reset",
    "root_span",
    "span",
    "span_context",
    "spans_snapshot",
    "trace_context",
    "write_run_manifest",
]
