"""Hierarchical span tracing with cross-process trace propagation.

The tracing substrate follows three rules that keep it safe to leave
compiled into every hot path:

* **Off is (almost) free** — :func:`span` checks one module-level flag and
  hands back a shared no-op context manager when tracing is disabled; no
  allocation, no clock read, no lock.
* **No RNG contact** — trace and span identifiers come from a process-local
  monotonic counter plus the PID, never from :mod:`random` or
  :mod:`uuid`, so enabling tracing cannot perturb a fixed-seed trajectory.
* **Plain-data records** — a finished span is a JSON-ready dict; those
  dicts cross process boundaries inside :class:`~repro.parallel.jobs.JobResult`
  and re-parent into the coordinator's trace on merge
  (:func:`trace_context` / :func:`remote_span_capture` / :func:`ingest_spans`).

Clock discipline: durations come from :func:`clock` (``perf_counter``, the
"span clock" that :class:`repro.utils.timer.Timer` also runs on), while
start timestamps are wall-clock seconds so spans from different processes
on one machine line up on a shared Chrome-trace timeline.
"""

from __future__ import annotations

import cProfile
import itertools
import json
import os
import threading
import time
from collections import deque
from fnmatch import fnmatch
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import contextlib

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Span",
    "add_root_hook",
    "add_span_sink",
    "anchored",
    "clock",
    "configure",
    "current_span",
    "current_trace_id",
    "ingest_spans",
    "is_enabled",
    "metrics",
    "remote_span_capture",
    "remove_root_hook",
    "remove_span_sink",
    "reset",
    "root_span",
    "span",
    "span_context",
    "spans_snapshot",
    "trace_context",
]

#: Default bound on the in-memory span buffer.
DEFAULT_MAX_SPANS = 65536

#: ``(trace_id, parent_span_id, origin_pid, submitted_wall_time)`` as shipped
#: inside worker job specs.
TraceContext = Tuple[str, str, int, float]


def clock() -> float:
    """The span clock: monotonic seconds (``time.perf_counter``)."""
    return time.perf_counter()


class _ObsConfig:
    """Mutable module-level tracing configuration (one per process)."""

    __slots__ = (
        "enabled",
        "span_metrics",
        "export_dir",
        "profile",
        "profile_dir",
        "jsonl_path",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.span_metrics = True
        self.export_dir: Optional[Path] = None
        self.profile: Optional[str] = None
        self.profile_dir: Optional[Path] = None
        self.jsonl_path: Optional[Path] = None


_CONFIG = _ObsConfig()
_METRICS = MetricsRegistry()
_BUFFER: Deque[Dict[str, Any]] = deque(maxlen=DEFAULT_MAX_SPANS)
#: When set (worker-side job capture), finished spans land here instead of
#: the buffer so the job can ship them back to the coordinator.
_CAPTURE: Optional[List[Dict[str, Any]]] = None
_IDS = itertools.count(1)
_TLS = threading.local()
_WRITE_LOCK = threading.Lock()
_JSONL_HANDLE = None
#: Called with the finished record of every *root* span (exporters hook in
#: here to implement per-run auto-export); never called for child spans.
_ROOT_HOOKS: List[Callable[[Dict[str, Any]], None]] = []
#: Root hooks that survive :func:`reset` (the library's own built-ins, e.g.
#: the exporters' auto-export hook).  Everything else is transient: a hook a
#: server session registered is dropped by ``reset()`` so repeated sessions
#: in one process cannot leak hooks or cross-contaminate trace buffers.
_DURABLE_ROOT_HOOKS: "set[Callable[[Dict[str, Any]], None]]" = set()
#: Called with *every* finished (or ingested) span record, before the root
#: hooks.  Sinks are the incremental feed tail-based samplers index traces
#: from without ever scanning the whole buffer; all sinks are transient.
_SPAN_SINKS: List[Callable[[Dict[str, Any]], None]] = []
#: Only one cProfile session can be active per process.
_PROFILE_ACTIVE = False


def _stack() -> List[Any]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    return stack


def _next_id(kind: str = "s") -> str:
    return f"{os.getpid():x}{kind}{next(_IDS):x}"


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _METRICS


def is_enabled() -> bool:
    """True when span tracing is on in this process."""
    return _CONFIG.enabled


def configure(
    enabled: bool = True,
    *,
    max_spans: int = DEFAULT_MAX_SPANS,
    span_metrics: bool = True,
    jsonl: Optional[Union[str, Path]] = None,
    export_dir: Optional[Union[str, Path]] = None,
    profile: Optional[str] = None,
    profile_dir: Optional[Union[str, Path]] = None,
) -> None:
    """Configure the process-wide observability substrate.

    Parameters
    ----------
    enabled:
        Master switch.  When False every :func:`span` call returns a
        shared no-op context and nothing below applies.
    max_spans:
        Bound on the in-memory span buffer (oldest spans fall off).
    span_metrics:
        Record every finished span's duration into the metrics histogram
        ``span.<name>``.
    jsonl:
        When set, stream every finished span to this JSONL event log.
    export_dir:
        When set, every *root* span (a span with no parent — one service
        batch, one routed batch, one synthesis run) writes a Chrome
        trace-event file, a JSONL event log and a run manifest into this
        directory on completion.
    profile:
        ``fnmatch`` pattern of span names to wrap in :mod:`cProfile`
        (e.g. ``"service.instantiate_batch"`` or ``"synthesis.*"``).
    profile_dir:
        Directory receiving the per-span ``.prof`` dumps (defaults to
        ``export_dir`` or the current directory).
    """
    global _BUFFER, _JSONL_HANDLE
    with _WRITE_LOCK:
        if _JSONL_HANDLE is not None:
            _JSONL_HANDLE.close()
            _JSONL_HANDLE = None
        _CONFIG.enabled = enabled
        _CONFIG.span_metrics = span_metrics
        _CONFIG.export_dir = Path(export_dir) if export_dir is not None else None
        _CONFIG.profile = profile
        _CONFIG.profile_dir = Path(profile_dir) if profile_dir is not None else None
        _CONFIG.jsonl_path = Path(jsonl) if jsonl is not None else None
        if max_spans != (_BUFFER.maxlen or 0):
            _BUFFER = deque(_BUFFER, maxlen=max_spans)
        if enabled and _CONFIG.jsonl_path is not None:
            _CONFIG.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
            _JSONL_HANDLE = _CONFIG.jsonl_path.open("a", encoding="utf-8")


def reset() -> None:
    """Disable tracing, drop buffered spans and zero the metrics registry.

    Transient root hooks and every span sink are dropped too (durable
    built-ins like the exporters' auto-export hook survive), so a fresh
    session never observes a previous session's taps.
    """
    configure(enabled=False)
    _BUFFER.clear()
    _METRICS.reset()
    _ROOT_HOOKS[:] = [hook for hook in _ROOT_HOOKS if hook in _DURABLE_ROOT_HOOKS]
    _SPAN_SINKS.clear()
    stack = getattr(_TLS, "stack", None)
    if stack:
        stack.clear()


class _Anchor:
    """A synthetic parent representing a coordinator-side span in a worker."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Discard attributes (tracing is off)."""
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One live timed operation; use via ``with span("name", **attrs):``."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "start_wall",
        "duration",
        "_start_perf",
        "_profile",
        "_root",
    )

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        root: bool = False,
        trace_id: Optional[str] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.trace_id = trace_id or ""
        self.span_id = _next_id()
        self.parent_id: Optional[str] = None
        self.start_wall = 0.0
        self.duration = 0.0
        self._start_perf = 0.0
        self._profile: Optional[cProfile.Profile] = None
        self._root = root

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        global _PROFILE_ACTIVE
        stack = _stack()
        if self._root:
            # A forced root: starts its own trace even when other spans are
            # live on this thread (concurrent requests interleave awaits on
            # one event-loop thread; each must anchor its own trace).
            if not self.trace_id:
                self.trace_id = _next_id("t")
        elif stack:
            parent = stack[-1]
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = _next_id("t")
        stack.append(self)
        pattern = _CONFIG.profile
        if pattern is not None and not _PROFILE_ACTIVE and fnmatch(self.name, pattern):
            self._profile = cProfile.Profile()
            _PROFILE_ACTIVE = True
            self._profile.enable()
        self.start_wall = time.time()
        self._start_perf = clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _PROFILE_ACTIVE
        self.duration = clock() - self._start_perf
        if self._profile is not None:
            self._profile.disable()
            _PROFILE_ACTIVE = False
            self._dump_profile()
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - exits out of order
            stack.remove(self)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        _finish(self.to_dict())
        return False

    def to_dict(self) -> Dict[str, Any]:
        """The plain-data record of this span (JSON- and pickle-ready)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_wall,
            "duration": self.duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": dict(self.attrs),
        }

    def _dump_profile(self) -> None:
        directory = _CONFIG.profile_dir or _CONFIG.export_dir or Path(".")
        directory.mkdir(parents=True, exist_ok=True)
        safe = self.name.replace("/", "_").replace(".", "_")
        try:
            self._profile.dump_stats(str(directory / f"{safe}-{self.span_id}.prof"))
        except OSError:  # pragma: no cover - disk full / permissions
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Span({self.name!r}, span_id={self.span_id!r})"


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """Start a span named ``name`` (a context manager).

    With tracing disabled this is a single flag check returning a shared
    no-op context; enabled, the span parents onto the thread's current
    span and lands in the in-memory buffer (and the exporters) on exit.
    """
    if not _CONFIG.enabled:
        return _NULL_SPAN
    return Span(name, attrs)


def root_span(
    name: str, trace_id: Optional[str] = None, **attrs: Any
) -> Union[Span, _NullSpan]:
    """Start a span that roots a *new* trace regardless of the live stack.

    The request boundary of a server needs this: concurrent requests
    interleave on one event-loop thread, so stack-based parenting would
    chain unrelated requests together.  ``trace_id`` lets the caller adopt
    an externally supplied identifier (e.g. an ``X-Trace-Id`` header) so
    client- and server-side spans correlate.
    """
    if not _CONFIG.enabled:
        return _NULL_SPAN
    return Span(name, attrs, root=True, trace_id=trace_id)


@contextlib.contextmanager
def anchored(context: Optional[Sequence[Any]]) -> Iterator[None]:
    """Parent spans opened in this block under ``(trace_id, span_id)``.

    The explicit-continuation primitive for work hopping threads or tasks
    inside one process: a server's dispatch task and its executor threads
    pass the originating span's ids here so the service/worker spans they
    open land in the right trace instead of rooting new ones.  ``None``
    (or disabled tracing) is a no-op, keeping untraced paths free.
    """
    if not _CONFIG.enabled or context is None:
        yield
        return
    stack = _stack()
    anchor = _Anchor(str(context[0]), str(context[1]))
    stack.append(anchor)
    try:
        yield
    finally:
        if stack and stack[-1] is anchor:
            stack.pop()
        elif anchor in stack:  # pragma: no cover - interleaved task exits
            stack.remove(anchor)


def span_context(live: Union[Span, _NullSpan, None]) -> Optional[Tuple[str, str]]:
    """The ``(trace_id, span_id)`` continuation tuple of a live span.

    ``None`` for null spans and untraced paths, so callers can thread the
    result straight into :func:`anchored` without flag checks.
    """
    if live is None or not getattr(live, "trace_id", None):
        return None
    return (live.trace_id, live.span_id)  # type: ignore[union-attr]


def current_span() -> Optional[Union[Span, _Anchor]]:
    """The innermost live span on this thread, if any."""
    stack = getattr(_TLS, "stack", None)
    return stack[-1] if stack else None


def current_trace_id() -> Optional[str]:
    """The trace id of the innermost live span, if any."""
    current = current_span()
    return current.trace_id if current is not None else None


def _finish(record: Dict[str, Any]) -> None:
    """Route a finished span record to the buffer, metrics and exporters."""
    capture = _CAPTURE
    if capture is not None:
        capture.append(record)
        return
    _BUFFER.append(record)
    if _CONFIG.span_metrics:
        _METRICS.observe(f"span.{record['name']}", record["duration"])
    handle = _JSONL_HANDLE
    if handle is not None:
        line = json.dumps(record, sort_keys=True, default=str)
        with _WRITE_LOCK:
            handle.write(line + "\n")
            handle.flush()
    if _SPAN_SINKS:
        for sink in list(_SPAN_SINKS):
            sink(record)
    if record["parent_id"] is None and _ROOT_HOOKS:
        for hook in list(_ROOT_HOOKS):
            hook(record)


def add_root_hook(
    hook: Callable[[Dict[str, Any]], None], durable: bool = False
) -> None:
    """Register ``hook`` to run on every finished *root* span record.

    ``durable`` hooks survive :func:`reset` — reserved for the library's
    own built-ins (the exporters' auto-export).  Session-scoped hooks (a
    server's trace sampler) stay transient so ``reset()`` cannot leave a
    stale hook feeding a dead session's buffers.
    """
    if hook not in _ROOT_HOOKS:
        _ROOT_HOOKS.append(hook)
    if durable:
        _DURABLE_ROOT_HOOKS.add(hook)


def remove_root_hook(hook: Callable[[Dict[str, Any]], None]) -> None:
    """Unregister a root hook (idempotent)."""
    if hook in _ROOT_HOOKS:
        _ROOT_HOOKS.remove(hook)
    _DURABLE_ROOT_HOOKS.discard(hook)


def add_span_sink(sink: Callable[[Dict[str, Any]], None]) -> None:
    """Register ``sink`` to run on *every* finished or ingested span record.

    Sinks fire before root hooks, so by the time a trace's root record
    reaches a root hook, every span of that trace has already passed
    through the sinks — the ordering tail-based samplers rely on.
    All sinks are transient: :func:`reset` drops them.
    """
    if sink not in _SPAN_SINKS:
        _SPAN_SINKS.append(sink)


def remove_span_sink(sink: Callable[[Dict[str, Any]], None]) -> None:
    """Unregister a span sink (idempotent)."""
    if sink in _SPAN_SINKS:
        _SPAN_SINKS.remove(sink)


def ingest_spans(records: Sequence[Dict[str, Any]]) -> None:
    """Merge span records produced in another process into this trace.

    Worker-side records already carry the coordinator's trace id and a
    parent pointing at the coordinator span that dispatched the job (see
    :func:`remote_span_capture`), so ingestion is append + bookkeeping.
    """
    for record in records:
        _BUFFER.append(record)
        if _CONFIG.span_metrics:
            _METRICS.observe(f"span.{record['name']}", record["duration"])
        queue_seconds = record.get("attrs", {}).get("queue_seconds")
        if isinstance(queue_seconds, (int, float)):
            _METRICS.observe("pool.queue_seconds", float(queue_seconds))
        handle = _JSONL_HANDLE
        if handle is not None:
            line = json.dumps(record, sort_keys=True, default=str)
            with _WRITE_LOCK:
                handle.write(line + "\n")
                handle.flush()
        if _SPAN_SINKS:
            for sink in list(_SPAN_SINKS):
                sink(record)


def spans_snapshot(trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
    """A copy of the buffered span records (optionally one trace only)."""
    records = list(_BUFFER)
    if trace_id is None:
        return records
    return [record for record in records if record["trace_id"] == trace_id]


def clear_spans() -> None:
    """Drop the buffered spans (metrics and configuration stay)."""
    _BUFFER.clear()


# ---------------------------------------------------------------------- #
# Cross-process propagation
# ---------------------------------------------------------------------- #
def trace_context() -> Optional[TraceContext]:
    """The propagation context a job spec should carry, or ``None``.

    ``None`` when tracing is off or no span is live — job specs stay
    byte-identical to the untraced ones in that case.
    """
    if not _CONFIG.enabled:
        return None
    current = current_span()
    if current is None:
        return None
    return (current.trace_id, current.span_id, os.getpid(), time.time())


@contextlib.contextmanager
def remote_span_capture(
    context: Optional[TraceContext],
) -> Iterator[Optional[List[Dict[str, Any]]]]:
    """Worker-side counterpart of :func:`trace_context`.

    Inside the block, tracing is enabled and every finished span is
    captured into the yielded list — parented under the coordinator span
    named by ``context`` — instead of the worker's own buffer; the job
    returns the list so the coordinator can :func:`ingest_spans` it.

    Yields ``None`` (and changes nothing) when ``context`` is ``None`` or
    when the "worker" is actually the coordinator process running the job
    inline — there the thread-local span stack already parents correctly.
    """
    global _CAPTURE
    if context is None or context[2] == os.getpid():
        yield None
        return
    trace_id, parent_id, _origin_pid, _submitted = context
    previous_enabled = _CONFIG.enabled
    previous_capture = _CAPTURE
    captured: List[Dict[str, Any]] = []
    stack = _stack()
    anchor = _Anchor(trace_id, parent_id)
    _CONFIG.enabled = True
    _CAPTURE = captured
    stack.append(anchor)
    try:
        yield captured
    finally:
        if stack and stack[-1] is anchor:
            stack.pop()
        elif anchor in stack:  # pragma: no cover - unbalanced exits
            stack.remove(anchor)
        _CAPTURE = previous_capture
        _CONFIG.enabled = previous_enabled
