"""Shard-affinity routing: send each batch to the worker that owns it.

The PR 5 registry shards structures by fingerprint prefix, and the PR 7
server fans batches across a process pool — but shard-blind: any worker
may answer any circuit, so every worker ends up loading every structure,
and a coalesced batch barriers on the slowest of N IPC round trips.

:class:`AffinityRouter` closes that gap.  It maps a circuit's registry
key through the :class:`~repro.parallel.sharding.ShardOwnerMap` to the
one worker slot that owns the circuit's shard, and the server pins the
whole sub-batch there (``instantiate_batch(pin_slot=...)``): one IPC
round trip to a process whose structure cache, memo table, and shard
index are already warm.  Mixed batches split by shard *before* fan-out
(the :class:`~repro.serve.batcher.MicroBatcher` sub-batch plan), so a
fast shard's requests resolve without waiting for a slow shard's.

Routing decisions are cached per circuit object; recording is
thread-safe because dispatches land on executor threads.  Everything the
router observes is exposed twice: ``serve.affinity.*`` metrics (hit/miss
counters and per-shard latency histograms) and a structured
:meth:`stats` payload for ``/debug/statusz``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.parallel.sharding import (
    DEFAULT_SHARD_CHARS,
    ShardedStructureRegistry,
    ShardOwnerMap,
)
from repro.service.engine import PlacementService
from repro.service.fingerprint import structure_key


@dataclass(frozen=True)
class AffinityDecision:
    """Where one circuit's work goes: its shard prefix and owner slot.

    ``slot`` is ``None`` when affinity is inactive (no registry, a single
    worker, or disabled by config) — the dispatch then takes the
    shard-blind path and counts as an affinity *miss*.
    """

    key: str
    shard: str
    slot: Optional[int]

    @property
    def pinned(self) -> bool:
        """True when the dispatch is routed to a dedicated owner slot."""
        return self.slot is not None


class AffinityRouter:
    """Route circuits to the worker slots that own their registry shards.

    Parameters
    ----------
    service:
        The placement service whose registry defines the shard layout.
        A :class:`ShardedStructureRegistry` contributes its persisted
        ``shard_chars``; a flat registry gets *virtual* shards over the
        same fingerprint prefix (the owner map works identically).
    workers:
        The server's ``service_workers`` process fan-out; affinity needs
        more than one worker to mean anything.
    metrics:
        Registry receiving ``serve.affinity.*`` counters and per-shard
        latency histograms.
    enabled:
        Master switch (``ServerConfig.affinity``); when off every
        dispatch takes the shard-blind path.
    """

    def __init__(
        self,
        service: PlacementService,
        workers: Optional[int],
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ) -> None:
        self._service = service
        self._workers = int(workers) if workers else 0
        self._enabled = enabled
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        registry = service.registry
        shard_chars = DEFAULT_SHARD_CHARS
        if isinstance(registry, ShardedStructureRegistry):
            shard_chars = registry.shard_chars
        self._owner_map = ShardOwnerMap(
            workers=max(1, self._workers), shard_chars=shard_chars
        )
        #: id(circuit) -> (circuit, decision); the strong reference keeps
        #: the id stable for the entry's lifetime (same trick the server's
        #: batcher map used).
        self._decisions: Dict[int, Tuple[Any, AffinityDecision]] = {}
        self._lock = threading.Lock()
        self._shard_stats: Dict[str, Dict[str, float]] = {}

    @property
    def active(self) -> bool:
        """True when dispatches are actually pinned to owner slots."""
        return (
            self._enabled
            and self._workers > 1
            and self._service.registry is not None
        )

    @property
    def owner_map(self) -> ShardOwnerMap:
        """The deterministic shard → slot assignment in force."""
        return self._owner_map

    def route(self, circuit: Any, config: Optional[Any] = None) -> AffinityDecision:
        """The (cached) routing decision for ``circuit``.

        ``config`` defaults to the service's default generation config so
        the computed key matches what the dispatch path will look up.
        """
        entry = self._decisions.get(id(circuit))
        if entry is not None:
            return entry[1]
        key = structure_key(
            circuit, config if config is not None else self._service.default_config
        )
        shard = self._owner_map.prefix_for(key)
        slot = self._owner_map.owner_for(shard) if self.active else None
        decision = AffinityDecision(key=key, shard=shard, slot=slot)
        with self._lock:
            self._decisions[id(circuit)] = (circuit, decision)
        return decision

    # ------------------------------------------------------------------ #
    # Batch planning
    # ------------------------------------------------------------------ #
    def subbatch_plan(
        self, items: Sequence[Any]
    ) -> List[Tuple[Optional[str], List[int]]]:
        """The MicroBatcher plan: coalesced items grouped by shard owner.

        Items are the server's ``_BatchItem``s, each stamped with the
        shard prefix of its circuit at submit time; items of one circuit
        always share a group (one ``instantiate_batch`` call), and each
        group dispatches to its own shard owner concurrently.
        """
        order: List[int] = []
        groups: Dict[int, Tuple[Optional[str], List[int]]] = {}
        for index, item in enumerate(items):
            circuit_id = id(getattr(item, "circuit", None))
            entry = groups.get(circuit_id)
            if entry is None:
                entry = (getattr(item, "shard", None), [])
                groups[circuit_id] = entry
                order.append(circuit_id)
            entry[1].append(index)
        return [groups[circuit_id] for circuit_id in order]

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def record(self, decision: AffinityDecision, seconds: float) -> None:
        """Account one dispatch routed under ``decision`` (thread-safe)."""
        if decision.pinned:
            self._metrics.inc("serve.affinity.hits")
        else:
            self._metrics.inc("serve.affinity.misses")
        self._metrics.observe(
            f"serve.affinity.shard.{decision.shard}.seconds", seconds
        )
        with self._lock:
            stats = self._shard_stats.get(decision.shard)
            if stats is None:
                stats = {
                    "slot": float(decision.slot) if decision.pinned else -1.0,
                    "dispatches": 0.0,
                    "total_seconds": 0.0,
                    "max_seconds": 0.0,
                }
                self._shard_stats[decision.shard] = stats
            stats["dispatches"] += 1
            stats["total_seconds"] += seconds
            stats["max_seconds"] = max(stats["max_seconds"], seconds)

    def stats(self) -> Dict[str, Any]:
        """The router's state for ``/debug/statusz``."""
        snapshot = self._metrics.snapshot()
        with self._lock:
            shards = {
                shard: {
                    "slot": int(stats["slot"]),
                    "dispatches": int(stats["dispatches"]),
                    "mean_seconds": (
                        round(stats["total_seconds"] / stats["dispatches"], 6)
                        if stats["dispatches"]
                        else 0.0
                    ),
                    "max_seconds": round(stats["max_seconds"], 6),
                }
                for shard, stats in self._shard_stats.items()
            }
        return {
            "enabled": self._enabled,
            "active": self.active,
            "workers": self._workers,
            "shard_chars": self._owner_map.shard_chars,
            "hits": float(snapshot.get("serve.affinity.hits", 0)),
            "misses": float(snapshot.get("serve.affinity.misses", 0)),
            "shards": shards,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"AffinityRouter(active={self.active}, workers={self._workers}, "
            f"shard_chars={self._owner_map.shard_chars})"
        )
