"""Micro-batching: coalesce concurrent requests into one batched call.

The entire value of the service stack — dedup, memoization, shard-affine
process fan-out — unlocks on *batches*, but HTTP clients send requests one
at a time.  :class:`MicroBatcher` bridges the two: requests submitted
within a small time window (or up to a maximum batch size) coalesce into
one dispatch, so a thousand concurrent ``/place`` calls for the same
topology become a handful of ``instantiate_batch`` calls instead of a
thousand single-query round trips.

Semantics the tests pin down:

* **Exactly-once dispatch** — every submitted item lands in exactly one
  dispatched batch (or fails without dispatching); the pending list is
  only touched from the event loop, so there is no window in which two
  flushes could both claim an item.
* **Overflow splitting** — when submissions outrun ``max_batch``, the
  batcher dispatches a full batch immediately and re-arms the window for
  the remainder; nothing waits behind an already-full batch.
* **Deadlines and cancellation** — items whose deadline expired while
  queued are failed with :class:`~repro.serve.protocol.DeadlineExceeded`
  *before* dispatch, and items whose futures were cancelled are silently
  dropped; neither consumes dispatch work.
* **Complete drain** — ``flush()`` and ``close()`` loop until the pending
  list is empty (an overflow backlog flushes as several batches), and a
  closed batcher never re-arms a coalesce window: every submitted future
  resolves before ``close()`` returns.
* **Sub-batch plans** — with a ``plan``, a dispatched batch splits into
  per-shard groups that dispatch concurrently; each group's futures
  resolve as that group lands and a failing group fails only its own
  items.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import DeadlineExceeded

#: Dispatch callable: a list of coalesced items to one awaited result list.
DispatchFn = Callable[[List[Any]], Awaitable[Sequence[Any]]]

#: Sub-batch planner: the coalesced items to ``(label, indices)`` groups.
#: Labels are opaque (the server uses shard prefixes); indices refer to the
#: dispatched item list and should partition it.
PlanFn = Callable[[List[Any]], Sequence[Tuple[Optional[str], Sequence[int]]]]


@dataclass
class _Pending:
    """One submitted item waiting for its batch."""

    item: Any
    future: "asyncio.Future[Any]"
    #: Absolute event-loop time after which the item must not dispatch.
    deadline: Optional[float]
    enqueued_at: float


class MicroBatcher:
    """Coalesce single submissions into batched dispatches.

    Parameters
    ----------
    dispatch:
        Async callable receiving the coalesced items (in submission order)
        and returning one result per item, same order.  A raised exception
        fails every item of that batch.
    window_seconds:
        How long the first item of a batch may wait for company.
    max_batch:
        Dispatch immediately once this many items are pending.
    name:
        Metric label (``serve.batcher.<name>.*``).
    metrics:
        Registry receiving the batcher's counters and histograms
        (defaults to a private one; the server passes its own).
    plan:
        Optional sub-batch planner.  When a dispatched batch splits into
        more than one ``(label, indices)`` group, each group dispatches as
        its own concurrent sub-batch: a group's futures resolve as soon as
        *that group's* dispatch lands (streamed partial results), and a
        failing group fails only its own items.  Indices the plan misses
        form a trailing unlabeled group, so a buggy plan degrades to an
        extra sub-batch rather than stranded futures.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        window_seconds: float = 0.004,
        max_batch: int = 64,
        name: str = "default",
        metrics: Optional[MetricsRegistry] = None,
        plan: Optional[PlanFn] = None,
    ) -> None:
        if window_seconds < 0:
            raise ValueError("window_seconds must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._dispatch = dispatch
        self._plan = plan
        self._window = window_seconds
        self._max_batch = max_batch
        self._name = name
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._pending: List[_Pending] = []
        self._window_task: Optional["asyncio.Task[None]"] = None
        self._dispatch_tasks: "set[asyncio.Task[None]]" = set()
        self._closed = False
        self._batch_ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def window_seconds(self) -> float:
        """The coalescing window."""
        return self._window

    @property
    def max_batch(self) -> int:
        """Largest batch one dispatch may carry."""
        return self._max_batch

    @property
    def queued(self) -> int:
        """Items currently waiting for a batch."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; further submissions raise."""
        return self._closed

    def _metric(self, suffix: str) -> str:
        return f"serve.batcher.{self._name}.{suffix}"

    def stats(self) -> Dict[str, float]:
        """The batcher's counters as a plain dict."""
        snapshot = self._metrics.snapshot()
        prefix = self._metric("")
        return {
            key[len(prefix) :]: value
            for key, value in snapshot.items()
            if key.startswith(prefix) and isinstance(value, (int, float))
        }

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def submit(self, item: Any, deadline: Optional[float] = None) -> Any:
        """Queue ``item`` for the next batch and await its result.

        ``deadline`` is an absolute event-loop time (``loop.time()``
        basis); expired items fail with :class:`DeadlineExceeded` instead
        of dispatching.  Cancelling the awaiting task drops the item from
        its batch.
        """
        if self._closed:
            raise RuntimeError(f"MicroBatcher {self._name!r} is closed")
        loop = asyncio.get_running_loop()
        pending = _Pending(
            item=item,
            future=loop.create_future(),
            deadline=deadline,
            enqueued_at=loop.time(),
        )
        self._pending.append(pending)
        self._metrics.inc(self._metric("submitted"))
        self._metrics.set_gauge(self._metric("queue_depth"), len(self._pending))
        if len(self._pending) >= self._max_batch:
            self._flush_now(reason="full")
        elif self._window_task is None:
            self._window_task = loop.create_task(self._window_flush())
        return await pending.future

    async def flush(self) -> None:
        """Dispatch whatever is pending immediately (drain helper).

        Loops until the pending list is empty: an overflow backlog of more
        than ``max_batch`` items flushes as several batches rather than
        leaving a remainder behind a fresh window.
        """
        while self._pending:
            self._flush_now(reason="flush")
        await self._drain_dispatches()

    async def close(self) -> None:
        """Flush pending items, wait for in-flight dispatches, then refuse work."""
        self._closed = True
        if self._window_task is not None:
            self._window_task.cancel()
            self._window_task = None
        # Loop: one _flush_now claims at most max_batch items, and a
        # closed batcher must not re-arm a window for the remainder — a
        # timer firing after close() returns would strand its futures.
        while self._pending:
            self._flush_now(reason="close")
        await self._drain_dispatches()

    async def _drain_dispatches(self) -> None:
        while self._dispatch_tasks:
            await asyncio.gather(*tuple(self._dispatch_tasks), return_exceptions=True)

    # ------------------------------------------------------------------ #
    # Flushing
    # ------------------------------------------------------------------ #
    async def _window_flush(self) -> None:
        try:
            await asyncio.sleep(self._window)
        except asyncio.CancelledError:
            raise
        self._window_task = None
        if self._pending:
            self._flush_now(reason="window")
        else:
            # Every queued item was cancelled (and reaped) before the
            # window closed: an empty flush, nothing dispatches.
            self._metrics.inc(self._metric("empty_flushes"))

    def _flush_now(self, reason: str) -> None:
        """Claim up to ``max_batch`` pending items and dispatch them.

        Synchronous from claim to task creation: once an item leaves
        ``self._pending`` it belongs to exactly one dispatch task.
        """
        if self._window_task is not None:
            self._window_task.cancel()
            self._window_task = None
        batch = self._pending[: self._max_batch]
        self._pending = self._pending[self._max_batch :]
        self._metrics.set_gauge(self._metric("queue_depth"), len(self._pending))
        if self._pending:
            # Overflow split: the remainder starts a fresh window rather
            # than waiting behind the full batch being dispatched.  Once
            # closed there is no next window — close()/flush() loop until
            # the remainder is claimed instead.
            self._metrics.inc(self._metric("overflow_splits"))
            if not self._closed:
                self._window_task = asyncio.get_running_loop().create_task(
                    self._window_flush()
                )
        if not batch:
            self._metrics.inc(self._metric("empty_flushes"))
            return
        task = asyncio.get_running_loop().create_task(self._run_batch(batch, reason))
        self._dispatch_tasks.add(task)
        task.add_done_callback(self._dispatch_tasks.discard)

    async def _run_batch(self, batch: List[_Pending], reason: str) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: List[_Pending] = []
        for pending in batch:
            if pending.future.cancelled():
                self._metrics.inc(self._metric("cancelled"))
                continue
            if pending.deadline is not None and now >= pending.deadline:
                pending.future.set_exception(
                    DeadlineExceeded(
                        "request deadline expired after "
                        f"{now - pending.enqueued_at:.3f}s in the coalesce queue"
                    )
                )
                self._metrics.inc(self._metric("expired"))
                continue
            live.append(pending)
        if not live:
            self._metrics.inc(self._metric("empty_flushes"))
            return
        batch_id = f"{self._name}#{next(self._batch_ids)}"
        for pending in live:
            # Duck-typed: items that care about batch identity (the
            # server's _BatchItem, for tracing and access logs) expose
            # ``on_batch``; plain payloads don't and are left alone.
            on_batch = getattr(pending.item, "on_batch", None)
            if on_batch is not None:
                on_batch(batch_id, len(live))
        self._metrics.inc(self._metric("batches"))
        self._metrics.inc(self._metric(f"flushes_{reason}"))
        self._metrics.inc(self._metric("items"), len(live))
        self._metrics.observe(
            self._metric("fill_ratio"), len(live) / self._max_batch
        )
        if self._window > 0:
            # How much of the coalesce window the batch actually used —
            # ~1.0 means the window is the bottleneck, ~0.0 means batches
            # fill (or flush) long before it closes.
            oldest = min(pending.enqueued_at for pending in live)
            self._metrics.observe(
                self._metric("window_utilization"),
                min((now - oldest) / self._window, 1.0),
            )
        groups = self._plan_groups(live)
        if groups is None:
            await self._dispatch_group(live)
            return
        # Shard-affine split: each group dispatches concurrently, and a
        # group's futures resolve the moment its own dispatch lands — a
        # fast shard's callers never wait for the slowest shard.
        self._metrics.inc(self._metric("subbatch_splits"))
        self._metrics.inc(self._metric("subbatches"), len(groups))
        await asyncio.gather(
            *(self._dispatch_group(members) for _label, members in groups)
        )

    def _plan_groups(
        self, live: List[_Pending]
    ) -> Optional[List[Tuple[Optional[str], List[_Pending]]]]:
        """Split ``live`` into sub-batch groups, or ``None`` for one dispatch.

        Defensive by construction: out-of-range or duplicate indices are
        ignored, indices the plan never mentions collect into a trailing
        unlabeled group, and a raising plan falls back to a single batch —
        a bad plan may cost affinity, never a stranded future.
        """
        if self._plan is None or len(live) <= 1:
            return None
        try:
            planned = self._plan([pending.item for pending in live])
        except Exception:  # noqa: BLE001 - planning is best-effort
            self._metrics.inc(self._metric("plan_errors"))
            return None
        groups: List[Tuple[Optional[str], List[_Pending]]] = []
        seen: set[int] = set()
        for label, indices in planned:
            members: List[_Pending] = []
            for index in indices:
                if 0 <= index < len(live) and index not in seen:
                    seen.add(index)
                    members.append(live[index])
            if members:
                groups.append((label, members))
        leftover = [live[i] for i in range(len(live)) if i not in seen]
        if leftover:
            groups.append((None, leftover))
        if len(groups) <= 1:
            return None
        return groups

    async def _dispatch_group(self, group: List[_Pending]) -> None:
        """Dispatch one (sub-)batch and resolve exactly its futures."""
        try:
            results = await self._dispatch([pending.item for pending in group])
        except Exception as exc:  # noqa: BLE001 - failures propagate per item
            self._metrics.inc(self._metric("failed_batches"))
            for pending in group:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        if len(results) != len(group):
            mismatch = RuntimeError(
                f"batch dispatch returned {len(results)} results for {len(group)} items"
            )
            for pending in group:
                if not pending.future.done():
                    pending.future.set_exception(mismatch)
            return
        for pending, result in zip(group, results):
            if not pending.future.done():
                pending.future.set_result(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MicroBatcher(name={self._name!r}, window={self._window * 1000:.1f}ms, "
            f"max_batch={self._max_batch}, queued={len(self._pending)})"
        )
