"""Per-tenant token-bucket quotas keyed by the ``X-Tenant`` header.

Admission control (:mod:`repro.serve.admission`) protects the *server*;
quotas protect tenants from each other.  Each tenant draws query tokens
from its own :class:`TokenBucket` — ``rate`` tokens per second refill up
to a ``burst`` ceiling — so a tenant replaying a synthesis sweep at full
speed exhausts its own bucket (429 + ``Retry-After``) while every other
tenant keeps its full allotment.

Buckets are lazy (created on a tenant's first request) and the clock is
injectable, so tests drive time explicitly instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import QuotaExceeded

Clock = Callable[[], float]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second up to ``burst``."""

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_clock")

    def __init__(self, rate: float, burst: float, clock: Clock = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now

    @property
    def tokens(self) -> float:
        """Tokens available right now."""
        self._refill()
        return self._tokens

    def try_take(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; return 0.0 on success, else seconds to wait.

        A ``cost`` above ``burst`` can never succeed outright; such
        requests are charged the full burst instead (they drain the bucket
        to zero) so oversized batches are throttled, not banned forever.
        """
        self._refill()
        charge = min(float(cost), self.burst)
        if self._tokens >= charge:
            self._tokens -= charge
            return 0.0
        return (charge - self._tokens) / self.rate


class TenantQuotas:
    """Lazy per-tenant token buckets with throttle accounting.

    Parameters
    ----------
    rate:
        Queries/second each tenant may sustain.  ``None`` disables
        quotas entirely (every check passes).
    burst:
        Bucket capacity (defaults to ``2 * rate``, minimum 1).
    overrides:
        Optional ``{tenant: (rate, burst)}`` exceptions to the default.
    metrics:
        Registry receiving ``serve.quota.*`` counters.
    clock:
        Injectable time source (tests pass a fake).
    """

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        overrides: Optional[Dict[str, tuple]] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self._rate = rate
        self._burst = burst
        self._overrides = dict(overrides) if overrides else {}
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._throttled: Dict[str, int] = {}
        self._granted: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """True when a default rate (or any override) is configured."""
        return self._rate is not None or bool(self._overrides)

    def _bucket_for(self, tenant: str) -> Optional[TokenBucket]:
        bucket = self._buckets.get(tenant)
        if bucket is not None:
            return bucket
        if tenant in self._overrides:
            rate, burst = self._overrides[tenant]
        elif self._rate is not None:
            rate = self._rate
            burst = self._burst if self._burst is not None else max(1.0, 2 * self._rate)
        else:
            return None
        bucket = TokenBucket(rate, burst, clock=self._clock)
        self._buckets[tenant] = bucket
        return bucket

    def check(self, tenant: str, cost: float = 1.0) -> None:
        """Charge ``tenant`` for ``cost`` queries or raise :class:`QuotaExceeded`."""
        bucket = self._bucket_for(tenant)
        if bucket is None:
            return
        wait = bucket.try_take(cost)
        if wait > 0.0:
            self._throttled[tenant] = self._throttled.get(tenant, 0) + 1
            self._metrics.inc("serve.quota.throttled")
            raise QuotaExceeded(
                f"tenant {tenant!r} exceeded its quota "
                f"({bucket.rate:g} queries/s, burst {bucket.burst:g})",
                retry_after=wait,
            )
        self._granted[tenant] = self._granted.get(tenant, 0) + 1
        self._metrics.inc("serve.quota.granted")

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant accounting: granted / throttled / tokens remaining."""
        tenants = sorted({*self._granted, *self._throttled, *self._buckets})
        return {
            tenant: {
                "granted": float(self._granted.get(tenant, 0)),
                "throttled": float(self._throttled.get(tenant, 0)),
                "tokens": (
                    round(self._buckets[tenant].tokens, 3)
                    if tenant in self._buckets
                    else float("inf")
                ),
            }
            for tenant in tenants
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = f"rate={self._rate!r}" if self.enabled else "disabled"
        return f"TenantQuotas({state}, tenants={len(self._buckets)})"
