"""Admission control: a bounded inflight budget that sheds load early.

A placement server that queues without bound converts overload into
unbounded latency — every request eventually answers, seconds too late to
matter.  :class:`AdmissionController` inverts that: the server admits at
most ``max_inflight`` queries at a time and *sheds* the rest immediately
with a 429 and a ``Retry-After`` hint, so clients back off instead of
piling on.  The hint tracks an exponentially weighted average of recent
request service time — when batches slow down, rejected clients are told
to stay away longer.

The controller is event-loop affine: all mutation happens on the server's
asyncio thread, so plain integers suffice (no locks on the hot path).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import Overloaded

#: Smoothing factor of the service-time EWMA behind ``Retry-After``.
EWMA_ALPHA = 0.2
#: Floor for the Retry-After hint (seconds); never tell a client "now".
MIN_RETRY_AFTER = 0.05


class AdmissionTicket:
    """Proof of admission; release it exactly once when the work finishes."""

    __slots__ = ("_controller", "_cost", "_released")

    def __init__(self, controller: "AdmissionController", cost: int) -> None:
        self._controller = controller
        self._cost = cost
        self._released = False

    @property
    def cost(self) -> int:
        """How many inflight slots this ticket holds."""
        return self._cost

    def release(self) -> None:
        """Return the slots (idempotent)."""
        if not self._released:
            self._released = True
            self._controller._release(self._cost)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class AdmissionController:
    """Bounded inflight-query budget with load shedding.

    Parameters
    ----------
    max_inflight:
        Total query cost admitted at once (a batch of 32 costs 32).
    base_retry_after:
        Retry-After hint before any service time has been observed.
    metrics:
        Registry receiving ``serve.admission.*`` counters and gauges.
    """

    def __init__(
        self,
        max_inflight: int = 256,
        base_retry_after: float = 0.1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self._max_inflight = max_inflight
        self._inflight = 0
        self._service_time_ewma = base_retry_after
        # The EWMA starts as a synthetic hint, not an observation; blending
        # the first real sample with it would skew Retry-After until enough
        # samples wash the seed out.
        self._ewma_observed = False
        self._metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def max_inflight(self) -> int:
        """The admission bound."""
        return self._max_inflight

    @property
    def inflight(self) -> int:
        """Query cost currently admitted."""
        return self._inflight

    @property
    def idle(self) -> bool:
        """True when no admitted work remains (the drain condition)."""
        return self._inflight == 0

    def retry_after(self) -> float:
        """Current backoff hint for shed requests (seconds).

        Scales with how much admitted work a newcomer queues behind: a
        full inflight window means roughly one window's worth of service
        time before capacity frees up.
        """
        backlog_factor = max(1.0, self._inflight / max(1, self._max_inflight))
        return max(MIN_RETRY_AFTER, self._service_time_ewma * backlog_factor)

    def admit(self, cost: int = 1) -> AdmissionTicket:
        """Admit ``cost`` queries or raise :class:`Overloaded` (429).

        An oversized request (``cost > max_inflight``) is still admitted
        when the server is otherwise idle — rejecting it forever would be
        a livelock — but only one such request runs at a time.
        """
        if self._inflight > 0 and self._inflight + cost > self._max_inflight:
            self._metrics.inc("serve.admission.shed")
            self._metrics.inc("serve.admission.shed_cost", cost)
            raise Overloaded(
                f"inflight budget full ({self._inflight}/{self._max_inflight} "
                f"+ {cost} requested)",
                retry_after=self.retry_after(),
            )
        self._inflight += cost
        self._metrics.inc("serve.admission.admitted")
        self._metrics.inc("serve.admission.admitted_cost", cost)
        self._metrics.set_gauge("serve.admission.inflight", self._inflight)
        return AdmissionTicket(self, cost)

    def observe_service_time(self, seconds: float) -> None:
        """Feed one request's service time into the Retry-After estimate.

        The first observation *replaces* the synthetic ``base_retry_after``
        seed; later ones blend in with :data:`EWMA_ALPHA`.
        """
        if not self._ewma_observed:
            self._ewma_observed = True
            self._service_time_ewma = seconds
            return
        self._service_time_ewma += EWMA_ALPHA * (seconds - self._service_time_ewma)

    def _release(self, cost: int) -> None:
        self._inflight = max(0, self._inflight - cost)
        self._metrics.set_gauge("serve.admission.inflight", self._inflight)

    def stats(self) -> Dict[str, float]:
        """Counters as a plain dict (``admitted`` / ``shed`` / ``inflight``)."""
        snapshot = self._metrics.snapshot()
        return {
            "admitted": float(snapshot.get("serve.admission.admitted", 0)),
            "admitted_cost": float(snapshot.get("serve.admission.admitted_cost", 0)),
            "shed": float(snapshot.get("serve.admission.shed", 0)),
            "shed_cost": float(snapshot.get("serve.admission.shed_cost", 0)),
            "inflight": float(self._inflight),
            "max_inflight": float(self._max_inflight),
            "retry_after_seconds": self.retry_after(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"AdmissionController(inflight={self._inflight}/{self._max_inflight})"
        )
