"""In-process server harness and a minimal blocking HTTP client.

Tests and benchmarks need a real server — real sockets, real coalescing,
real backpressure — without shelling out to a subprocess.
:class:`ServerHarness` runs a :class:`~repro.serve.server.PlacementServer`
on its own event loop in a daemon thread, bound to an ephemeral port, and
hands back :class:`ServeClient` instances (persistent keep-alive
``http.client`` connections) to fire traffic at it.  ``stop()`` runs the
same graceful drain SIGTERM does, so the zero-lost-requests guarantee is
exercised by every harness teardown.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.serve.protocol import (
    DEADLINE_HEADER,
    REQUEST_ID_HEADER,
    TENANT_HEADER,
    TRACE_ID_HEADER,
)
from repro.serve.server import PlacementServer, ServerConfig
from repro.service.engine import PlacementService


@dataclass
class ServeResponse:
    """One client-observed response: status, parsed body, headers."""

    status: int
    payload: Any
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True for a 200."""
        return self.status == 200

    @property
    def retry_after(self) -> Optional[float]:
        """The ``Retry-After`` hint in seconds, when present."""
        raw = self.headers.get("retry-after")
        return float(raw) if raw is not None else None

    @property
    def request_id(self) -> Optional[str]:
        """The server-stamped ``X-Request-Id``, for trace correlation."""
        return self.headers.get("x-request-id")


@dataclass
class StreamChunk:
    """One streamed ``/place_batch`` chunk and when the client saw it.

    ``arrived_seconds`` is measured from just before the request was
    written, so chunk timestamps are directly comparable: a fast shard's
    chunk landing well before a slow shard's proves partial results
    really stream.
    """

    payload: Dict[str, Any]
    arrived_seconds: float

    @property
    def done(self) -> bool:
        """True for the trailing summary chunk."""
        return bool(self.payload.get("done"))

    @property
    def shard(self) -> Optional[str]:
        """The shard prefix this chunk's results belong to."""
        return self.payload.get("shard")


class ServeClient:
    """A blocking JSON client over one persistent keep-alive connection.

    Never raises on non-200 statuses — backpressure (429/503/504) is a
    *response*, not an exception, so load generators count outcomes
    instead of unwinding.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        self._host = host
        self._port = port
        self._tenant = tenant
        self._timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._connection

    def close(self) -> None:
        """Drop the underlying connection (the next request reconnects)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        deadline_ms: Optional[float] = None,
        request_id: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> ServeResponse:
        """One round trip; retries once on a dropped keep-alive connection.

        ``request_id``/``trace_id`` ride as ``X-Request-Id``/``X-Trace-Id``
        so the caller can correlate against server-side traces; the server
        echoes the (possibly minted) id back in every response.
        """
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers: Dict[str, str] = {}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if self._tenant is not None:
            headers[TENANT_HEADER] = self._tenant
        if deadline_ms is not None:
            headers[DEADLINE_HEADER] = str(deadline_ms)
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = request_id
        if trace_id is not None:
            headers[TRACE_ID_HEADER] = trace_id
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                raw = connection.getresponse()
                data = raw.read()
                break
            except (http.client.RemoteDisconnected, OSError):
                # The server closed the idle keep-alive connection between
                # requests (or the socket died under us); reconnect once
                # before giving up.
                self.close()
                if attempt == 2:
                    raise
        response_headers = {name.lower(): value for name, value in raw.getheaders()}
        content_type = response_headers.get("content-type", "")
        parsed: Any = data.decode("utf-8", errors="replace")
        if content_type.startswith("application/json") and data:
            parsed = json.loads(data)
        if response_headers.get("connection", "").lower() == "close":
            self.close()
        return ServeResponse(status=raw.status, payload=parsed, headers=response_headers)

    # ------------------------------------------------------------------ #
    # Endpoint helpers
    # ------------------------------------------------------------------ #
    def place(
        self,
        circuit: Any,
        dims: Sequence[Sequence[int]],
        deadline_ms: Optional[float] = None,
    ) -> ServeResponse:
        """POST ``/place`` for one dimension vector."""
        return self.request(
            "POST",
            "/place",
            {"circuit": circuit, "dims": [list(pair) for pair in dims]},
            deadline_ms=deadline_ms,
        )

    def place_batch(
        self,
        circuit: Any,
        dims_batch: Sequence[Sequence[Sequence[int]]],
        deadline_ms: Optional[float] = None,
    ) -> ServeResponse:
        """POST ``/place_batch`` for a client-assembled batch."""
        return self.request(
            "POST",
            "/place_batch",
            {
                "circuit": circuit,
                "dims_batch": [[list(pair) for pair in dims] for dims in dims_batch],
            },
            deadline_ms=deadline_ms,
        )

    def place_queries(
        self,
        queries: Sequence[Dict[str, Any]],
        deadline_ms: Optional[float] = None,
    ) -> ServeResponse:
        """POST ``/place_batch`` in the mixed-circuit ``queries`` form.

        Each query is ``{"circuit": ..., "dims": [[w, h], ...]}``; the
        server groups them by shard before fan-out and reports per-shard
        timings in the response's ``shards`` list.
        """
        return self.request(
            "POST",
            "/place_batch",
            {"queries": list(queries)},
            deadline_ms=deadline_ms,
        )

    def place_batch_stream(
        self,
        queries: Sequence[Dict[str, Any]],
        deadline_ms: Optional[float] = None,
    ) -> List[StreamChunk]:
        """POST ``/place_batch`` with ``stream=true``; collect all chunks.

        Convenience over :meth:`iter_place_batch_stream` for callers that
        want the full chunk list (with arrival times) rather than
        incremental consumption.
        """
        return list(self.iter_place_batch_stream(queries, deadline_ms=deadline_ms))

    def iter_place_batch_stream(
        self,
        queries: Sequence[Dict[str, Any]],
        deadline_ms: Optional[float] = None,
    ) -> Iterator[StreamChunk]:
        """Stream ``/place_batch`` results, yielding chunks as they land.

        The server answers with chunked ndjson: one JSON line per shard
        sub-batch as it completes, then a ``{"done": true}`` summary.
        ``http.client`` decodes the chunked framing transparently, so each
        ``readline()`` returns exactly one shard's payload the moment the
        server flushes it.  Non-200 responses yield a single synthetic
        chunk carrying the error payload.
        """
        body = json.dumps({"queries": list(queries), "stream": True}).encode("utf-8")
        headers: Dict[str, str] = {"Content-Type": "application/json"}
        if self._tenant is not None:
            headers[TENANT_HEADER] = self._tenant
        if deadline_ms is not None:
            headers[DEADLINE_HEADER] = str(deadline_ms)
        started = time.monotonic()
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request("POST", "/place_batch", body=body, headers=headers)
                raw = connection.getresponse()
                break
            except (http.client.RemoteDisconnected, OSError):
                self.close()
                if attempt == 2:
                    raise
        if raw.status != 200:
            data = raw.read()
            try:
                payload = json.loads(data) if data else {}
            except ValueError:
                payload = {"error": data.decode("utf-8", errors="replace")}
            payload.setdefault("status", raw.status)
            yield StreamChunk(
                payload=payload, arrived_seconds=time.monotonic() - started
            )
            return
        while True:
            line = raw.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            chunk = StreamChunk(
                payload=json.loads(line),
                arrived_seconds=time.monotonic() - started,
            )
            yield chunk
            if chunk.done:
                break
        # Drain any trailing bytes so the keep-alive connection stays
        # usable for the next request.
        raw.read()

    def route(
        self,
        circuit: Any,
        dims: Sequence[Sequence[int]],
        deadline_ms: Optional[float] = None,
    ) -> ServeResponse:
        """POST ``/route`` for one dimension vector."""
        return self.request(
            "POST",
            "/route",
            {"circuit": circuit, "dims": [list(pair) for pair in dims]},
            deadline_ms=deadline_ms,
        )

    def healthz(self) -> ServeResponse:
        """GET ``/healthz``."""
        return self.request("GET", "/healthz")

    def metrics(self) -> ServeResponse:
        """GET ``/metrics`` (Prometheus text)."""
        return self.request("GET", "/metrics")

    def statusz(self) -> ServeResponse:
        """GET ``/debug/statusz`` (uptime, config, SLO burn, subsystems)."""
        return self.request("GET", "/debug/statusz")

    def tracez(
        self, trace_id: Optional[str] = None, fmt: Optional[str] = None
    ) -> ServeResponse:
        """GET ``/debug/tracez``: summaries, or one trace's spans.

        ``fmt="chrome"`` (with a ``trace_id``) returns Chrome trace-event
        JSON loadable in ``chrome://tracing`` / Perfetto.
        """
        path = "/debug/tracez"
        params = []
        if trace_id is not None:
            params.append(f"trace_id={trace_id}")
        if fmt is not None:
            params.append(f"fmt={fmt}")
        if params:
            path += "?" + "&".join(params)
        return self.request("GET", path)

    def debug_vars(self) -> ServeResponse:
        """GET ``/debug/vars`` (raw metrics snapshots as JSON)."""
        return self.request("GET", "/debug/vars")


class ServerHarness:
    """Run a :class:`PlacementServer` on a background event-loop thread.

    Parameters
    ----------
    service:
        The placement service to serve.  The harness owns it: drain
        closes its pools.
    config:
        Server configuration; ``port=0`` (the default) binds ephemerally.

    Use as a context manager::

        with ServerHarness(service, config) as harness:
            response = harness.client().place("two_stage_opamp", dims)
    """

    def __init__(
        self, service: PlacementService, config: Optional[ServerConfig] = None
    ) -> None:
        self._service = service
        self._config = config if config is not None else ServerConfig()
        self._server: Optional[PlacementServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._clients: List[ServeClient] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def server(self) -> PlacementServer:
        """The live server (valid between ``start`` and ``stop``)."""
        if self._server is None:
            raise RuntimeError("harness is not started")
        return self._server

    @property
    def port(self) -> int:
        """The ephemeral port the server bound."""
        return self.server.port

    @property
    def address(self) -> str:
        """``http://host:port`` of the running server."""
        return self.server.address

    def start(self) -> "ServerHarness":
        """Start the loop thread and block until the listener is bound."""
        if self._thread is not None:
            raise RuntimeError("harness is already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-harness", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):  # pragma: no cover - hang guard
            raise RuntimeError("server harness failed to start within 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise RuntimeError("server harness failed to start") from self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        self._server = PlacementServer(
            self._service, self._config, owns_service=True
        )
        self._stop_requested = asyncio.Event()
        try:
            await self._server.start()
        except BaseException as exc:  # pragma: no cover - bind failures
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_requested.wait()
        await self._server.aclose()

    def drain(self, timeout: float = 60.0) -> None:
        """Run the graceful drain (the SIGTERM path) and wait for it."""
        if self._loop is None or self._server is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._server.drain(), self._loop)
        future.result(timeout=timeout)

    def stop(self, timeout: float = 60.0) -> None:
        """Drain gracefully, stop the loop, join the thread."""
        if self._loop is None or self._thread is None:
            return
        for client in self._clients:
            client.close()
        self.drain(timeout=timeout)
        assert self._stop_requested is not None
        self._loop.call_soon_threadsafe(self._stop_requested.set)
        self._thread.join(timeout=timeout)
        self._thread = None
        self._loop = None
        self._server = None

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Clients
    # ------------------------------------------------------------------ #
    def client(self, tenant: Optional[str] = None, timeout: float = 30.0) -> ServeClient:
        """A new blocking client against this server (closed by ``stop``)."""
        client = ServeClient(
            self._config.host, self.port, tenant=tenant, timeout=timeout
        )
        self._clients.append(client)
        return client
