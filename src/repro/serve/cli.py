"""``python -m repro.serve`` — run the placement server as a daemon.

Examples::

    # Serve a structure registry with 4-way process fan-out:
    python -m repro.serve --registry /var/lib/repro/structures --workers 4

    # Tight coalescing, bounded inflight queue, per-tenant quotas:
    python -m repro.serve --registry ./structures \\
        --window-ms 2 --max-batch 128 --max-inflight 512 \\
        --quota-rps 200 --quota-burst 400

SIGTERM (and Ctrl-C) drain gracefully: the listener closes, in-flight
batches finish, metrics flush, owned pools shut down, and the process
exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional

from repro.utils.logging_utils import get_logger

LOGGER = get_logger("serve.cli")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Always-on placement server: micro-batching JSON/HTTP front "
        "end over a PlacementService.",
    )
    parser.add_argument(
        "--registry",
        default=None,
        help="structure registry directory (flat or sharded; auto-detected, "
        "created when missing). Without one, structures are generated in memory.",
    )
    parser.add_argument(
        "--sharded",
        action="store_true",
        help="create a fresh registry root fingerprint-sharded (ignored for "
        "existing roots, whose layout is auto-detected)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8117, help="TCP port (0 binds ephemerally)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process fan-out for batch dispatch (instantiate_batch workers=N; "
        "needs --registry)",
    )
    parser.add_argument(
        "--no-affinity",
        action="store_true",
        help="disable shard-affinity routing: batches fan out shard-blind "
        "instead of pinning each shard's sub-batch to its owner worker",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=4.0,
        help="micro-batch coalesce window in milliseconds (default 4)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64, help="largest coalesced batch"
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="inflight query budget; excess sheds with 429 + Retry-After",
    )
    parser.add_argument(
        "--quota-rps",
        type=float,
        default=None,
        help="per-tenant sustained queries/second (X-Tenant header; default: no quotas)",
    )
    parser.add_argument(
        "--quota-burst",
        type=float,
        default=None,
        help="per-tenant burst ceiling (default: 2x --quota-rps)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request queueing budget when X-Deadline-Ms is absent",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=4,
        help="dispatch threads running blocking service calls off the event loop",
    )
    parser.add_argument(
        "--cache",
        type=int,
        default=8,
        help="(structure, instantiator) pairs kept in the service LRU",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable repro.obs span tracing for the serving path",
    )
    parser.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help="append a structured JSONL access-log line per request",
    )
    parser.add_argument(
        "--flight-dump",
        default=None,
        metavar="PATH",
        help="dump the flight-recorder ring (last N requests) here as JSONL "
        "on drain and on unhandled errors",
    )
    parser.add_argument(
        "--flight-records",
        type=int,
        default=512,
        help="flight-recorder ring size (default 512)",
    )
    parser.add_argument(
        "--slo-latency-ms",
        type=float,
        default=500.0,
        help="latency SLO threshold in milliseconds (default 500)",
    )
    parser.add_argument(
        "--slo-availability",
        type=float,
        default=0.999,
        help="availability SLO target fraction (default 0.999)",
    )
    parser.add_argument(
        "--slo-window-s",
        type=float,
        default=3600.0,
        help="rolling SLO compliance window in seconds (default 3600)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.serve``."""
    args = build_parser().parse_args(argv)
    if args.trace:
        from repro.obs.spans import configure

        configure(enabled=True)

    import signal

    from repro.parallel.sharding import open_registry
    from repro.serve.server import PlacementServer, ServerConfig
    from repro.service.engine import PlacementService

    registry = (
        open_registry(args.registry, sharded=args.sharded or None)
        if args.registry is not None
        else None
    )
    if registry is None and args.workers:
        LOGGER.warning(
            "--workers has no effect without --registry (process fan-out "
            "needs a shared structure library); serving in-process"
        )
    service = PlacementService(registry, cache_capacity=args.cache)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        window_seconds=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        quota_rate=args.quota_rps,
        quota_burst=args.quota_burst,
        default_deadline_seconds=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
        service_workers=args.workers,
        affinity=not args.no_affinity,
        executor_threads=args.threads,
        slo_availability_target=args.slo_availability,
        slo_latency_threshold_seconds=args.slo_latency_ms / 1000.0,
        slo_window_seconds=args.slo_window_s,
        flight_records=args.flight_records,
        flight_dump_path=args.flight_dump,
        access_log_path=args.access_log,
    )

    async def _serve() -> None:
        server = PlacementServer(service, config, owns_service=True)
        await server.start()
        # The one line a supervisor (or the CLI smoke test) scrapes for
        # the bound address — meaningful with --port 0.
        print(f"listening on {server.address}", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(server.drain())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break
        await server.serve_until_drained()
        await server.aclose()

    asyncio.run(_serve())
    print("placement server drained cleanly", flush=True)
    return 0
