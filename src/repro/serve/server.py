"""The always-on placement server: asyncio front end over ``PlacementService``.

:class:`PlacementServer` is the process that stays up and takes traffic.
One asyncio event loop accepts JSON-over-HTTP/1.1 connections; per-circuit
:class:`~repro.serve.batcher.MicroBatcher` instances coalesce concurrent
``/place`` requests into :meth:`PlacementService.instantiate_batch` calls
(which reuse the whole dedup → shard → fan-out stack, including the
PR 5 process pool when ``service_workers`` asks for it); admission control
and per-tenant quotas shed overload with 429 before it turns into queueing
latency; and SIGTERM drains gracefully — in-flight requests finish, the
batchers flush, owned pools close, and not one accepted request is lost.

The blocking service calls run on a small thread pool so the event loop
never stalls behind a placement; the service layer is thread-safe by
construction (PR 1) and fans out to worker *processes* on its own when
configured, so threads here are dispatch plumbing, not the parallelism
story.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
import urllib.parse
from dataclasses import asdict, dataclass, field
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.exporters import spans_to_chrome_events
from repro.obs.flight import FlightRecorder, TraceBuffer
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLObjective, SLOTracker
from repro.obs.spans import (
    add_root_hook,
    add_span_sink,
    anchored,
    is_enabled as _obs_enabled,
    metrics as _obs_metrics,
    remove_root_hook,
    remove_span_sink,
    root_span,
    span,
    span_context,
)
from repro.serve.admission import AdmissionController, AdmissionTicket
from repro.serve.affinity import AffinityDecision, AffinityRouter
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    STREAM_TERMINATOR,
    BadRequest,
    CircuitResolver,
    HttpRequest,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServeError,
    ServerDraining,
    encode_chunk,
    error_response,
    json_response,
    mint_request_id,
    parse_dims,
    parse_dims_batch,
    parse_queries,
    placement_payload,
    render_response,
    routed_payload,
    stream_response_head,
    with_header,
)
from repro.service.engine import PlacementService
from repro.serve.quotas import TenantQuotas
from repro.utils.logging_utils import get_logger

LOGGER = get_logger("serve.server")

#: Hard bound on header count per request (parser safety valve).
MAX_HEADERS = 64
#: Hard bound on one header/request line (bytes).
MAX_LINE_BYTES = 16384


@dataclass(frozen=True)
class ServerConfig:
    """Everything that shapes a :class:`PlacementServer`'s behavior."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (read it back from ``server.port``).
    port: int = 0
    #: Coalesce window of the per-circuit micro-batchers (seconds).
    window_seconds: float = 0.004
    #: Largest coalesced batch one dispatch may carry.
    max_batch: int = 64
    #: Total query cost admitted at once; the rest sheds with 429.
    max_inflight: int = 256
    #: Per-tenant sustained queries/second (``None`` disables quotas).
    quota_rate: Optional[float] = None
    #: Per-tenant burst ceiling (defaults to ``2 * quota_rate``).
    quota_burst: Optional[float] = None
    #: Queueing budget applied when a request carries no ``X-Deadline-Ms``.
    default_deadline_seconds: Optional[float] = None
    #: Process fan-out forwarded to ``instantiate_batch(workers=...)``.
    service_workers: Optional[int] = None
    #: Shard-affine dispatch: pin each circuit's batches to the worker
    #: process owning its registry shard (needs ``service_workers > 1``
    #: and a registry-backed service; inert otherwise).
    affinity: bool = True
    #: Threads running the blocking service calls off the event loop.
    executor_threads: int = 4
    #: Largest accepted request body.
    max_body_bytes: int = 4 * 1024 * 1024
    #: How long :meth:`PlacementServer.drain` waits for in-flight work.
    drain_timeout_seconds: float = 30.0
    #: Availability objective (fraction of requests answering below 500).
    slo_availability_target: float = 0.999
    #: Latency objective: this fraction of successful requests must finish
    #: within ``slo_latency_threshold_seconds``.
    slo_latency_target: float = 0.99
    slo_latency_threshold_seconds: float = 0.5
    #: Rolling compliance window of both objectives.
    slo_window_seconds: float = 3600.0
    #: Flight-recorder ring size (last N request records).
    flight_records: int = 512
    #: When set, the flight ring dumps here as JSONL on drain and on 500s.
    flight_dump_path: Optional[str] = None
    #: When set, every request appends a structured JSONL access-log line.
    access_log_path: Optional[str] = None
    #: Tail-sampled trace retention (kept traces; errors evict last).
    trace_capacity: int = 64
    #: Keep traces at or above this duration quantile.
    trace_slow_quantile: float = 0.9
    #: Requests observed before the slow-keep threshold activates.
    trace_min_samples: int = 32


#: Paths whose outcomes feed the SLO tracker (debug/health traffic doesn't
#: burn the error budget).
_API_PATHS = frozenset({"/place", "/place_batch", "/route"})

#: Bounded route-label set for per-route metrics (uncontrolled paths would
#: otherwise mint one histogram per probe URL).
_ROUTE_LABELS = {
    "/place": "place",
    "/place_batch": "place_batch",
    "/route": "route",
    "/healthz": "healthz",
    "/metrics": "metrics",
    "/debug/statusz": "statusz",
    "/debug/tracez": "tracez",
    "/debug/vars": "vars",
}


@dataclass
class _HandlerResult:
    """Response bytes plus the admission ticket released after the write."""

    response: bytes
    ticket: Optional[AdmissionTicket] = None
    close: bool = False
    #: Coalesced-batch id the request rode, for the access log.
    batch_id: Optional[str] = None
    #: Admitted query cost, for the access log.
    cost: int = 0
    #: Chunked-transfer body: an async iterator of pre-framed chunks the
    #: connection loop writes after ``response`` (the header block).  The
    #: ticket is released only once the stream is fully written.
    stream: Optional[Any] = None


class _BatchItem:
    """One ``/place`` query riding a coalesced batch: dims plus identity.

    The batcher treats items opaquely but duck-calls :meth:`on_batch` when
    the item's batch dispatches, which is how the request learns the batch
    id it rode (for its access-log line) and how the dispatch span learns
    which request traces to link.  ``circuit`` and ``shard`` (the affinity
    prefix, stamped at submit time) let the shared batcher split a mixed
    coalesced batch into per-shard sub-batches.
    """

    __slots__ = (
        "circuit",
        "dims",
        "shard",
        "trace",
        "request_id",
        "batch_id",
        "batch_size",
    )

    def __init__(
        self,
        dims: Any,
        trace: Optional[Tuple[str, str]] = None,
        request_id: Optional[str] = None,
        circuit: Any = None,
        shard: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.dims = dims
        self.shard = shard
        self.trace = trace
        self.request_id = request_id
        self.batch_id: Optional[str] = None
        self.batch_size = 0

    def on_batch(self, batch_id: str, size: int) -> None:
        self.batch_id = batch_id
        self.batch_size = size


class PlacementServer:
    """Serve ``PlacementService`` queries over asyncio HTTP/1.1.

    Parameters
    ----------
    service:
        The placement service answering queries.  Pass ``owns_service=True``
        when the server should close the service's process pools on drain
        (the CLI and harness do).
    config:
        A :class:`ServerConfig`.
    owns_service:
        Whether drain closes the service's pools.
    """

    def __init__(
        self,
        service: PlacementService,
        config: Optional[ServerConfig] = None,
        owns_service: bool = False,
    ) -> None:
        self._service = service
        self._config = config if config is not None else ServerConfig()
        self._owns_service = owns_service
        self._metrics = MetricsRegistry()
        self._admission = AdmissionController(
            max_inflight=self._config.max_inflight, metrics=self._metrics
        )
        self._quotas = TenantQuotas(
            rate=self._config.quota_rate,
            burst=self._config.quota_burst,
            metrics=self._metrics,
        )
        self._resolver = CircuitResolver()
        self._affinity = AffinityRouter(
            service,
            workers=self._config.service_workers,
            metrics=self._metrics,
            enabled=self._config.affinity,
        )
        #: One shared ``/place`` batcher for every circuit: concurrent
        #: requests coalesce across circuits, and the affinity plan splits
        #: the coalesced batch back into per-shard sub-batches at dispatch.
        self._batcher = MicroBatcher(
            dispatch=self._dispatch_batch,
            window_seconds=self._config.window_seconds,
            max_batch=self._config.max_batch,
            name="place",
            metrics=self._metrics,
            plan=self._affinity.subbatch_plan,
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.Task[None]]" = set()
        self._draining = False
        self._drained = asyncio.Event()
        self._started_at: Optional[float] = None
        self._slo = SLOTracker(
            [
                SLObjective(
                    name="availability",
                    target=self._config.slo_availability_target,
                    kind="availability",
                    window_seconds=self._config.slo_window_seconds,
                ),
                SLObjective(
                    name="latency",
                    target=self._config.slo_latency_target,
                    kind="latency",
                    latency_threshold=self._config.slo_latency_threshold_seconds,
                    window_seconds=self._config.slo_window_seconds,
                ),
            ]
        )
        self._flight = FlightRecorder(capacity=self._config.flight_records)
        self._traces = TraceBuffer(
            capacity=self._config.trace_capacity,
            slow_quantile=self._config.trace_slow_quantile,
            min_samples=self._config.trace_min_samples,
        )
        self._access_log = None
        self._trace_taps_installed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> ServerConfig:
        """The configuration this server runs under."""
        return self._config

    @property
    def service(self) -> PlacementService:
        """The placement service answering this server's queries."""
        return self._service

    @property
    def metrics(self) -> MetricsRegistry:
        """The server's own metrics registry (``serve.*`` names)."""
        return self._metrics

    @property
    def draining(self) -> bool:
        """True once drain began; new requests answer 503."""
        return self._draining

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self._config.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        # Pre-fork the service's worker processes while this is still the
        # only active thread: a fork taken once dispatch threads are
        # serving can inherit a sibling's held import lock and deadlock
        # the child worker on its first lazy import.
        workers = self._config.service_workers
        if workers is not None and workers > 1:
            pin_slots = range(workers) if self._affinity.active else ()
            self._service.prestart_pool(workers, pin_slots=pin_slots)
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.executor_threads,
            thread_name_prefix="serve-dispatch",
        )
        self._install_trace_taps()
        if self._config.access_log_path:
            from pathlib import Path

            log_path = Path(self._config.access_log_path)
            log_path.parent.mkdir(parents=True, exist_ok=True)
            self._access_log = log_path.open("a", encoding="utf-8")
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self._config.host,
            port=self._config.port,
            family=socket.AF_INET,
        )
        self._started_at = asyncio.get_running_loop().time()
        LOGGER.info("placement server listening on %s", self.address)

    def _install_trace_taps(self) -> None:
        """Feed the tail sampler from the span substrate (session-scoped).

        Both taps are transient: removed on drain and by ``obs.reset()``,
        so repeated harness sessions in one process never leave a dead
        server's buffers wired into the live span feed.
        """
        if self._trace_taps_installed:
            return
        add_span_sink(self._traces.ingest)
        add_root_hook(self._on_root_span)
        self._trace_taps_installed = True

    def _remove_trace_taps(self) -> None:
        if not self._trace_taps_installed:
            return
        remove_span_sink(self._traces.ingest)
        remove_root_hook(self._on_root_span)
        self._trace_taps_installed = False

    def _on_root_span(self, record: Dict[str, Any]) -> None:
        """Root hook: only request roots reach the tail sampler's verdict."""
        if record.get("name") == "serve.request":
            self._traces.seal(record)

    async def serve_until_drained(self) -> None:
        """Block until :meth:`drain` completes (the CLI's main await)."""
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close pools.

        Idempotent.  Order matters: the listener closes first (no new
        connections), the draining flag flips (new requests on live
        keep-alive connections answer 503), queued batches flush, and only
        when the admission controller reports zero inflight work — every
        accepted request answered and written — do owned resources close.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        LOGGER.info("drain: closing listener, finishing in-flight requests")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._batcher.flush()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._config.drain_timeout_seconds
        while not self._admission.idle and loop.time() < deadline:
            await asyncio.sleep(0.005)
        if not self._admission.idle:  # pragma: no cover - pathological stall
            LOGGER.warning(
                "drain: %d inflight queries still pending at timeout",
                self._admission.inflight,
            )
        await self._batcher.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_service:
            self._service.close()
        if self._config.flight_dump_path and len(self._flight):
            try:
                self._flight.dump(self._config.flight_dump_path)
                LOGGER.info(
                    "drain: flight recorder dumped %d records to %s",
                    len(self._flight),
                    self._config.flight_dump_path,
                )
            except OSError:  # pragma: no cover - disk full / permissions
                LOGGER.warning("drain: flight recorder dump failed")
        if self._access_log is not None:
            self._access_log.close()
            self._access_log = None
        self._remove_trace_taps()
        self._flush_metrics()
        self._drained.set()
        LOGGER.info("drain: complete")

    async def aclose(self) -> None:
        """Drain, then tear down any connection tasks still parked on reads."""
        await self.drain()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*tuple(self._connections), return_exceptions=True)

    def _flush_metrics(self) -> None:
        """Log the final counter snapshot so a drained server leaves a record."""
        summary = {
            "admission": self._admission.stats(),
            "quota_tenants": self._quotas.stats(),
            "service": self._service.snapshot().as_dict(),
        }
        LOGGER.info("final serving stats: %s", json.dumps(summary, default=str))

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)
        self._metrics.inc("serve.connections")
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await _read_request(reader, self._config.max_body_bytes)
            except ServeError as exc:
                writer.write(error_response(exc, close=True))
                await writer.drain()
                return
            if request is None:
                return
            result = await self._handle_request(request)
            try:
                writer.write(result.response)
                await writer.drain()
                if result.stream is not None:
                    # Chunked body: flush each shard sub-batch the moment
                    # it lands, then the zero-length terminator chunk.
                    async for chunk in result.stream:
                        writer.write(chunk)
                        await writer.drain()
                    writer.write(STREAM_TERMINATOR)
                    await writer.drain()
            finally:
                if result.ticket is not None:
                    # Released only after the response bytes are flushed:
                    # drain's inflight==0 therefore means every accepted
                    # request was fully answered, not merely computed.
                    result.ticket.release()
            if result.close or request.wants_close:
                return

    async def _handle_request(self, request: HttpRequest) -> _HandlerResult:
        loop = asyncio.get_running_loop()
        started = loop.time()
        route = (request.method, request.path.split("?", 1)[0])
        request_id = request.request_id or mint_request_id()
        self._metrics.inc("serve.requests")
        outcome = "ok"
        # A forced-root span: concurrent requests interleave awaits on this
        # event-loop thread, so stack parenting would chain strangers.
        with root_span(
            "serve.request",
            trace_id=request.trace_id,
            method=route[0],
            path=route[1],
            request_id=request_id,
            tenant=request.tenant,
        ) as obs_span:
            try:
                result = await self._route(request, route, obs_span, request_id)
                status = 200
            except ServeError as exc:
                status = exc.status
                outcome = exc.code
                obs_span.set(error=exc.code)
                result = _HandlerResult(
                    response=error_response(exc, close=self._draining)
                )
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                LOGGER.exception("unhandled error serving %s %s", *route)
                status = 500
                outcome = type(exc).__name__
                obs_span.set(error=outcome)
                internal = ServeError(f"{type(exc).__name__}: {exc}")
                result = _HandlerResult(response=error_response(internal, close=True))
            obs_span.set(status=status)
            trace_ctx = span_context(obs_span)
        elapsed = loop.time() - started
        self._metrics.inc(f"serve.status.{status}")
        self._metrics.observe("serve.request_seconds", elapsed)
        label = _ROUTE_LABELS.get(route[1], "other")
        self._metrics.observe(f"serve.route.{label}.seconds", elapsed)
        if status == 200 and route[0] == "POST":
            self._admission.observe_service_time(elapsed)
        if _obs_enabled():
            _obs_metrics().observe("serve.request_seconds", elapsed)
        if route[1] in _API_PATHS:
            self._slo.record(status, elapsed)
        self._log_request(
            request, route, request_id, trace_ctx, status, outcome, elapsed, result
        )
        result.response = with_header(result.response, "X-Request-Id", request_id)
        return result

    def _log_request(
        self,
        request: HttpRequest,
        route: Tuple[str, str],
        request_id: str,
        trace_ctx: Optional[Tuple[str, str]],
        status: int,
        outcome: str,
        elapsed: float,
        result: _HandlerResult,
    ) -> None:
        """One structured access-log record: flight ring + optional JSONL."""
        entry = {
            "ts": round(time.time(), 6),
            "request_id": request_id,
            "trace_id": trace_ctx[0] if trace_ctx else None,
            "tenant": request.tenant,
            "method": route[0],
            "route": route[1],
            "status": status,
            "outcome": outcome,
            "latency_seconds": round(elapsed, 6),
            "batch_id": result.batch_id,
            "cost": result.cost,
        }
        self._flight.record(entry)
        handle = self._access_log
        if handle is not None:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
        if status >= 500 and self._config.flight_dump_path:
            # An unhandled error (or 504) snapshots the minutes before it.
            try:
                self._flight.dump(self._config.flight_dump_path)
            except OSError:  # pragma: no cover - disk full / permissions
                pass

    async def _route(
        self,
        request: HttpRequest,
        route: Tuple[str, str],
        obs_span: Any,
        request_id: str,
    ) -> _HandlerResult:
        method, path = route
        if path in ("/healthz", "/metrics", "/debug/statusz", "/debug/tracez", "/debug/vars"):
            if method != "GET":
                raise MethodNotAllowed(f"{path} only supports GET")
            if path == "/healthz":
                return self._handle_healthz()
            if path == "/metrics":
                return self._handle_metrics()
            if path == "/debug/statusz":
                return self._handle_statusz()
            if path == "/debug/tracez":
                return self._handle_tracez(request)
            return self._handle_vars()
        if path in _API_PATHS:
            if method != "POST":
                raise MethodNotAllowed(f"{path} only supports POST")
            if self._draining:
                raise ServerDraining("server is draining; retry against a peer")
            handler = {
                "/place": self._handle_place,
                "/place_batch": self._handle_place_batch,
                "/route": self._handle_route,
            }[path]
            return await handler(request, obs_span, request_id)
        raise NotFound(f"no handler for {method} {path}")

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _handle_healthz(self) -> _HandlerResult:
        loop = asyncio.get_running_loop()
        payload = {
            "status": "draining" if self._draining else "ok",
            "inflight": self._admission.inflight,
            "queued": self._batcher.queued,
            "batchers": 1,
            "uptime_seconds": (
                round(loop.time() - self._started_at, 3)
                if self._started_at is not None
                else 0.0
            ),
        }
        return _HandlerResult(response=json_response(200, payload))

    def _handle_metrics(self) -> _HandlerResult:
        # Three registries render into one exposition: the server's own
        # serve.* metrics, a consistent snapshot of the service counters,
        # and (when tracing is on) the process-global repro.obs registry.
        parts = [self._metrics.to_prometheus()]
        parts.append(self._service.snapshot().metrics.to_prometheus())
        if _obs_enabled():
            parts.append(_obs_metrics().to_prometheus())
        body = "".join(parts).encode("utf-8")
        return _HandlerResult(
            response=render_response(
                200, body, content_type="text/plain; version=0.0.4"
            )
        )

    def _deadline_for(self, request: HttpRequest) -> Optional[float]:
        budget = request.deadline_seconds
        if budget is None:
            budget = self._config.default_deadline_seconds
        if budget is None:
            return None
        return asyncio.get_running_loop().time() + budget

    def _admit(self, request: HttpRequest, cost: int) -> AdmissionTicket:
        """Quota first (cheap, per-tenant), then the global inflight budget."""
        self._quotas.check(request.tenant, cost)
        return self._admission.admit(cost)

    async def _handle_place(
        self, request: HttpRequest, obs_span: Any, request_id: str
    ) -> _HandlerResult:
        payload = request.json()
        circuit = self._resolver.resolve(payload)
        dims = parse_dims(payload.get("dims"), circuit.num_blocks)
        ticket = self._admit(request, 1)
        decision = self._affinity.route(circuit)
        item = _BatchItem(
            dims,
            trace=span_context(obs_span),
            request_id=request_id,
            circuit=circuit,
            shard=decision.shard,
        )
        try:
            placement = await self._batcher.submit(
                item, deadline=self._deadline_for(request)
            )
        except BaseException:
            ticket.release()
            raise
        if item.batch_id is not None:
            obs_span.set(batch_id=item.batch_id, batch_size=item.batch_size)
        return _HandlerResult(
            response=json_response(200, placement_payload(placement)),
            ticket=ticket,
            batch_id=item.batch_id,
            cost=1,
        )

    async def _handle_place_batch(
        self, request: HttpRequest, obs_span: Any, request_id: str
    ) -> _HandlerResult:
        """A whole batch in one call, split by shard owner before fan-out.

        Two payload shapes: the single-circuit ``dims_batch`` form and the
        mixed-circuit ``queries`` form.  Either way the batch groups by
        circuit (one shard sub-batch each), every sub-batch dispatches
        concurrently to its shard owner, and with ``"stream": true`` the
        response flushes one chunk per sub-batch *as it lands* — callers
        see the fast shards' placements while the slow shard still runs.
        """
        payload = request.json()
        stream = bool(payload.get("stream"))
        raw_queries = payload.get("queries")
        if raw_queries is not None:
            if payload.get("dims_batch") is not None:
                raise BadRequest("pass either 'dims_batch' or 'queries', not both")
            queries = parse_queries(raw_queries, self._resolver)
        else:
            circuit = self._resolver.resolve(payload)
            dims_batch = parse_dims_batch(payload.get("dims_batch"), circuit.num_blocks)
            queries = [(circuit, dims) for dims in dims_batch]
        ticket = self._admit(request, len(queries))
        try:
            groups = self._group_queries(queries)
            obs_span.set(queries=len(queries), shards=len(groups), stream=stream)
            loop = asyncio.get_running_loop()
            trace = span_context(obs_span)
            started = loop.time()
            tasks = [
                loop.run_in_executor(
                    self._require_executor(),
                    partial(
                        self._anchored_call,
                        trace,
                        partial(
                            self._dispatch_shard_blocking,
                            group_circuit,
                            decision,
                            [queries[i][1] for i in indices],
                        ),
                    ),
                )
                for group_circuit, decision, indices in groups
            ]
        except BaseException:
            ticket.release()
            raise
        if stream:
            return _HandlerResult(
                response=stream_response_head(200),
                ticket=ticket,
                cost=len(queries),
                stream=self._stream_shard_chunks(groups, tasks, started),
            )
        try:
            batches = await asyncio.gather(*tasks)
        except BaseException:
            ticket.release()
            raise
        results: List[Any] = [None] * len(queries)
        shards = []
        unique = duplicates = 0
        for (group_circuit, decision, indices), batch in zip(groups, batches):
            for index, placement in zip(indices, batch.results):
                results[index] = placement
            unique += batch.unique_queries
            duplicates += batch.duplicate_queries
            shards.append(
                {
                    "shard": decision.shard,
                    "slot": decision.slot,
                    "circuit": group_circuit.name,
                    "queries": len(indices),
                    "elapsed_seconds": round(batch.elapsed_seconds, 6),
                }
            )
        body = {
            "results": [placement_payload(placement) for placement in results],
            "unique_queries": unique,
            "duplicate_queries": duplicates,
            "elapsed_seconds": round(loop.time() - started, 6),
        }
        if raw_queries is not None or len(groups) > 1:
            body["shards"] = shards
        return _HandlerResult(
            response=json_response(200, body), ticket=ticket, cost=len(queries)
        )

    def _group_queries(
        self, queries: List[Tuple[Any, Any]]
    ) -> List[Tuple[Any, AffinityDecision, List[int]]]:
        """Group (circuit, dims) queries into per-circuit shard sub-batches."""
        order: List[int] = []
        grouped: Dict[int, List[int]] = {}
        circuits: Dict[int, Any] = {}
        for index, (circuit, _dims) in enumerate(queries):
            circuit_id = id(circuit)
            if circuit_id not in grouped:
                grouped[circuit_id] = []
                circuits[circuit_id] = circuit
                order.append(circuit_id)
            grouped[circuit_id].append(index)
        return [
            (
                circuits[circuit_id],
                self._affinity.route(circuits[circuit_id]),
                grouped[circuit_id],
            )
            for circuit_id in order
        ]

    async def _stream_shard_chunks(self, groups, tasks, started):
        """Yield one pre-framed chunk per shard sub-batch, completion order.

        A failing sub-batch yields an error chunk for *its* indices only;
        the other shards' results still stream.  The trailing summary
        chunk tells the client the stream is complete (on top of the
        chunked-transfer terminator).
        """
        loop = asyncio.get_running_loop()
        pending = {
            asyncio.ensure_future(task): group for task, group in zip(tasks, groups)
        }
        failed = 0
        while pending:
            done, _ = await asyncio.wait(
                pending.keys(), return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                group_circuit, decision, indices = pending.pop(task)
                chunk: Dict[str, Any] = {
                    "shard": decision.shard,
                    "slot": decision.slot,
                    "circuit": group_circuit.name,
                    "indices": list(indices),
                }
                try:
                    batch = task.result()
                except Exception as exc:  # noqa: BLE001 - per-shard isolation
                    failed += 1
                    chunk["error"] = f"{type(exc).__name__}: {exc}"
                else:
                    chunk["results"] = [
                        placement_payload(placement) for placement in batch.results
                    ]
                    chunk["elapsed_seconds"] = round(batch.elapsed_seconds, 6)
                yield encode_chunk(chunk)
        yield encode_chunk(
            {
                "done": True,
                "shards": len(groups),
                "failed": failed,
                "elapsed_seconds": round(loop.time() - started, 6),
            }
        )

    def _dispatch_shard_blocking(
        self, circuit: Any, decision: AffinityDecision, dims_list: List[Any]
    ) -> Any:
        """One shard sub-batch on an executor thread, pinned to its owner."""
        attrs: Dict[str, Any] = {
            "circuit": circuit.name,
            "queries": len(dims_list),
            "shard": decision.shard,
        }
        if decision.pinned:
            attrs["slot"] = decision.slot
        with span("serve.shard_dispatch", **attrs):
            dispatch_started = time.monotonic()
            try:
                return self._service.instantiate_batch(
                    circuit,
                    dims_list,
                    workers=self._config.service_workers,
                    pin_slot=decision.slot,
                )
            finally:
                self._affinity.record(decision, time.monotonic() - dispatch_started)

    async def _handle_route(
        self, request: HttpRequest, obs_span: Any, request_id: str
    ) -> _HandlerResult:
        payload = request.json()
        circuit = self._resolver.resolve(payload)
        dims = parse_dims(payload.get("dims"), circuit.num_blocks)
        ticket = self._admit(request, 1)
        try:
            loop = asyncio.get_running_loop()
            placement, layout = await loop.run_in_executor(
                self._require_executor(),
                partial(
                    self._anchored_call,
                    span_context(obs_span),
                    partial(self._service.route, circuit, dims),
                ),
            )
        except BaseException:
            ticket.release()
            raise
        return _HandlerResult(
            response=json_response(200, routed_payload(placement, layout)),
            ticket=ticket,
            cost=1,
        )

    # ------------------------------------------------------------------ #
    # Debug plane
    # ------------------------------------------------------------------ #
    def _handle_statusz(self) -> _HandlerResult:
        loop = asyncio.get_running_loop()
        import platform as _platform

        payload = {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": (
                round(loop.time() - self._started_at, 3)
                if self._started_at is not None
                else 0.0
            ),
            "build": {
                "python": _platform.python_version(),
                "platform": _platform.platform(),
            },
            "config": asdict(self._config),
            "slo": self._slo.snapshot(),
            "admission": self._admission.stats(),
            "quotas": self._quotas.stats(),
            "batchers": {"place": self._batcher.stats()},
            "affinity": self._affinity.stats(),
            "tracing": {
                "enabled": _obs_enabled(),
                "sampler": self._traces.stats(),
                "flight_records": len(self._flight),
            },
        }
        return _HandlerResult(response=json_response(200, payload))

    def _handle_tracez(self, request: HttpRequest) -> _HandlerResult:
        query = urllib.parse.urlparse(request.path).query
        params = urllib.parse.parse_qs(query)
        trace_id = params.get("trace_id", [None])[0]
        if trace_id:
            records = self._traces.get(trace_id)
            if records is None:
                raise NotFound(f"trace {trace_id!r} is not in the sample buffer")
            fmt = params.get("fmt", ["spans"])[0]
            if fmt == "chrome":
                body = {
                    "traceEvents": spans_to_chrome_events(records),
                    "displayTimeUnit": "ms",
                }
                return _HandlerResult(response=json_response(200, body))
            return _HandlerResult(
                response=json_response(200, {"trace_id": trace_id, "spans": records})
            )
        payload = {
            "sampler": self._traces.stats(),
            "traces": self._traces.summaries(),
        }
        return _HandlerResult(response=json_response(200, payload))

    def _handle_vars(self) -> _HandlerResult:
        payload: Dict[str, Any] = {
            "serve": self._metrics.snapshot(),
            "service": self._service.snapshot().metrics.snapshot(),
        }
        if _obs_enabled():
            payload["obs"] = _obs_metrics().snapshot()
        return _HandlerResult(response=json_response(200, payload))

    # ------------------------------------------------------------------ #
    # Batching
    # ------------------------------------------------------------------ #
    def _require_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            raise ServerDraining("server dispatch executor is shut down")
        return self._executor

    @staticmethod
    def _anchored_call(ctx: Optional[Tuple[str, str]], fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on this (executor) thread, parented under ``ctx``.

        ``run_in_executor`` severs the thread-local span stack; the anchor
        re-attaches the service-side spans to the request trace.
        """
        with anchored(ctx):
            return fn()

    async def _dispatch_batch(self, items: List[Any]) -> List[Any]:
        """One coalesced dispatch: the blocking batch call, off the loop.

        The affinity plan hands this at most one circuit's items per call
        (each sub-batch dispatches separately); the blocking half still
        regroups defensively so a mixed item list stays correct.
        """
        loop = asyncio.get_running_loop()
        results, duplicates = await loop.run_in_executor(
            self._require_executor(),
            partial(self._dispatch_blocking, list(items)),
        )
        self._metrics.inc("serve.dispatches")
        self._metrics.inc("serve.coalesced_queries", len(items))
        self._metrics.inc("serve.dedup_hits", duplicates)
        return results

    def _dispatch_blocking(
        self, items: List[_BatchItem]
    ) -> Tuple[List[Any], int]:
        """The blocking half of a dispatch, on an executor thread.

        The dispatch span opens *here*, not on the event loop: the
        executor thread's span stack then parents the service-side spans
        naturally, and the span never sits on the loop thread's stack
        where concurrent requests would mis-parent onto it.  It anchors
        onto the first coalesced request's trace and links the rest via
        the ``links`` attribute, so every rider's trace names the batch.
        Each circuit's queries run as one pinned ``instantiate_batch``
        against the circuit's shard owner.
        """
        order: List[int] = []
        grouped: Dict[int, List[int]] = {}
        circuits: Dict[int, Any] = {}
        for index, item in enumerate(items):
            circuit_id = id(item.circuit)
            if circuit_id not in grouped:
                grouped[circuit_id] = []
                circuits[circuit_id] = item.circuit
                order.append(circuit_id)
            grouped[circuit_id].append(index)
        primary = next((item.trace for item in items if item.trace), None)
        links = sorted({item.trace[0] for item in items if item.trace})
        results: List[Any] = [None] * len(items)
        duplicates = 0
        with anchored(primary):
            for circuit_id in order:
                circuit = circuits[circuit_id]
                indices = grouped[circuit_id]
                decision = self._affinity.route(circuit)
                attrs: Dict[str, Any] = {
                    "circuit": circuit.name,
                    "queries": len(indices),
                    "shard": decision.shard,
                }
                if decision.pinned:
                    attrs["slot"] = decision.slot
                if items[indices[0]].batch_id is not None:
                    attrs["batch_id"] = items[indices[0]].batch_id
                if links:
                    attrs["links"] = ",".join(links)
                with span("serve.dispatch", **attrs):
                    dispatch_started = time.monotonic()
                    try:
                        batch = self._service.instantiate_batch(
                            circuit,
                            [items[i].dims for i in indices],
                            workers=self._config.service_workers,
                            pin_slot=decision.slot,
                        )
                    finally:
                        self._affinity.record(
                            decision, time.monotonic() - dispatch_started
                        )
                duplicates += batch.duplicate_queries
                for index, placement in zip(indices, batch.results):
                    results[index] = placement
        return results, duplicates

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "draining" if self._draining else (
            "listening" if self._server is not None else "idle"
        )
        return f"PlacementServer({state}, inflight={self._admission.inflight})"


# ---------------------------------------------------------------------- #
# HTTP parsing
# ---------------------------------------------------------------------- #
async def _read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[HttpRequest]:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise BadRequest(f"request line too long: {exc}") from exc
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise BadRequest("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {line.decode('latin-1')!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        header_line = await reader.readline()
        if header_line in (b"\r\n", b"\n", b""):
            break
        if len(header_line) > MAX_LINE_BYTES:
            raise BadRequest("header line too long")
        if len(headers) >= MAX_HEADERS:
            raise BadRequest(f"too many headers (limit {MAX_HEADERS})")
        name, separator, value = header_line.decode("latin-1").partition(":")
        if not separator:
            raise BadRequest(f"malformed header line: {header_line!r}")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise BadRequest(f"invalid Content-Length {raw_length!r}") from exc
    if length < 0:
        raise BadRequest(f"invalid Content-Length {raw_length!r}")
    if length > max_body_bytes:
        raise PayloadTooLarge(
            f"request body of {length} bytes exceeds the {max_body_bytes}-byte bound"
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    return HttpRequest(method=method.upper(), path=target, headers=headers, body=body)


async def run_server(
    server: PlacementServer, install_signal_handlers: bool = True
) -> None:
    """Start ``server`` and block until a signal (or :meth:`drain`) stops it.

    SIGTERM and SIGINT both trigger the graceful drain; platforms without
    ``add_signal_handler`` (Windows event loops) skip installation and
    rely on the caller to invoke :meth:`PlacementServer.drain`.
    """
    import signal

    await server.start()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(server.drain())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break
    await server.serve_until_drained()
    await server.aclose()
