"""The serving subsystem: an always-on placement server over HTTP/1.1.

Every scaling layer below this one is a library — the cached
:class:`~repro.service.engine.PlacementService`, the dedup → shard →
fan-out machinery of :mod:`repro.parallel`, the :mod:`repro.obs`
instrumentation.  :mod:`repro.serve` is the process that stays up and
takes traffic:

* :mod:`repro.serve.protocol` — the JSON/HTTP wire protocol: payload
  shapes, the error taxonomy (429 backpressure, 503 draining, 504
  deadline), and circuit resolution.
* :mod:`repro.serve.batcher` — :class:`MicroBatcher`: concurrent requests
  entering within a small window coalesce into one batched service call,
  optionally split into per-shard sub-batches by a plan callback.
* :mod:`repro.serve.affinity` — :class:`AffinityRouter`: shard-affine
  dispatch, pinning each circuit's sub-batch to the worker slot that
  owns its registry shard.
* :mod:`repro.serve.admission` — the bounded inflight budget that sheds
  overload with 429 + ``Retry-After`` instead of queueing it.
* :mod:`repro.serve.quotas` — per-tenant token buckets keyed by the
  ``X-Tenant`` header.
* :mod:`repro.serve.server` — :class:`PlacementServer`: the asyncio
  daemon (``/place`` ``/place_batch`` ``/route`` ``/healthz``
  ``/metrics`` plus the ``/debug/statusz`` ``/debug/tracez``
  ``/debug/vars`` debug plane) with per-request root spans, tail-based
  trace sampling, SLO burn tracking, a flight-recorder ring, and
  graceful SIGTERM drain.
* :mod:`repro.serve.harness` — :class:`ServerHarness` +
  :class:`ServeClient` for tests, benchmarks and examples.
* :mod:`repro.serve.cli` — the ``python -m repro.serve`` entry point.
"""

from repro.serve.admission import AdmissionController, AdmissionTicket
from repro.serve.affinity import AffinityDecision, AffinityRouter
from repro.serve.batcher import MicroBatcher
from repro.serve.harness import ServeClient, ServeResponse, ServerHarness, StreamChunk
from repro.serve.protocol import (
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    QuotaExceeded,
    ServeError,
    ServerDraining,
    mint_request_id,
    with_header,
)
from repro.serve.quotas import TenantQuotas, TokenBucket
from repro.serve.server import PlacementServer, ServerConfig, run_server

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "AffinityDecision",
    "AffinityRouter",
    "BadRequest",
    "DeadlineExceeded",
    "MicroBatcher",
    "Overloaded",
    "PlacementServer",
    "QuotaExceeded",
    "ServeClient",
    "ServeError",
    "ServeResponse",
    "ServerConfig",
    "ServerDraining",
    "ServerHarness",
    "StreamChunk",
    "TenantQuotas",
    "TokenBucket",
    "mint_request_id",
    "run_server",
    "with_header",
]
