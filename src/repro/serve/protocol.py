"""The wire protocol of the placement server: JSON over HTTP/1.1.

Everything the server says to a client is defined here — request payload
shapes, response encodings, and the error taxonomy that maps onto HTTP
status codes — so the asyncio plumbing in :mod:`repro.serve.server` never
invents a response format inline and tests can assert against one place.

Endpoints (all bodies are JSON):

===================  ====  ===================================================
path                 verb  payload
===================  ====  ===================================================
``/place``           POST  ``{"circuit": <name|netlist>, "dims": [[w,h],..]}``
``/place_batch``     POST  ``{"circuit": ..., "dims_batch": [[[w,h],..],..]}``
                           or ``{"queries": [{"circuit":..,"dims":..},..]}``;
                           ``"stream": true`` flushes per-shard chunks
``/route``           POST  ``{"circuit": ..., "dims": [[w,h],..]}``
``/healthz``         GET   —
``/metrics``         GET   — (Prometheus text exposition)
``/debug/statusz``   GET   — (uptime, config, SLO burn, subsystem state)
``/debug/tracez``    GET   — (tail-sampled traces; ``?trace_id=`` for spans)
``/debug/vars``      GET   — (raw metrics snapshot as JSON)
===================  ====  ===================================================

``circuit`` is either the name of a built-in benchmark circuit (served via
:func:`repro.benchcircuits.get_benchmark`) or a full netlist dict in
:func:`repro.core.serialization.circuit_to_dict` form.  Request headers
carry serving semantics: ``X-Tenant`` names the quota bucket the request
draws from, ``X-Deadline-Ms`` bounds how long the request may wait before
the server drops it (a :class:`DeadlineExceeded` 504), ``X-Request-Id``
carries the caller's correlation id (the server mints one when absent and
echoes it on every response), and ``X-Trace-Id`` joins the request's root
span to an upstream trace.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.placement import Dims, Placement
from repro.service.cache import LRUCache

#: Header naming the quota bucket a request draws from.
TENANT_HEADER = "x-tenant"
#: Tenant assumed when the header is absent.
DEFAULT_TENANT = "anonymous"
#: Header bounding the request's queueing budget, in milliseconds.
DEADLINE_HEADER = "x-deadline-ms"
#: Header carrying the caller's request correlation id (minted when absent).
REQUEST_ID_HEADER = "x-request-id"
#: Header carrying an upstream trace id the request's root span should join.
TRACE_ID_HEADER = "x-trace-id"

# Request ids come from a pid-qualified counter, never an RNG, so serving
# stays bit-identical with fixed-seed golden trajectories.
_REQUEST_IDS = itertools.count(1)


def mint_request_id() -> str:
    """A process-unique request id (``<pid hex>r<counter hex>``)."""
    return f"{os.getpid():x}r{next(_REQUEST_IDS):x}"


def _sanitize_token(raw: Optional[str], max_len: int = 64) -> Optional[str]:
    """Clamp a caller-supplied correlation token to a safe charset."""
    if not raw:
        return None
    cleaned = "".join(ch for ch in raw.strip() if ch.isalnum() or ch in "-_.")
    return cleaned[:max_len] or None

#: HTTP reason phrases for the statuses the server emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


# ---------------------------------------------------------------------- #
# Error taxonomy
# ---------------------------------------------------------------------- #
class ServeError(Exception):
    """Base of every protocol-visible failure; renders as a JSON error body."""

    status = 500
    code = "internal"
    #: When set, rendered as a ``Retry-After`` header (seconds).
    retry_after: Optional[float] = None

    def payload(self) -> Dict[str, Any]:
        """The JSON error body."""
        body: Dict[str, Any] = {"error": self.code, "message": str(self)}
        if self.retry_after is not None:
            body["retry_after_seconds"] = round(self.retry_after, 3)
        return body


class BadRequest(ServeError):
    """Malformed payload, unknown circuit, or dimension-vector mismatch."""

    status = 400
    code = "bad_request"


class NotFound(ServeError):
    """No handler for the requested path."""

    status = 404
    code = "not_found"


class MethodNotAllowed(ServeError):
    """The path exists but not under this HTTP verb."""

    status = 405
    code = "method_not_allowed"


class PayloadTooLarge(ServeError):
    """Request body above the configured bound."""

    status = 413
    code = "payload_too_large"


class Overloaded(ServeError):
    """Admission control shed the request: the inflight queue is full."""

    status = 429
    code = "overloaded"

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QuotaExceeded(ServeError):
    """The tenant's token bucket cannot cover the request right now."""

    status = 429
    code = "quota_exceeded"

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServerDraining(ServeError):
    """The server received SIGTERM and is finishing in-flight work only."""

    status = 503
    code = "draining"


class DeadlineExceeded(ServeError):
    """The request's ``X-Deadline-Ms`` budget expired while it was queued."""

    status = 504
    code = "deadline_exceeded"


# ---------------------------------------------------------------------- #
# HTTP request/response plumbing
# ---------------------------------------------------------------------- #
@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict[str, Any]:
        """The decoded JSON body (an empty body decodes to ``{}``)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    @property
    def tenant(self) -> str:
        """The quota bucket this request draws from."""
        return self.headers.get(TENANT_HEADER, DEFAULT_TENANT).strip() or DEFAULT_TENANT

    @property
    def deadline_seconds(self) -> Optional[float]:
        """The request's queueing budget in seconds, if the header is set."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            millis = float(raw)
        except ValueError as exc:
            raise BadRequest(f"{DEADLINE_HEADER} must be a number, got {raw!r}") from exc
        if millis <= 0:
            raise BadRequest(f"{DEADLINE_HEADER} must be positive, got {raw!r}")
        return millis / 1000.0

    @property
    def request_id(self) -> Optional[str]:
        """The caller's ``X-Request-Id``, sanitized, or ``None``."""
        return _sanitize_token(self.headers.get(REQUEST_ID_HEADER))

    @property
    def trace_id(self) -> Optional[str]:
        """The caller's ``X-Trace-Id``, sanitized, or ``None``."""
        return _sanitize_token(self.headers.get(TRACE_ID_HEADER))

    @property
    def wants_close(self) -> bool:
        """True when the client asked to drop the connection after this request."""
        return self.headers.get("connection", "").lower() == "close"


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
    close: bool = False,
) -> bytes:
    """Serialize one HTTP/1.1 response (status line, headers, body)."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def json_response(
    status: int,
    payload: Mapping[str, Any],
    extra_headers: Optional[Mapping[str, str]] = None,
    close: bool = False,
) -> bytes:
    """Serialize a JSON response body (non-JSON values fall back to ``str``)."""
    body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return render_response(status, body, extra_headers=extra_headers, close=close)


def error_response(error: ServeError, close: bool = False) -> bytes:
    """The response bytes for a :class:`ServeError`."""
    headers: Dict[str, str] = {}
    if error.retry_after is not None:
        # Retry-After is integer seconds in HTTP; never round a positive
        # backoff down to "retry immediately".
        headers["Retry-After"] = str(max(1, int(round(error.retry_after))))
    return json_response(error.status, error.payload(), extra_headers=headers, close=close)


#: Final frame of a chunked-transfer stream (zero-length chunk).
STREAM_TERMINATOR = b"0\r\n\r\n"


def stream_response_head(
    status: int = 200,
    content_type: str = "application/x-ndjson",
    extra_headers: Optional[Mapping[str, str]] = None,
    close: bool = False,
) -> bytes:
    """The header block of a chunked-transfer response (no body yet).

    Streamed ``/place_batch`` responses flush one JSON line per shard
    sub-batch as it lands; chunked transfer encoding is self-delimiting,
    so keep-alive connections survive a streamed response.
    """
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Transfer-Encoding: chunked",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def encode_chunk(payload: Mapping[str, Any]) -> bytes:
    """One JSON line framed as an HTTP chunk."""
    data = json.dumps(payload, sort_keys=True, default=str).encode("utf-8") + b"\n"
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


def with_header(response: bytes, name: str, value: str) -> bytes:
    """Splice one header into already-rendered response bytes.

    Lets the server stamp ``X-Request-Id`` on every response — including
    error bodies rendered deep inside handlers — without threading the id
    through each renderer.  The header lands right after the status line.
    """
    newline = response.find(b"\r\n")
    if newline < 0:
        return response
    injected = f"\r\n{name}: {value}".encode("ascii")
    return response[:newline] + injected + response[newline:]


# ---------------------------------------------------------------------- #
# Payload decoding
# ---------------------------------------------------------------------- #
class CircuitResolver:
    """Turn a request's ``circuit`` field into a live :class:`Circuit`.

    Named benchmark circuits load once from
    :mod:`repro.benchcircuits`; full netlist dicts are rebuilt via
    :func:`~repro.core.serialization.circuit_from_dict` and cached by
    content digest, so repeated requests for the same netlist never pay
    deserialization twice.
    """

    def __init__(self, capacity: int = 64) -> None:
        self._by_name: Dict[str, Any] = {}
        self._by_digest: LRUCache[str, Any] = LRUCache(capacity)

    def resolve(self, payload: Mapping[str, Any]):
        spec = payload.get("circuit")
        if spec is None:
            raise BadRequest("request payload must carry a 'circuit' field")
        if isinstance(spec, str):
            return self._named(spec)
        if isinstance(spec, Mapping):
            return self._from_data(spec)
        raise BadRequest(
            "'circuit' must be a benchmark name or a serialized netlist object, "
            f"got {type(spec).__name__}"
        )

    def _named(self, name: str):
        circuit = self._by_name.get(name)
        if circuit is None:
            from repro.benchcircuits.library import benchmark_names, get_benchmark

            try:
                circuit = get_benchmark(name)
            except (KeyError, ValueError) as exc:
                raise BadRequest(
                    f"unknown benchmark circuit {name!r}; available: {benchmark_names()}"
                ) from exc
            self._by_name[name] = circuit
        return circuit

    def _from_data(self, data: Mapping[str, Any]):
        from repro.core.serialization import circuit_from_dict
        from repro.parallel.jobs import circuit_data_key

        try:
            digest = circuit_data_key(dict(data))
        except TypeError as exc:
            raise BadRequest(f"serialized circuit is not JSON-clean: {exc}") from exc
        circuit = self._by_digest.get(digest)
        if circuit is None:
            try:
                circuit = circuit_from_dict(dict(data))
            except (KeyError, TypeError, ValueError) as exc:
                raise BadRequest(f"invalid serialized circuit: {exc}") from exc
            self._by_digest.put(digest, circuit)
        return circuit


def parse_dims(raw: Any, num_blocks: int, field_name: str = "dims") -> Tuple[Dims, ...]:
    """Validate one dimension vector from a JSON payload."""
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise BadRequest(f"'{field_name}' must be a list of [width, height] pairs")
    if len(raw) != num_blocks:
        raise BadRequest(
            f"'{field_name}' must have {num_blocks} entries (one per block), "
            f"got {len(raw)}"
        )
    dims: List[Dims] = []
    for index, pair in enumerate(raw):
        if (
            not isinstance(pair, Sequence)
            or isinstance(pair, (str, bytes))
            or len(pair) != 2
        ):
            raise BadRequest(f"'{field_name}[{index}]' must be a [width, height] pair")
        try:
            dims.append((int(pair[0]), int(pair[1])))
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"'{field_name}[{index}]' must hold integers: {exc}") from exc
    return tuple(dims)


def parse_dims_batch(raw: Any, num_blocks: int) -> List[Tuple[Dims, ...]]:
    """Validate a batch of dimension vectors from a JSON payload."""
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise BadRequest("'dims_batch' must be a list of dimension vectors")
    if not raw:
        raise BadRequest("'dims_batch' must not be empty")
    return [
        parse_dims(entry, num_blocks, field_name=f"dims_batch[{index}]")
        for index, entry in enumerate(raw)
    ]


def parse_queries(
    raw: Any, resolver: CircuitResolver
) -> List[Tuple[Any, Tuple[Dims, ...]]]:
    """Validate a mixed-circuit batch: ``[{"circuit": ..., "dims": ...}, ...]``.

    Each entry resolves its own circuit (names and serialized netlists are
    cached by the resolver, so repeated entries share one object), which
    is what lets one ``/place_batch`` call span shards.
    """
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise BadRequest("'queries' must be a list of {circuit, dims} objects")
    if not raw:
        raise BadRequest("'queries' must not be empty")
    queries: List[Tuple[Any, Tuple[Dims, ...]]] = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, Mapping):
            raise BadRequest(f"'queries[{index}]' must be a {{circuit, dims}} object")
        circuit = resolver.resolve(entry)
        queries.append(
            (
                circuit,
                parse_dims(
                    entry.get("dims"),
                    circuit.num_blocks,
                    field_name=f"queries[{index}].dims",
                ),
            )
        )
    return queries


def placement_payload(placement: Placement) -> Dict[str, Any]:
    """The JSON body describing one served placement."""
    return placement.as_dict()


def routed_payload(placement: Placement, layout) -> Dict[str, Any]:
    """The JSON body describing one served placement plus its routed layout."""
    payload = placement_payload(placement)
    payload["routing"] = dict(layout.stats())
    payload["net_wirelengths"] = {
        name: round(value, 3) for name, value in layout.net_wirelengths().items()
    }
    payload["failed_nets"] = list(layout.failed_nets)
    return payload
