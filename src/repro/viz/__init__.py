"""Floorplan rendering: ASCII art for terminals, SVG for files."""

from repro.viz.ascii_art import render_ascii
from repro.viz.series import format_series_table, format_table
from repro.viz.svg import render_svg, save_svg

__all__ = ["render_ascii", "format_series_table", "format_table", "render_svg", "save_svg"]
