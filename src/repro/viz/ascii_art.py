"""Render a placed floorplan as ASCII art (Figures 5 and 7 in terminal form)."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.geometry.floorplan import FloorplanBounds, bounding_box
from repro.geometry.rect import Rect


def render_ascii(
    rects: Mapping[str, Rect],
    bounds: Optional[FloorplanBounds] = None,
    max_width: int = 80,
    max_height: int = 40,
) -> str:
    """Draw block outlines (labelled by their first letters) on a character grid.

    The floorplan is scaled down so it fits inside ``max_width`` x
    ``max_height`` characters.
    """
    if not rects:
        return "(empty floorplan)"
    if bounds is not None:
        extent_w, extent_h = bounds.width, bounds.height
    else:
        bbox = bounding_box(rects.values())
        extent_w, extent_h = bbox.x2, bbox.y2
    extent_w = max(extent_w, 1)
    extent_h = max(extent_h, 1)
    scale_x = min(1.0, (max_width - 2) / extent_w)
    scale_y = min(1.0, (max_height - 2) / extent_h)
    grid_w = max(4, int(extent_w * scale_x) + 1)
    grid_h = max(4, int(extent_h * scale_y) + 1)
    grid = [[" " for _ in range(grid_w)] for _ in range(grid_h)]

    for name, rect in rects.items():
        x0 = int(rect.x * scale_x)
        y0 = int(rect.y * scale_y)
        x1 = max(x0 + 1, int(rect.x2 * scale_x) - 1)
        y1 = max(y0 + 1, int(rect.y2 * scale_y) - 1)
        x1 = min(x1, grid_w - 1)
        y1 = min(y1, grid_h - 1)
        for x in range(x0, x1 + 1):
            _put(grid, x, y0, "-")
            _put(grid, x, y1, "-")
        for y in range(y0, y1 + 1):
            _put(grid, x0, y, "|")
            _put(grid, x1, y, "|")
        for corner_x, corner_y in ((x0, y0), (x1, y0), (x0, y1), (x1, y1)):
            _put(grid, corner_x, corner_y, "+")
        label = name[: max(1, x1 - x0 - 1)]
        label_y = (y0 + y1) // 2
        for offset, char in enumerate(label):
            _put(grid, x0 + 1 + offset, label_y, char)

    # The origin is bottom-left in layout coordinates, top-left on screen.
    lines = ["".join(row).rstrip() for row in reversed(grid)]
    return "\n".join(lines)


def _put(grid, x: int, y: int, char: str) -> None:
    if 0 <= y < len(grid) and 0 <= x < len(grid[0]):
        grid[y][x] = char
