"""Render a placed floorplan as an SVG drawing."""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Union

from repro.geometry.floorplan import FloorplanBounds, bounding_box
from repro.geometry.rect import Rect

_PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)


def render_svg(
    rects: Mapping[str, Rect],
    bounds: Optional[FloorplanBounds] = None,
    scale: float = 8.0,
    margin: float = 10.0,
) -> str:
    """Return an SVG document drawing the blocks with their names."""
    if bounds is not None:
        extent_w, extent_h = bounds.width, bounds.height
    elif rects:
        bbox = bounding_box(rects.values())
        extent_w, extent_h = bbox.x2, bbox.y2
    else:
        extent_w, extent_h = 1, 1
    width = extent_w * scale + 2 * margin
    height = extent_h * scale + 2 * margin

    def to_y(y_layout: float) -> float:
        # Flip the y axis: SVG's origin is top-left, layouts grow upwards.
        return height - margin - y_layout * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect x="{margin}" y="{margin}" width="{extent_w * scale}" height="{extent_h * scale}" '
        'fill="#f7f7f7" stroke="#333" stroke-width="1"/>',
    ]
    for i, (name, rect) in enumerate(rects.items()):
        color = _PALETTE[i % len(_PALETTE)]
        x = margin + rect.x * scale
        y = to_y(rect.y2)
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{rect.w * scale:.1f}" '
            f'height="{rect.h * scale:.1f}" fill="{color}" fill-opacity="0.6" '
            'stroke="#222" stroke-width="1"/>'
        )
        cx = margin + (rect.x + rect.w / 2.0) * scale
        cy = to_y(rect.y + rect.h / 2.0) + 3
        parts.append(
            f'<text x="{cx:.1f}" y="{cy:.1f}" font-size="10" text-anchor="middle" '
            f'font-family="monospace">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    rects: Mapping[str, Rect],
    path: Union[str, Path],
    bounds: Optional[FloorplanBounds] = None,
    scale: float = 8.0,
) -> Path:
    """Write :func:`render_svg` output to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_svg(rects, bounds, scale), encoding="utf-8")
    return path
