"""Render a placed (and optionally routed) floorplan as an SVG drawing."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Tuple, Union

from repro.geometry.floorplan import FloorplanBounds, bounding_box
from repro.geometry.rect import Rect

_PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)

#: Stroke colors for routed wires, offset from the block palette so wires
#: remain readable over the blocks they cross.
_WIRE_PALETTE = (
    "#1f3a5f", "#a34a00", "#8f1d1f", "#2e6d68", "#2f6627",
    "#8f7a0d", "#6e3f63", "#b04a56", "#5c4335", "#5f5a55",
)

#: One wire piece as layout coordinates: ((x1, y1), (x2, y2)).
Segment = Tuple[Tuple[float, float], Tuple[float, float]]


def render_svg(
    rects: Mapping[str, Rect],
    bounds: Optional[FloorplanBounds] = None,
    scale: float = 8.0,
    margin: float = 10.0,
    routes: Optional[object] = None,
) -> str:
    """Return an SVG document drawing the blocks with their names.

    ``routes`` optionally overlays routed wires: accepts a
    :class:`repro.route.RoutedLayout` or any mapping of net name to an
    object with ``segments`` and ``stubs`` sequences of layout-coordinate
    pairs.  Tree segments draw solid, pin-escape stubs draw dashed, one
    color per net.
    """
    if bounds is not None:
        extent_w, extent_h = bounds.width, bounds.height
    elif rects:
        bbox = bounding_box(rects.values())
        extent_w, extent_h = bbox.x2, bbox.y2
    else:
        extent_w, extent_h = 1, 1
    width = extent_w * scale + 2 * margin
    height = extent_h * scale + 2 * margin

    def to_x(x_layout: float) -> float:
        return margin + x_layout * scale

    def to_y(y_layout: float) -> float:
        # Flip the y axis: SVG's origin is top-left, layouts grow upwards.
        return height - margin - y_layout * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect x="{margin}" y="{margin}" width="{extent_w * scale}" height="{extent_h * scale}" '
        'fill="#f7f7f7" stroke="#333" stroke-width="1"/>',
    ]
    for i, (name, rect) in enumerate(rects.items()):
        color = _PALETTE[i % len(_PALETTE)]
        x = to_x(rect.x)
        y = to_y(rect.y2)
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{rect.w * scale:.1f}" '
            f'height="{rect.h * scale:.1f}" fill="{color}" fill-opacity="0.6" '
            'stroke="#222" stroke-width="1"/>'
        )
        cx = to_x(rect.x + rect.w / 2.0)
        cy = to_y(rect.y + rect.h / 2.0) + 3
        parts.append(
            f'<text x="{cx:.1f}" y="{cy:.1f}" font-size="10" text-anchor="middle" '
            f'font-family="monospace">{name}</text>'
        )
    if routes is not None:
        parts.extend(_wire_elements(routes, to_x, to_y))
    parts.append("</svg>")
    return "\n".join(parts)


def _wire_elements(routes: object, to_x, to_y) -> List[str]:
    """SVG line elements for every routed net's segments and stubs."""
    nets = getattr(routes, "nets", routes)
    parts: List[str] = []
    for i, (name, net) in enumerate(nets.items()):  # type: ignore[union-attr]
        color = _WIRE_PALETTE[i % len(_WIRE_PALETTE)]
        parts.append(f'<g stroke="{color}" stroke-width="1.5" stroke-linecap="round">')
        parts.extend(_lines(getattr(net, "segments", ()), to_x, to_y, dashed=False))
        parts.extend(_lines(getattr(net, "stubs", ()), to_x, to_y, dashed=True))
        parts.append("</g>")
    return parts


def _lines(segments: Iterable[Segment], to_x, to_y, dashed: bool) -> List[str]:
    dash = ' stroke-dasharray="3 2"' if dashed else ""
    return [
        f'<line x1="{to_x(x1):.1f}" y1="{to_y(y1):.1f}" '
        f'x2="{to_x(x2):.1f}" y2="{to_y(y2):.1f}"{dash}/>'
        for (x1, y1), (x2, y2) in segments
    ]


def save_svg(
    rects: Mapping[str, Rect],
    path: Union[str, Path],
    bounds: Optional[FloorplanBounds] = None,
    scale: float = 8.0,
    routes: Optional[object] = None,
) -> Path:
    """Write :func:`render_svg` output to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_svg(rects, bounds, scale, routes=routes), encoding="utf-8")
    return path
