"""Plain-text tables for experiment reports (no plotting dependency needed)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] = ()) -> str:
    """Format dictionaries as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.
    """
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in rendered
    ]
    return "\n".join([header, separator, *body])


def format_series_table(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    x_label: str = "x",
) -> str:
    """Format one or more y-series over shared x values (the figure-style output)."""
    rows: List[Dict[str, object]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()])


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
