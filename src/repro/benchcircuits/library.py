"""Lookup of all Table 1 benchmark circuits."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.benchcircuits.mixer import mixer
from repro.benchcircuits.opamps import single_ended_opamp, two_stage_opamp
from repro.benchcircuits.synthetic import (
    benchmark24,
    circ01,
    circ02,
    circ06,
    circ08,
    tso_cascode,
)
from repro.circuit.netlist import Circuit

#: The published Table 1 statistics: name -> (blocks, nets, terminals).
TABLE1: Dict[str, Dict[str, int]] = {
    "circ01": {"blocks": 4, "nets": 4, "terminals": 12},
    "circ02": {"blocks": 6, "nets": 4, "terminals": 18},
    "circ06": {"blocks": 6, "nets": 4, "terminals": 18},
    "two_stage_opamp": {"blocks": 5, "nets": 9, "terminals": 22},
    "single_ended_opamp": {"blocks": 9, "nets": 14, "terminals": 32},
    "mixer": {"blocks": 8, "nets": 6, "terminals": 15},
    "circ08": {"blocks": 8, "nets": 8, "terminals": 24},
    "tso_cascode": {"blocks": 21, "nets": 36, "terminals": 46},
    "benchmark24": {"blocks": 24, "nets": 48, "terminals": 48},
}

#: Aliases used by the paper's tables.
ALIASES: Dict[str, str] = {
    "tso": "two_stage_opamp",
    "seo": "single_ended_opamp",
    "twostage opamp": "two_stage_opamp",
    "singleended opamp": "single_ended_opamp",
    "tso-cascode": "tso_cascode",
}

_BUILDERS: Dict[str, Callable[[], Circuit]] = {
    "circ01": circ01,
    "circ02": circ02,
    "circ06": circ06,
    "two_stage_opamp": two_stage_opamp,
    "single_ended_opamp": single_ended_opamp,
    "mixer": mixer,
    "circ08": circ08,
    "tso_cascode": tso_cascode,
    "benchmark24": benchmark24,
}


def benchmark_names() -> List[str]:
    """Benchmark names in the order the paper's tables list them."""
    return list(TABLE1)


def get_benchmark(name: str) -> Circuit:
    """Build the benchmark circuit called ``name`` (aliases accepted)."""
    key = name.strip().lower()
    key = ALIASES.get(key, key)
    try:
        return _BUILDERS[key]()
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from exc


def all_benchmarks() -> Dict[str, Circuit]:
    """Build every benchmark circuit, keyed by canonical name."""
    return {name: builder() for name, builder in _BUILDERS.items()}
