"""Operational amplifier benchmarks: the two-stage and single-ended opamps.

Block/net/terminal counts match Table 1 of the paper:

* two-stage opamp — 5 blocks, 9 nets, 22 terminals
* single-ended opamp — 9 blocks, 14 nets, 32 terminals
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.devices import DeviceType
from repro.circuit.netlist import Circuit

# Pin offset tables reused by the opamp blocks.
_DIFF_PAIR_PINS = {
    "inp": (0.1, 0.9),
    "inn": (0.9, 0.9),
    "outp": (0.25, 0.1),
    "outn": (0.75, 0.1),
    "tail": (0.5, 0.05),
    "b": (0.5, 0.5),
}
_MIRROR_PINS = {
    "ref": (0.15, 0.5),
    "out": (0.85, 0.5),
    "g": (0.5, 0.9),
    "common": (0.5, 0.1),
    "b": (0.5, 0.5),
}
_MOS_PINS = {"d": (0.2, 0.6), "g": (0.5, 0.9), "s": (0.8, 0.6), "b": (0.5, 0.3)}
_CAP_PINS = {"top": (0.5, 0.85), "bottom": (0.5, 0.15), "shield": (0.05, 0.05)}
_RES_PINS = {"a": (0.1, 0.1), "rb": (0.9, 0.1)}


def two_stage_opamp() -> Circuit:
    """A Miller-compensated two-stage opamp as five layout modules."""
    builder = CircuitBuilder("two_stage_opamp")
    builder.block("dp", 8, 36, 6, 28, DeviceType.DIFF_PAIR, generator="diff_pair",
                  symmetry_group="input", pins=_DIFF_PAIR_PINS)
    builder.block("load", 8, 32, 6, 24, DeviceType.CURRENT_MIRROR, generator="current_mirror",
                  pins=_MIRROR_PINS)
    builder.block("tail", 6, 24, 6, 20, DeviceType.NMOS, generator="folded_mosfet",
                  pins=_MOS_PINS)
    builder.block("cs", 6, 30, 6, 26, DeviceType.PMOS, generator="folded_mosfet",
                  pins=_MOS_PINS)
    builder.block("cc", 8, 40, 8, 40, DeviceType.CAPACITOR, generator="mim_capacitor",
                  pins=_CAP_PINS)

    builder.net("inp", ("dp", "inp"), external=True, io_position=(0.0, 0.7))
    builder.net("inn", ("dp", "inn"), external=True, io_position=(0.0, 0.3))
    builder.net("n1", ("dp", "outp"), ("load", "ref"), ("load", "g"))
    builder.net("n2", ("dp", "outn"), ("load", "out"), ("cs", "g"), ("cc", "top"), weight=2.0)
    builder.net("out", ("cs", "d"), ("cc", "bottom"), external=True, io_position=(1.0, 0.5))
    builder.net("ntail", ("dp", "tail"), ("tail", "d"))
    builder.net("vbias", ("tail", "g"), external=True, io_position=(0.0, 0.0))
    builder.net("vdd", ("load", "common"), ("load", "b"), ("cs", "s"), ("cs", "b"),
                external=True, io_position=(0.5, 1.0))
    builder.net("vss", ("tail", "s"), ("tail", "b"), ("dp", "b"), ("cc", "shield"),
                external=True, io_position=(0.5, 0.0))

    builder.symmetry("input", self_symmetric=("dp", "load"))
    return builder.build()


def single_ended_opamp() -> Circuit:
    """A single-ended two-stage opamp with bias branch, zero-nulling resistor and load."""
    builder = CircuitBuilder("single_ended_opamp")
    builder.block("dp", 8, 36, 6, 28, DeviceType.DIFF_PAIR, generator="diff_pair",
                  symmetry_group="input", pins=_DIFF_PAIR_PINS)
    builder.block("load", 8, 32, 6, 24, DeviceType.CURRENT_MIRROR, generator="current_mirror",
                  pins=_MIRROR_PINS)
    builder.block("tail", 6, 24, 6, 20, DeviceType.NMOS, generator="folded_mosfet",
                  pins=_MOS_PINS)
    builder.block("cs", 6, 30, 6, 26, DeviceType.PMOS, generator="folded_mosfet",
                  pins=_MOS_PINS)
    builder.block("cc", 8, 36, 8, 36, DeviceType.CAPACITOR, generator="mim_capacitor",
                  pins=_CAP_PINS)
    builder.block("rz", 6, 24, 6, 24, DeviceType.RESISTOR, generator="poly_resistor",
                  pins=_RES_PINS)
    builder.block("bias1", 6, 20, 6, 18, DeviceType.NMOS, generator="folded_mosfet",
                  pins=_MOS_PINS)
    builder.block("bias2", 6, 20, 6, 18, DeviceType.PMOS, generator="folded_mosfet",
                  pins=_MOS_PINS)
    builder.block("cl", 8, 36, 8, 36, DeviceType.CAPACITOR, generator="mim_capacitor",
                  pins=_CAP_PINS)

    builder.net("inp", ("dp", "inp"), external=True, io_position=(0.0, 0.7))
    builder.net("inn", ("dp", "inn"), external=True, io_position=(0.0, 0.3))
    builder.net("n1", ("dp", "outp"), ("load", "ref"), ("load", "g"))
    builder.net("n2", ("dp", "outn"), ("load", "out"), ("cs", "g"), ("rz", "rb"), weight=2.0)
    builder.net("ncomp", ("cc", "top"), ("rz", "a"))
    builder.net("out", ("cs", "d"), ("cc", "bottom"), ("cl", "top"),
                external=True, io_position=(1.0, 0.5))
    builder.net("ntail", ("dp", "tail"), ("tail", "d"))
    builder.net("vbias1", ("tail", "g"), ("bias1", "g"), ("bias1", "d"))
    builder.net("vbias2", ("bias2", "g"), ("bias2", "d"), external=True, io_position=(0.0, 0.1))
    builder.net("vdd", ("load", "common"), ("load", "b"), ("cs", "s"), ("cs", "b"),
                external=True, io_position=(0.5, 1.0))
    builder.net("vss", ("tail", "s"), ("tail", "b"), ("dp", "b"), ("bias1", "s"),
                external=True, io_position=(0.5, 0.0))
    builder.net("vdd2", ("bias2", "s"), external=True, io_position=(0.2, 1.0))
    builder.net("agnd", ("cl", "bottom"), external=True, io_position=(1.0, 0.0))
    builder.net("guard", ("bias1", "b"), external=True, io_position=(0.0, 0.0))

    builder.symmetry("input", self_symmetric=("dp", "load"))
    return builder.build()
