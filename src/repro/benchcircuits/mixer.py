"""The mixer benchmark: 8 blocks, 6 nets, 15 terminals (Table 1)."""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.devices import DeviceType
from repro.circuit.netlist import Circuit

_DIFF_PAIR_PINS = {
    "inp": (0.1, 0.9),
    "inn": (0.9, 0.9),
    "outp": (0.25, 0.1),
    "outn": (0.75, 0.1),
    "tail": (0.5, 0.05),
}
_MOS_PINS = {"d": (0.2, 0.6), "g": (0.5, 0.9), "s": (0.8, 0.6)}
_CAP_PINS = {"top": (0.5, 0.85), "bottom": (0.5, 0.15)}
_RES_PINS = {"a": (0.1, 0.1), "rb": (0.9, 0.1)}


def mixer() -> Circuit:
    """A Gilbert-cell style downconversion mixer as eight layout modules."""
    builder = CircuitBuilder("mixer")
    builder.block("rf_dp", 8, 32, 6, 26, DeviceType.DIFF_PAIR, generator="diff_pair",
                  symmetry_group="rf", pins=_DIFF_PAIR_PINS)
    builder.block("lo_sw1", 8, 28, 6, 24, DeviceType.DIFF_PAIR, generator="diff_pair",
                  symmetry_group="lo", pins=_DIFF_PAIR_PINS)
    builder.block("lo_sw2", 8, 28, 6, 24, DeviceType.DIFF_PAIR, generator="diff_pair",
                  symmetry_group="lo", pins=_DIFF_PAIR_PINS)
    builder.block("load_r1", 6, 22, 6, 24, DeviceType.RESISTOR, generator="poly_resistor",
                  symmetry_group="load", pins=_RES_PINS)
    builder.block("load_r2", 6, 22, 6, 24, DeviceType.RESISTOR, generator="poly_resistor",
                  symmetry_group="load", pins=_RES_PINS)
    builder.block("tail", 6, 24, 6, 20, DeviceType.NMOS, generator="folded_mosfet",
                  pins=_MOS_PINS)
    builder.block("c_out1", 8, 30, 8, 30, DeviceType.CAPACITOR, generator="mim_capacitor",
                  symmetry_group="out", pins=_CAP_PINS)
    builder.block("c_out2", 8, 30, 8, 30, DeviceType.CAPACITOR, generator="mim_capacitor",
                  symmetry_group="out", pins=_CAP_PINS)

    builder.net("rf", ("rf_dp", "inp"), external=True, io_position=(0.0, 0.5))
    builder.net("n_rfp", ("rf_dp", "outp"), ("lo_sw1", "tail"))
    builder.net("n_rfn", ("rf_dp", "outn"), ("lo_sw2", "tail"))
    builder.net("ifp", ("lo_sw1", "outp"), ("load_r1", "a"), ("c_out1", "top"), weight=1.5)
    builder.net("ifn", ("lo_sw2", "outp"), ("load_r2", "a"), ("c_out2", "top"), weight=1.5)
    builder.net("bias", ("tail", "d"), ("rf_dp", "tail"), ("load_r1", "rb"), ("load_r2", "rb"))

    builder.symmetry("lo", pairs=(("lo_sw1", "lo_sw2"),))
    builder.symmetry("load", pairs=(("load_r1", "load_r2"),))
    builder.symmetry("out", pairs=(("c_out1", "c_out2"),))
    return builder.build()
