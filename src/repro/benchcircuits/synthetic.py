"""Synthetic benchmark circuits (circ01, circ02, circ06, circ08, tso-cascode, benchmark24).

The paper gives only the block / net / terminal counts of these in-house
circuits (Table 1); the netlists here are synthetic but reproduce those
counts exactly and provide realistic block dimension bounds so the
generation algorithm sees the same problem sizes.

For ``tso-cascode`` (36 nets, 46 terminals) and ``benchmark24`` (48 nets,
48 terminals) the published counts imply many single-terminal nets; those
are modelled as external nets whose second connection point is an I/O pin
on the floorplan boundary, so their wirelength contribution remains
meaningful.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.circuit.builder import CircuitBuilder
from repro.circuit.devices import DeviceType
from repro.circuit.netlist import Circuit

#: Device types cycled through when building the larger synthetic circuits.
_DEVICE_CYCLE = (
    DeviceType.DIFF_PAIR,
    DeviceType.CURRENT_MIRROR,
    DeviceType.NMOS,
    DeviceType.PMOS,
    DeviceType.CAPACITOR,
    DeviceType.RESISTOR,
)

#: Dimension bounds cycled through (min_w, max_w, min_h, max_h).
_BOUND_CYCLE = (
    (8, 30, 6, 24),
    (8, 28, 6, 22),
    (6, 22, 6, 20),
    (6, 24, 6, 22),
    (8, 32, 8, 32),
    (6, 20, 6, 26),
)


def _add_blocks(builder: CircuitBuilder, count: int, prefix: str = "b") -> List[str]:
    """Add ``count`` blocks with cycling device types and bounds; return their names."""
    names = []
    for i in range(count):
        name = f"{prefix}{i}"
        min_w, max_w, min_h, max_h = _BOUND_CYCLE[i % len(_BOUND_CYCLE)]
        builder.block(
            name,
            min_w,
            max_w,
            min_h,
            max_h,
            device_type=_DEVICE_CYCLE[i % len(_DEVICE_CYCLE)],
        )
        names.append(name)
    return names


def _boundary_io(index: int, total: int) -> Tuple[float, float]:
    """Spread external I/O positions evenly around the floorplan boundary."""
    fraction = (index + 0.5) / max(total, 1)
    side = index % 4
    if side == 0:
        return (0.0, fraction)
    if side == 1:
        return (1.0, fraction)
    if side == 2:
        return (fraction, 0.0)
    return (fraction, 1.0)


def circ01() -> Circuit:
    """circ01 — 4 blocks, 4 nets, 12 terminals (every net touches three blocks)."""
    builder = CircuitBuilder("circ01")
    names = _add_blocks(builder, 4)
    builder.simple_net("n1", [names[0], names[1], names[2]])
    builder.simple_net("n2", [names[1], names[2], names[3]])
    builder.simple_net("n3", [names[0], names[2], names[3]])
    builder.simple_net("n4", [names[0], names[1], names[3]])
    return builder.build()


def circ02() -> Circuit:
    """circ02 — 6 blocks, 4 nets, 18 terminals (two 5-pin and two 4-pin nets)."""
    builder = CircuitBuilder("circ02")
    names = _add_blocks(builder, 6)
    builder.simple_net("n1", names[0:5])
    builder.simple_net("n2", names[1:6])
    builder.simple_net("n3", [names[0], names[2], names[4], names[5]])
    builder.simple_net("n4", [names[1], names[3], names[4], names[5]])
    return builder.build()


def circ06() -> Circuit:
    """circ06 — 6 blocks, 4 nets, 18 terminals (one global 6-pin net plus three 4-pin nets)."""
    builder = CircuitBuilder("circ06")
    names = _add_blocks(builder, 6)
    builder.simple_net("n1", names, weight=0.5)
    builder.simple_net("n2", names[0:4])
    builder.simple_net("n3", names[2:6])
    builder.simple_net("n4", [names[0], names[1], names[4], names[5]])
    return builder.build()


def circ08() -> Circuit:
    """circ08 — 8 blocks, 8 nets, 24 terminals (a ring of three-pin nets)."""
    builder = CircuitBuilder("circ08")
    names = _add_blocks(builder, 8)
    for i in range(8):
        builder.simple_net(
            f"n{i + 1}", [names[i], names[(i + 1) % 8], names[(i + 2) % 8]]
        )
    return builder.build()


def tso_cascode() -> Circuit:
    """tso-cascode — 21 blocks, 36 nets, 46 terminals.

    A cascode arrangement of op-amp stages: ten two-terminal internal nets
    chain neighbouring stages and twenty-six external nets bring in bias,
    supply and I/O connections (10 * 2 + 26 = 46 terminals).
    """
    builder = CircuitBuilder("tso_cascode")
    names = _add_blocks(builder, 21, prefix="m")
    internal_pairs = [(names[i], names[i + 1]) for i in range(10)]
    for i, (left, right) in enumerate(internal_pairs):
        builder.simple_net(f"int{i + 1}", [left, right])
    external_count = 26
    for i in range(external_count):
        block = names[i % len(names)]
        builder.net(
            f"ext{i + 1}",
            (block, "c"),
            external=True,
            io_position=_boundary_io(i, external_count),
        )
    return builder.build()


def benchmark24() -> Circuit:
    """benchmark24 — 24 blocks, 48 nets, 48 terminals (two external nets per block)."""
    builder = CircuitBuilder("benchmark24")
    names = _add_blocks(builder, 24, prefix="m")
    net_index = 0
    for block in names:
        for _ in range(2):
            builder.net(
                f"ext{net_index + 1}",
                (block, "c"),
                external=True,
                io_position=_boundary_io(net_index, 48),
            )
            net_index += 1
    return builder.build()
