"""The paper's Table 1 benchmark circuits.

The original netlists are not published; these circuits are rebuilt from
analog sub-structures (differential pairs, current mirrors, cascodes,
passives) so that the block / net / terminal counts match Table 1 exactly
(see ``TABLE1`` in :mod:`repro.benchcircuits.library`).
"""

from repro.benchcircuits.library import (
    TABLE1,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
)

__all__ = ["TABLE1", "all_benchmarks", "benchmark_names", "get_benchmark"]
