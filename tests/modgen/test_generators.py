"""Tests for the analog module generators."""

import pytest
from hypothesis import given, strategies as st

from repro.modgen.base import GRID_UM, Footprint, SizingParameter, to_grid
from repro.modgen.capacitor import MimCapacitorGenerator
from repro.modgen.current_mirror import CurrentMirrorGenerator
from repro.modgen.diffpair import DifferentialPairGenerator
from repro.modgen.mosfet import FoldedMosfetGenerator
from repro.modgen.resistor import PolyResistorGenerator

ALL_GENERATORS = [
    FoldedMosfetGenerator(),
    DifferentialPairGenerator(),
    CurrentMirrorGenerator(),
    MimCapacitorGenerator(),
    PolyResistorGenerator(),
]


class TestBaseHelpers:
    def test_to_grid_rounds_up(self):
        assert to_grid(0.1) == 1
        assert to_grid(GRID_UM) == 1
        assert to_grid(GRID_UM * 3.2) == 4

    def test_to_grid_rejects_negative(self):
        with pytest.raises(ValueError):
            to_grid(-1.0)

    def test_footprint_requires_positive_dims(self):
        with pytest.raises(ValueError):
            Footprint(0, 4)

    def test_sizing_parameter_bounds(self):
        with pytest.raises(ValueError):
            SizingParameter("w", 5.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            SizingParameter("w", 1.0, 5.0, 9.0)
        assert SizingParameter("w", 1.0, 5.0, 2.0).clamp(9.0) == 5.0


@pytest.mark.parametrize("generator", ALL_GENERATORS, ids=lambda g: g.name)
class TestGeneratorContract:
    def test_default_footprint_is_positive(self, generator):
        footprint = generator.footprint()
        assert footprint.width > 0 and footprint.height > 0

    def test_pin_offsets_in_unit_square(self, generator):
        footprint = generator.footprint()
        for fx, fy in footprint.pin_offsets.values():
            assert 0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0

    def test_resolve_params_rejects_unknown(self, generator):
        with pytest.raises(KeyError):
            generator.resolve_params({"no_such_parameter": 1.0})

    def test_resolve_params_clamps(self, generator):
        param = generator.parameters()[0]
        resolved = generator.resolve_params({param.name: param.maximum * 10})
        assert resolved[param.name] == param.maximum

    def test_dimension_bounds_bracket_defaults(self, generator):
        min_w, max_w, min_h, max_h = generator.dimension_bounds()
        footprint = generator.footprint()
        assert min_w <= footprint.width <= max_w
        assert min_h <= footprint.height <= max_h

    def test_parameter_lookup(self, generator):
        name = generator.parameters()[0].name
        assert generator.parameter(name).name == name
        with pytest.raises(KeyError):
            generator.parameter("missing")


class TestMosfetGeometry:
    def test_width_grows_with_fingers(self):
        generator = FoldedMosfetGenerator()
        narrow = generator.footprint(width=40, length=0.5, fingers=2)
        wide = generator.footprint(width=40, length=0.5, fingers=8)
        assert wide.width > narrow.width
        assert wide.height < narrow.height

    def test_height_grows_with_device_width(self):
        generator = FoldedMosfetGenerator()
        small = generator.footprint(width=10, length=0.5, fingers=4)
        large = generator.footprint(width=80, length=0.5, fingers=4)
        assert large.height > small.height

    def test_fingers_for_aspect_prefers_square(self):
        generator = FoldedMosfetGenerator()
        fingers = generator.fingers_for_aspect(80.0, 0.5)
        footprint = generator.footprint(width=80.0, length=0.5, fingers=fingers)
        aspect = footprint.width / footprint.height
        assert 0.3 < aspect < 3.0

    @given(st.floats(1.0, 200.0), st.floats(0.18, 5.0))
    def test_footprint_monotone_in_length(self, width, length):
        generator = FoldedMosfetGenerator()
        short = generator.footprint(width=width, length=length, fingers=4)
        long = generator.footprint(width=width, length=min(5.0, length * 1.5), fingers=4)
        assert long.width >= short.width


class TestPassiveGeometry:
    def test_capacitor_area_grows_with_capacitance(self):
        generator = MimCapacitorGenerator()
        small = generator.footprint(capacitance=100)
        large = generator.footprint(capacitance=2000)
        assert large.area > small.area

    def test_capacitor_aspect_shapes_plate(self):
        generator = MimCapacitorGenerator()
        wide = generator.footprint(capacitance=1000, aspect=4.0)
        tall = generator.footprint(capacitance=1000, aspect=0.25)
        assert wide.width > wide.height
        assert tall.height > tall.width

    def test_capacitor_rejects_bad_density(self):
        with pytest.raises(ValueError):
            MimCapacitorGenerator(density_ff_per_um2=0.0)

    def test_resistor_height_drops_with_segments(self):
        generator = PolyResistorGenerator()
        few = generator.footprint(resistance=50000, segments=2)
        many = generator.footprint(resistance=50000, segments=12)
        assert many.height < few.height
        assert many.width > few.width

    def test_resistor_rejects_bad_sheet(self):
        with pytest.raises(ValueError):
            PolyResistorGenerator(sheet_ohms=-1.0)


class TestCompositeGenerators:
    def test_diff_pair_wider_than_single_device(self):
        single = FoldedMosfetGenerator().footprint(width=40, length=0.5, fingers=4)
        pair = DifferentialPairGenerator().footprint(width=40, length=0.5, fingers=4)
        assert pair.width > single.width

    def test_mirror_width_grows_with_ratio(self):
        generator = CurrentMirrorGenerator()
        unit = generator.footprint(width=20, length=1.0, ratio=1)
        big = generator.footprint(width=20, length=1.0, ratio=4)
        assert big.width > unit.width
