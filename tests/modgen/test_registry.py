"""Tests for the module generator registry."""

import pytest

from repro.modgen.base import Footprint, ModuleGenerator, SizingParameter
from repro.modgen.registry import available_generators, create_generator, register_generator


class TestRegistry:
    def test_builtin_generators_registered(self):
        names = available_generators()
        for expected in (
            "folded_mosfet",
            "diff_pair",
            "current_mirror",
            "mim_capacitor",
            "poly_resistor",
        ):
            assert expected in names

    def test_create_generator(self):
        generator = create_generator("folded_mosfet")
        assert generator.name == "folded_mosfet"
        assert generator.footprint().width > 0

    def test_create_unknown_generator(self):
        with pytest.raises(KeyError):
            create_generator("warp_drive")

    def test_register_custom_generator(self):
        class DummyGenerator(ModuleGenerator):
            name = "dummy_for_test"

            def parameters(self):
                return (SizingParameter("size", 1.0, 10.0, 2.0),)

            def footprint(self, **params):
                values = self.resolve_params(params)
                side = int(values["size"])
                return Footprint(side, side)

        register_generator(DummyGenerator)
        assert "dummy_for_test" in available_generators()
        assert create_generator("dummy_for_test").footprint(size=4).dims == (4, 4)

    def test_register_requires_name(self):
        class Nameless(ModuleGenerator):
            name = ""

            def parameters(self):
                return ()

            def footprint(self, **params):
                return Footprint(1, 1)

        with pytest.raises(ValueError):
            register_generator(Nameless)
