"""Tests for the wall-clock timer and duration formatting."""

import time

import pytest

from repro.utils.timer import Timer, format_duration


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_elapsed_available_inside_block(self):
        with Timer() as timer:
            assert timer.elapsed >= 0.0

    def test_elapsed_frozen_after_exit(self):
        with Timer() as timer:
            pass
        first = timer.elapsed
        time.sleep(0.005)
        assert timer.elapsed == first

    def test_runs_on_the_span_clock(self):
        from repro.obs import clock

        before = clock()
        with Timer() as timer:
            pass
        assert 0.0 <= timer.elapsed <= clock() - before


class TestTimerLaps:
    def test_laps_accumulate_in_order(self):
        with Timer() as timer:
            first = timer.lap()
            time.sleep(0.005)
            second = timer.lap()
        assert timer.laps == [first, second]
        assert second >= 0.004

    def test_laps_measure_since_previous_lap_not_start(self):
        with Timer() as timer:
            time.sleep(0.01)
            timer.lap()
            second = timer.lap()
        # The second lap starts at the first checkpoint, so it must not
        # include the initial sleep.
        assert second < 0.01

    def test_laps_sum_to_at_most_elapsed(self):
        with Timer() as timer:
            for _ in range(3):
                timer.lap()
        assert sum(timer.laps) <= timer.elapsed

    def test_lap_outside_block_rejected(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            timer.lap()
        with timer:
            timer.lap()
        with pytest.raises(RuntimeError):
            timer.lap()


class TestFormatDuration:
    def test_sub_second_uses_milliseconds(self):
        assert format_duration(0.0123) == "12.30ms"

    def test_seconds_only(self):
        assert format_duration(42) == "42s"

    def test_minutes_and_seconds(self):
        assert format_duration(21 * 60 + 12) == "21m12s"

    def test_hours_minutes_seconds_matches_paper_style(self):
        assert format_duration(1 * 3600 + 42 * 60 + 13) == "1h42m13s"

    def test_zero_minutes_shown_when_hours_present(self):
        assert format_duration(3600 + 5) == "1h0m5s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)
