"""Tests for the logging helpers, particularly console-handler idempotency."""

import logging

import pytest

from repro.utils.logging_utils import enable_console_logging, get_logger


@pytest.fixture(autouse=True)
def restore_repro_logger():
    """Leave the ``repro`` root logger exactly as we found it."""
    logger = logging.getLogger("repro")
    handlers = list(logger.handlers)
    level = logger.level
    yield
    logger.handlers = handlers
    logger.setLevel(level)


class TestGetLogger:
    def test_namespaces_bare_names(self):
        assert get_logger("service").name == "repro.service"

    def test_keeps_already_namespaced_names(self):
        assert get_logger("repro.service").name == "repro.service"


class TestEnableConsoleLogging:
    def test_attaches_one_stream_handler(self):
        logger = logging.getLogger("repro")
        logger.handlers = []
        handler = enable_console_logging(logging.INFO)
        assert handler in logger.handlers
        assert handler.level == logging.INFO
        assert logger.level == logging.INFO

    def test_repeated_calls_never_stack_handlers(self):
        logger = logging.getLogger("repro")
        logger.handlers = []
        first = enable_console_logging()
        second = enable_console_logging()
        assert first is second
        assert len(logger.handlers) == 1

    def test_second_call_updates_level_of_existing_handler(self):
        # The historical bug: a second call with a different level found
        # the existing handler and returned it unchanged, so the new
        # level never took effect.
        logger = logging.getLogger("repro")
        logger.handlers = []
        handler = enable_console_logging(logging.INFO)
        again = enable_console_logging(logging.DEBUG)
        assert again is handler
        assert handler.level == logging.DEBUG
        assert logger.level == logging.DEBUG
        assert len(logger.handlers) == 1

    def test_second_call_can_raise_the_level_too(self):
        logger = logging.getLogger("repro")
        logger.handlers = []
        handler = enable_console_logging(logging.DEBUG)
        enable_console_logging(logging.WARNING)
        assert handler.level == logging.WARNING
