"""Tests for the RNG helpers."""

import random

from repro.utils.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_from_int_seed_is_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_of_existing_rng(self):
        rng = random.Random(0)
        assert make_rng(rng) is rng

    def test_none_seed_returns_rng(self):
        assert isinstance(make_rng(None), random.Random)


class TestSpawnRng:
    def test_child_is_independent_instance(self):
        parent = make_rng(0)
        child = spawn_rng(parent)
        assert child is not parent

    def test_same_parent_state_gives_same_child(self):
        child_a = spawn_rng(make_rng(5))
        child_b = spawn_rng(make_rng(5))
        assert child_a.random() == child_b.random()

    def test_salt_changes_child_stream(self):
        child_a = spawn_rng(make_rng(5), salt=1)
        child_b = spawn_rng(make_rng(5), salt=2)
        assert child_a.random() != child_b.random()

    def test_spawning_does_not_alias_parent_stream(self):
        parent = make_rng(9)
        spawn_rng(parent)
        # The parent keeps producing values after spawning.
        assert 0.0 <= parent.random() < 1.0
