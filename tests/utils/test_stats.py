"""Tests for the running statistics accumulator."""

import math

from hypothesis import given, strategies as st

from repro.utils.stats import RunningStats, summarize


class TestRunningStats:
    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.variance == 0.0

    def test_mean_and_extrema(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_variance_matches_direct_formula(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = RunningStats()
        stats.extend(values)
        assert math.isclose(stats.variance, 4.0)
        assert math.isclose(stats.stddev, 2.0)

    def test_merge_equals_single_stream(self):
        left = RunningStats()
        right = RunningStats()
        left.extend([1.0, 2.0, 3.0])
        right.extend([10.0, 20.0])
        merged = left.merge(right)
        combined = RunningStats()
        combined.extend([1.0, 2.0, 3.0, 10.0, 20.0])
        assert merged.count == combined.count
        assert math.isclose(merged.mean, combined.mean)
        assert math.isclose(merged.variance, combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.extend([1.0, 5.0])
        merged = stats.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == 3.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_mean_matches_python_mean(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert math.isclose(stats.mean, sum(values) / len(values), rel_tol=1e-9, abs_tol=1e-6)


class TestSummarize:
    def test_summary_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert set(summary) == {"count", "mean", "std", "min", "max"}
        assert summary["count"] == 3.0

    def test_empty_iterable(self):
        summary = summarize([])
        assert summary["count"] == 0.0
        assert summary["mean"] == 0.0
