"""Edge-case tests pinning down the MicroBatcher contract.

Everything runs on a private event loop via ``asyncio.run`` (the suite
does not depend on an async test plugin).  The dispatch doubles record
every batch they receive, so the tests can assert *how* items were
grouped, not just what came back.
"""

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import DeadlineExceeded


class RecordingDispatch:
    """Echo dispatch that remembers each batch (optionally slowly)."""

    def __init__(self, delay=0.0):
        self.batches = []
        self.delay = delay

    async def __call__(self, items):
        self.batches.append(list(items))
        if self.delay:
            await asyncio.sleep(self.delay)
        return [f"result:{item}" for item in items]

    @property
    def dispatched_items(self):
        return [item for batch in self.batches for item in batch]


class TestCoalescing:
    def test_single_request_flushes_after_window(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.005, max_batch=8)
            result = await batcher.submit("a")
            await batcher.close()
            return dispatch, result

        dispatch, result = asyncio.run(scenario())
        assert result == "result:a"
        assert dispatch.batches == [["a"]]

    def test_concurrent_submissions_coalesce_into_one_batch(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.02, max_batch=16)
            results = await asyncio.gather(
                *(batcher.submit(f"q{i}") for i in range(6))
            )
            await batcher.close()
            return dispatch, results

        dispatch, results = asyncio.run(scenario())
        assert results == [f"result:q{i}" for i in range(6)]
        assert len(dispatch.batches) == 1
        assert dispatch.batches[0] == [f"q{i}" for i in range(6)]

    def test_full_batch_dispatches_without_waiting_for_window(self):
        async def scenario():
            dispatch = RecordingDispatch()
            # A window long enough that reaching it would time the test out.
            batcher = MicroBatcher(dispatch, window_seconds=30.0, max_batch=4)
            results = await asyncio.wait_for(
                asyncio.gather(*(batcher.submit(i) for i in range(4))), timeout=5.0
            )
            await batcher.close()
            return dispatch, results

        dispatch, results = asyncio.run(scenario())
        assert results == [f"result:{i}" for i in range(4)]
        assert [len(b) for b in dispatch.batches] == [4]


class TestOverflow:
    def test_overflow_splits_into_multiple_batches(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.01, max_batch=4)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(11))
            )
            await batcher.close()
            return dispatch, results, batcher.stats()

        dispatch, results, stats = asyncio.run(scenario())
        assert results == [f"result:{i}" for i in range(11)]
        assert [len(b) for b in dispatch.batches] == [4, 4, 3]
        # Two batches filled and flushed immediately; the remainder waited
        # for its own window instead of queueing behind them.
        assert stats["flushes_full"] == 2
        assert stats["flushes_window"] == 1
        # Submission order survives splitting.
        assert dispatch.dispatched_items == list(range(11))

    def test_nothing_waits_behind_a_full_batch(self):
        async def scenario():
            dispatch = RecordingDispatch(delay=0.05)
            batcher = MicroBatcher(dispatch, window_seconds=0.005, max_batch=2)
            loop = asyncio.get_running_loop()
            started = loop.time()
            await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            elapsed = loop.time() - started
            await batcher.close()
            return dispatch, elapsed

        dispatch, elapsed = asyncio.run(scenario())
        assert [len(b) for b in dispatch.batches] == [2, 2]
        # The two dispatches overlap instead of queueing serially.
        assert elapsed < 0.09


class TestDeadlinesAndCancellation:
    def test_expired_items_fail_before_dispatch(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.02, max_batch=8)
            loop = asyncio.get_running_loop()
            expired = asyncio.ensure_future(
                batcher.submit("dead", deadline=loop.time() - 0.001)
            )
            alive = asyncio.ensure_future(batcher.submit("alive"))
            results = await asyncio.gather(expired, alive, return_exceptions=True)
            await batcher.close()
            return dispatch, results, batcher.stats()

        dispatch, (dead, alive), stats = asyncio.run(scenario())
        assert isinstance(dead, DeadlineExceeded)
        assert alive == "result:alive"
        # The expired item never consumed dispatch work.
        assert dispatch.dispatched_items == ["alive"]
        assert stats["expired"] == 1

    def test_cancelled_item_is_dropped_from_its_batch(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.02, max_batch=8)
            doomed = asyncio.ensure_future(batcher.submit("doomed"))
            survivor = asyncio.ensure_future(batcher.submit("survivor"))
            await asyncio.sleep(0)  # both items enqueued, window armed
            doomed.cancel()
            result = await survivor
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await batcher.close()
            return dispatch, result, batcher.stats()

        dispatch, result, stats = asyncio.run(scenario())
        assert result == "result:survivor"
        assert dispatch.dispatched_items == ["survivor"]
        assert stats["cancelled"] == 1

    def test_all_cancelled_means_empty_flush_and_no_dispatch(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.01, max_batch=8)
            doomed = asyncio.ensure_future(batcher.submit("doomed"))
            await asyncio.sleep(0)
            doomed.cancel()
            await asyncio.sleep(0.03)  # let the window close on cancelled work
            await batcher.close()
            return dispatch, batcher.stats()

        dispatch, stats = asyncio.run(scenario())
        assert dispatch.batches == []
        assert stats.get("empty_flushes", 0) >= 1
        assert stats.get("batches", 0) == 0


class TestExactlyOnce:
    def test_every_item_dispatches_exactly_once_under_concurrency(self):
        async def scenario():
            dispatch = RecordingDispatch(delay=0.002)
            batcher = MicroBatcher(dispatch, window_seconds=0.003, max_batch=7)

            async def submitter(worker, count):
                results = []
                for i in range(count):
                    results.append(await batcher.submit((worker, i)))
                    if i % 3 == 0:
                        await asyncio.sleep(0.001)
                return results

            nested = await asyncio.gather(*(submitter(w, 20) for w in range(5)))
            await batcher.close()
            return dispatch, nested

        dispatch, nested = asyncio.run(scenario())
        for worker, results in enumerate(nested):
            assert results == [f"result:({worker}, {i})" for i in range(20)]
        # Exactly-once: the multiset of dispatched items is the input set.
        dispatched = dispatch.dispatched_items
        assert len(dispatched) == 100
        assert set(dispatched) == {(w, i) for w in range(5) for i in range(20)}
        assert all(len(batch) <= 7 for batch in dispatch.batches)


class TestFailuresAndLifecycle:
    def test_dispatch_error_fails_every_item_of_that_batch(self):
        async def scenario():
            async def explode(items):
                raise RuntimeError("boom")

            batcher = MicroBatcher(explode, window_seconds=0.005, max_batch=8)
            results = await asyncio.gather(
                batcher.submit("a"), batcher.submit("b"), return_exceptions=True
            )
            await batcher.close()
            return results, batcher.stats()

        results, stats = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert stats["failed_batches"] == 1

    def test_result_count_mismatch_is_an_error(self):
        async def scenario():
            async def short_changed(items):
                return ["only one"]

            batcher = MicroBatcher(short_changed, window_seconds=0.005, max_batch=8)
            results = await asyncio.gather(
                batcher.submit("a"), batcher.submit("b"), return_exceptions=True
            )
            await batcher.close()
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert all("2 items" in str(r) for r in results)

    def test_flush_dispatches_immediately(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=30.0, max_batch=8)
            pending = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0)
            await batcher.flush()
            result = await asyncio.wait_for(pending, timeout=5.0)
            await batcher.close()
            return result

        assert asyncio.run(scenario()) == "result:a"

    def test_closed_batcher_refuses_submissions(self):
        async def scenario():
            batcher = MicroBatcher(RecordingDispatch(), window_seconds=0.005)
            await batcher.close()
            assert batcher.closed
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit("late")

        asyncio.run(scenario())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window_seconds"):
            MicroBatcher(RecordingDispatch(), window_seconds=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(RecordingDispatch(), max_batch=0)


class TestCloseDrain:
    """Regressions for close()/flush() stranding an overflow backlog.

    An overflow backlog (pending > max_batch) can't arise through plain
    ``submit`` — the full-batch flush keeps pending bounded — so these
    tests widen ``max_batch`` while queueing and restore it before the
    drain, reproducing the state the old single-flush ``close()`` hit:
    one claim of ``max_batch`` items, a remainder left behind, and (worse)
    a fresh coalesce window armed after the batcher refused submissions.
    """

    @staticmethod
    def _queue_backlog(batcher, count):
        tasks = [asyncio.ensure_future(batcher.submit(i)) for i in range(count)]
        return tasks

    def test_close_drains_overflow_backlog_completely(self):
        max_batch = 4

        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=30.0, max_batch=max_batch)
            batcher._max_batch = 100  # let 2*max_batch+1 items queue unflushed
            tasks = self._queue_backlog(batcher, 2 * max_batch + 1)
            await asyncio.sleep(0)  # all 9 queued, window armed, none dispatched
            assert batcher.queued == 2 * max_batch + 1
            batcher._max_batch = max_batch
            await batcher.close()
            results = await asyncio.gather(*tasks)
            return dispatch, results, batcher

        dispatch, results, batcher = asyncio.run(scenario())
        # Every submitted future resolved before close() returned.
        assert results == [f"result:{i}" for i in range(9)]
        assert [len(b) for b in dispatch.batches] == [4, 4, 1]
        assert batcher.queued == 0
        # A closed batcher never re-arms a coalesce window.
        assert batcher._window_task is None

    def test_flush_drains_overflow_backlog_completely(self):
        max_batch = 3

        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=30.0, max_batch=max_batch)
            batcher._max_batch = 100
            tasks = self._queue_backlog(batcher, 2 * max_batch + 1)
            await asyncio.sleep(0)
            batcher._max_batch = max_batch
            await batcher.flush()
            results = await asyncio.gather(*tasks)
            await batcher.close()
            return dispatch, results

        dispatch, results = asyncio.run(scenario())
        assert results == [f"result:{i}" for i in range(7)]
        assert [len(b) for b in dispatch.batches] == [3, 3, 1]

    def test_expired_deadline_during_close_fails_only_that_item(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=30.0, max_batch=8)
            loop = asyncio.get_running_loop()
            dead = asyncio.ensure_future(
                batcher.submit("dead", deadline=loop.time() - 0.001)
            )
            alive = asyncio.ensure_future(batcher.submit("alive"))
            await asyncio.sleep(0)  # both queued; window (30s) never fires
            await batcher.close()
            results = await asyncio.gather(dead, alive, return_exceptions=True)
            return dispatch, results, batcher.stats()

        dispatch, (dead, alive), stats = asyncio.run(scenario())
        assert isinstance(dead, DeadlineExceeded)
        assert alive == "result:alive"
        assert dispatch.dispatched_items == ["alive"]
        assert stats["expired"] == 1


def plan_by_first_char(items):
    """Group item indices by the first character of their str() form."""
    order = []
    groups = {}
    for index, item in enumerate(items):
        label = str(item)[0]
        if label not in groups:
            groups[label] = []
            order.append(label)
        groups[label].append(index)
    return [(label, groups[label]) for label in order]


class TestSubBatchPlans:
    def test_plan_splits_one_coalesced_batch_into_groups(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(
                dispatch, window_seconds=0.02, max_batch=16, plan=plan_by_first_char
            )
            results = await asyncio.gather(
                *(batcher.submit(item) for item in ["a1", "b1", "a2", "b2"])
            )
            await batcher.close()
            return dispatch, results, batcher.stats()

        dispatch, results, stats = asyncio.run(scenario())
        assert results == ["result:a1", "result:b1", "result:a2", "result:b2"]
        # One coalesced batch, dispatched as two per-label sub-batches.
        assert sorted(map(tuple, dispatch.batches)) == [("a1", "a2"), ("b1", "b2")]
        assert stats["batches"] == 1
        assert stats["subbatch_splits"] == 1
        assert stats["subbatches"] == 2

    def test_fast_group_resolves_before_slow_group_lands(self):
        async def scenario():
            class GroupDispatch:
                async def __call__(self, items):
                    if any(str(item).startswith("s") for item in items):
                        await asyncio.sleep(0.25)
                    return [f"result:{item}" for item in items]

            batcher = MicroBatcher(
                GroupDispatch(),
                window_seconds=0.01,
                max_batch=16,
                plan=plan_by_first_char,
            )
            fast = [asyncio.ensure_future(batcher.submit(f"f{i}")) for i in range(2)]
            slow = asyncio.ensure_future(batcher.submit("s0"))
            done, _ = await asyncio.wait(fast, timeout=0.15)
            streamed = len(done) == len(fast) and not slow.done()
            results = await asyncio.gather(*fast, slow)
            await batcher.close()
            return streamed, results

        streamed, results = asyncio.run(scenario())
        # The fast shard's futures resolved while the slow shard was still
        # in flight — partial results really stream.
        assert streamed
        assert results == ["result:f0", "result:f1", "result:s0"]

    def test_failing_group_fails_only_its_own_items(self):
        async def scenario():
            async def dispatch(items):
                if any(str(item).startswith("x") for item in items):
                    raise RuntimeError("shard down")
                return [f"result:{item}" for item in items]

            batcher = MicroBatcher(
                dispatch, window_seconds=0.02, max_batch=16, plan=plan_by_first_char
            )
            results = await asyncio.gather(
                *(batcher.submit(item) for item in ["a1", "x1", "a2", "x2"]),
                return_exceptions=True,
            )
            await batcher.close()
            return results, batcher.stats()

        results, stats = asyncio.run(scenario())
        assert results[0] == "result:a1"
        assert results[2] == "result:a2"
        assert isinstance(results[1], RuntimeError)
        assert isinstance(results[3], RuntimeError)
        assert stats["failed_batches"] == 1

    def test_cancelled_future_inside_a_group_is_dropped(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(
                dispatch, window_seconds=0.02, max_batch=16, plan=plan_by_first_char
            )
            doomed = asyncio.ensure_future(batcher.submit("a1"))
            keepers = [
                asyncio.ensure_future(batcher.submit(item))
                for item in ["a2", "b1", "b2"]
            ]
            await asyncio.sleep(0)  # all queued in one window
            doomed.cancel()
            results = await asyncio.gather(*keepers)
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await batcher.close()
            return dispatch, results, batcher.stats()

        dispatch, results, stats = asyncio.run(scenario())
        assert results == ["result:a2", "result:b1", "result:b2"]
        # The cancelled item vanished from its group; the group survived.
        assert sorted(map(tuple, dispatch.batches)) == [("a2",), ("b1", "b2")]
        assert stats["cancelled"] == 1

    def test_raising_plan_degrades_to_a_single_batch(self):
        async def scenario():
            def bad_plan(items):
                raise ValueError("planner bug")

            dispatch = RecordingDispatch()
            batcher = MicroBatcher(
                dispatch, window_seconds=0.02, max_batch=16, plan=bad_plan
            )
            results = await asyncio.gather(
                batcher.submit("a"), batcher.submit("b")
            )
            await batcher.close()
            return dispatch, results, batcher.stats()

        dispatch, results, stats = asyncio.run(scenario())
        assert results == ["result:a", "result:b"]
        assert dispatch.batches == [["a", "b"]]
        assert stats["plan_errors"] == 1
        assert stats.get("subbatch_splits", 0) == 0

    def test_indices_the_plan_misses_form_a_trailing_group(self):
        async def scenario():
            def partial_plan(items):
                # Mentions index 0 only (plus junk the batcher must ignore);
                # the rest must still dispatch as a trailing group.
                return [("a", [0, 0, 99])]

            dispatch = RecordingDispatch()
            batcher = MicroBatcher(
                dispatch, window_seconds=0.02, max_batch=16, plan=partial_plan
            )
            results = await asyncio.gather(
                *(batcher.submit(item) for item in ["p", "q", "r"])
            )
            await batcher.close()
            return dispatch, results

        dispatch, results = asyncio.run(scenario())
        assert results == ["result:p", "result:q", "result:r"]
        assert sorted(map(tuple, dispatch.batches)) == [("p",), ("q", "r")]

    def test_single_item_batch_skips_the_planner(self):
        calls = []

        async def scenario():
            def spy_plan(items):
                calls.append(list(items))
                return plan_by_first_char(items)

            dispatch = RecordingDispatch()
            batcher = MicroBatcher(
                dispatch, window_seconds=0.005, max_batch=16, plan=spy_plan
            )
            result = await batcher.submit("solo")
            await batcher.close()
            return dispatch, result

        dispatch, result = asyncio.run(scenario())
        assert result == "result:solo"
        assert dispatch.batches == [["solo"]]
        assert calls == []
