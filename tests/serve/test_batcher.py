"""Edge-case tests pinning down the MicroBatcher contract.

Everything runs on a private event loop via ``asyncio.run`` (the suite
does not depend on an async test plugin).  The dispatch doubles record
every batch they receive, so the tests can assert *how* items were
grouped, not just what came back.
"""

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import DeadlineExceeded


class RecordingDispatch:
    """Echo dispatch that remembers each batch (optionally slowly)."""

    def __init__(self, delay=0.0):
        self.batches = []
        self.delay = delay

    async def __call__(self, items):
        self.batches.append(list(items))
        if self.delay:
            await asyncio.sleep(self.delay)
        return [f"result:{item}" for item in items]

    @property
    def dispatched_items(self):
        return [item for batch in self.batches for item in batch]


class TestCoalescing:
    def test_single_request_flushes_after_window(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.005, max_batch=8)
            result = await batcher.submit("a")
            await batcher.close()
            return dispatch, result

        dispatch, result = asyncio.run(scenario())
        assert result == "result:a"
        assert dispatch.batches == [["a"]]

    def test_concurrent_submissions_coalesce_into_one_batch(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.02, max_batch=16)
            results = await asyncio.gather(
                *(batcher.submit(f"q{i}") for i in range(6))
            )
            await batcher.close()
            return dispatch, results

        dispatch, results = asyncio.run(scenario())
        assert results == [f"result:q{i}" for i in range(6)]
        assert len(dispatch.batches) == 1
        assert dispatch.batches[0] == [f"q{i}" for i in range(6)]

    def test_full_batch_dispatches_without_waiting_for_window(self):
        async def scenario():
            dispatch = RecordingDispatch()
            # A window long enough that reaching it would time the test out.
            batcher = MicroBatcher(dispatch, window_seconds=30.0, max_batch=4)
            results = await asyncio.wait_for(
                asyncio.gather(*(batcher.submit(i) for i in range(4))), timeout=5.0
            )
            await batcher.close()
            return dispatch, results

        dispatch, results = asyncio.run(scenario())
        assert results == [f"result:{i}" for i in range(4)]
        assert [len(b) for b in dispatch.batches] == [4]


class TestOverflow:
    def test_overflow_splits_into_multiple_batches(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.01, max_batch=4)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(11))
            )
            await batcher.close()
            return dispatch, results, batcher.stats()

        dispatch, results, stats = asyncio.run(scenario())
        assert results == [f"result:{i}" for i in range(11)]
        assert [len(b) for b in dispatch.batches] == [4, 4, 3]
        # Two batches filled and flushed immediately; the remainder waited
        # for its own window instead of queueing behind them.
        assert stats["flushes_full"] == 2
        assert stats["flushes_window"] == 1
        # Submission order survives splitting.
        assert dispatch.dispatched_items == list(range(11))

    def test_nothing_waits_behind_a_full_batch(self):
        async def scenario():
            dispatch = RecordingDispatch(delay=0.05)
            batcher = MicroBatcher(dispatch, window_seconds=0.005, max_batch=2)
            loop = asyncio.get_running_loop()
            started = loop.time()
            await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            elapsed = loop.time() - started
            await batcher.close()
            return dispatch, elapsed

        dispatch, elapsed = asyncio.run(scenario())
        assert [len(b) for b in dispatch.batches] == [2, 2]
        # The two dispatches overlap instead of queueing serially.
        assert elapsed < 0.09


class TestDeadlinesAndCancellation:
    def test_expired_items_fail_before_dispatch(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.02, max_batch=8)
            loop = asyncio.get_running_loop()
            expired = asyncio.ensure_future(
                batcher.submit("dead", deadline=loop.time() - 0.001)
            )
            alive = asyncio.ensure_future(batcher.submit("alive"))
            results = await asyncio.gather(expired, alive, return_exceptions=True)
            await batcher.close()
            return dispatch, results, batcher.stats()

        dispatch, (dead, alive), stats = asyncio.run(scenario())
        assert isinstance(dead, DeadlineExceeded)
        assert alive == "result:alive"
        # The expired item never consumed dispatch work.
        assert dispatch.dispatched_items == ["alive"]
        assert stats["expired"] == 1

    def test_cancelled_item_is_dropped_from_its_batch(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.02, max_batch=8)
            doomed = asyncio.ensure_future(batcher.submit("doomed"))
            survivor = asyncio.ensure_future(batcher.submit("survivor"))
            await asyncio.sleep(0)  # both items enqueued, window armed
            doomed.cancel()
            result = await survivor
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await batcher.close()
            return dispatch, result, batcher.stats()

        dispatch, result, stats = asyncio.run(scenario())
        assert result == "result:survivor"
        assert dispatch.dispatched_items == ["survivor"]
        assert stats["cancelled"] == 1

    def test_all_cancelled_means_empty_flush_and_no_dispatch(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=0.01, max_batch=8)
            doomed = asyncio.ensure_future(batcher.submit("doomed"))
            await asyncio.sleep(0)
            doomed.cancel()
            await asyncio.sleep(0.03)  # let the window close on cancelled work
            await batcher.close()
            return dispatch, batcher.stats()

        dispatch, stats = asyncio.run(scenario())
        assert dispatch.batches == []
        assert stats.get("empty_flushes", 0) >= 1
        assert stats.get("batches", 0) == 0


class TestExactlyOnce:
    def test_every_item_dispatches_exactly_once_under_concurrency(self):
        async def scenario():
            dispatch = RecordingDispatch(delay=0.002)
            batcher = MicroBatcher(dispatch, window_seconds=0.003, max_batch=7)

            async def submitter(worker, count):
                results = []
                for i in range(count):
                    results.append(await batcher.submit((worker, i)))
                    if i % 3 == 0:
                        await asyncio.sleep(0.001)
                return results

            nested = await asyncio.gather(*(submitter(w, 20) for w in range(5)))
            await batcher.close()
            return dispatch, nested

        dispatch, nested = asyncio.run(scenario())
        for worker, results in enumerate(nested):
            assert results == [f"result:({worker}, {i})" for i in range(20)]
        # Exactly-once: the multiset of dispatched items is the input set.
        dispatched = dispatch.dispatched_items
        assert len(dispatched) == 100
        assert set(dispatched) == {(w, i) for w in range(5) for i in range(20)}
        assert all(len(batch) <= 7 for batch in dispatch.batches)


class TestFailuresAndLifecycle:
    def test_dispatch_error_fails_every_item_of_that_batch(self):
        async def scenario():
            async def explode(items):
                raise RuntimeError("boom")

            batcher = MicroBatcher(explode, window_seconds=0.005, max_batch=8)
            results = await asyncio.gather(
                batcher.submit("a"), batcher.submit("b"), return_exceptions=True
            )
            await batcher.close()
            return results, batcher.stats()

        results, stats = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert stats["failed_batches"] == 1

    def test_result_count_mismatch_is_an_error(self):
        async def scenario():
            async def short_changed(items):
                return ["only one"]

            batcher = MicroBatcher(short_changed, window_seconds=0.005, max_batch=8)
            results = await asyncio.gather(
                batcher.submit("a"), batcher.submit("b"), return_exceptions=True
            )
            await batcher.close()
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert all("2 items" in str(r) for r in results)

    def test_flush_dispatches_immediately(self):
        async def scenario():
            dispatch = RecordingDispatch()
            batcher = MicroBatcher(dispatch, window_seconds=30.0, max_batch=8)
            pending = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0)
            await batcher.flush()
            result = await asyncio.wait_for(pending, timeout=5.0)
            await batcher.close()
            return result

        assert asyncio.run(scenario()) == "result:a"

    def test_closed_batcher_refuses_submissions(self):
        async def scenario():
            batcher = MicroBatcher(RecordingDispatch(), window_seconds=0.005)
            await batcher.close()
            assert batcher.closed
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit("late")

        asyncio.run(scenario())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window_seconds"):
            MicroBatcher(RecordingDispatch(), window_seconds=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(RecordingDispatch(), max_batch=0)
