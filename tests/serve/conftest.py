"""Shared fixtures for the serving-subsystem tests.

Server tests run against the in-process :class:`ServerHarness` — real
sockets, real coalescing — but serve the cheap 4-block chain circuit
(shipped as a serialized netlist in the request payload) with smoke-scale
generation budgets, so an end-to-end request costs milliseconds.
"""

from __future__ import annotations

import pytest

from repro.core.generator import GeneratorConfig
from repro.core.serialization import circuit_to_dict
from repro.service.engine import PlacementService
from tests.conftest import build_chain_circuit

SMOKE = GeneratorConfig.smoke(seed=7)

#: Four [w, h] pairs (one per chain block), inside the 4..12 block range.
CHAIN_DIMS = [[6, 5], [5, 6], [7, 5], [6, 6]]


def make_service() -> PlacementService:
    """A fresh in-memory service with smoke-scale generation budgets."""
    return PlacementService(default_config=SMOKE)


@pytest.fixture(scope="session")
def chain_payload():
    """The chain circuit as the serialized-netlist form of ``circuit``."""
    return circuit_to_dict(build_chain_circuit())
